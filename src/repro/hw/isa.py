"""Instruction set, programs and the assembler for the simulated machine.

The ISA is a small load/store architecture, rich enough to express the
workloads the paper's experiments need (dense linear algebra with fused
multiply-adds, pointer chasing, branchy kernels, mixed-precision code with
rounding/convert instructions) while staying fast to interpret in Python.

Programs are kept in *symbolic* form -- branch and call targets are string
labels bound to instruction indices -- so that tools can rewrite a program
(e.g. dynaprof inserting probes at function entry/exit) without breaking
control flow.  :meth:`Program.resolve` lowers the symbolic form to a flat
list of plain tuples that the interpreter executes.

Instruction layout: every instruction is ``(op, a, b, c, d)`` where the
meaning of the operand slots depends on ``op`` (documented per opcode in
:class:`Op`).  Register operands are small ints (index into the integer or
float register file); immediate operands are Python ints/floats; resolved
control-flow targets are absolute instruction indices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class ProgramError(Exception):
    """Raised for malformed programs: unknown labels, bad registers, etc."""


class Op:
    """Opcode namespace.  Values are dense ints for fast dispatch.

    Operand conventions (``a``, ``b``, ``c``, ``d``):

    ======== =====================================================
    opcode   operands
    ======== =====================================================
    HALT     --
    NOP      --
    JMP      a=target
    BEQ      a=ra, b=rb, c=target   (branch if ra == rb)
    BNE      a=ra, b=rb, c=target
    BLT      a=ra, b=rb, c=target   (branch if ra < rb)
    BGE      a=ra, b=rb, c=target
    CALL     a=target
    RET      --
    PROBE    a=probe id (int)
    SYSCALL  a=syscall number
    LI       a=rd, d=imm (int)
    MOV      a=rd, b=ra
    ADD      a=rd, b=ra, c=rb
    SUB      a=rd, b=ra, c=rb
    MUL      a=rd, b=ra, c=rb
    DIV      a=rd, b=ra, c=rb       (integer division, trunc toward 0)
    ADDI     a=rd, b=ra, d=imm
    MULI     a=rd, b=ra, d=imm
    LOAD     a=rd, b=ra, d=offset   (rd <- mem[ra + offset], int)
    STORE    a=rs, b=ra, d=offset   (mem[ra + offset] <- rs, int)
    FLOAD    a=fd, b=ra, d=offset   (fd <- mem[ra + offset], float)
    FSTORE   a=fs, b=ra, d=offset   (mem[ra + offset] <- fs, float)
    FLI      a=fd, d=imm (float)
    FMOV     a=fd, b=fa
    FADD     a=fd, b=fa, c=fb
    FSUB     a=fd, b=fa, c=fb
    FMUL     a=fd, b=fa, c=fb
    FDIV     a=fd, b=fa, c=fb
    FSQRT    a=fd, b=fa
    FMA      a=fd, b=fa, c=fb, d=fc (fd <- fa * fb + fc, fused)
    FCVT     a=fd, b=fa             (precision convert / rounding)
    ======== =====================================================
    """

    HALT = 0
    NOP = 1
    JMP = 2
    BEQ = 3
    BNE = 4
    BLT = 5
    BGE = 6
    CALL = 7
    RET = 8
    PROBE = 9
    SYSCALL = 10
    LI = 11
    MOV = 12
    ADD = 13
    SUB = 14
    MUL = 15
    DIV = 16
    ADDI = 17
    MULI = 18
    LOAD = 19
    STORE = 20
    FLOAD = 21
    FSTORE = 22
    FLI = 23
    FMOV = 24
    FADD = 25
    FSUB = 26
    FMUL = 27
    FDIV = 28
    FSQRT = 29
    FMA = 30
    FCVT = 31

    N_OPS = 32


#: Opcode index -> mnemonic.
OP_NAMES: List[str] = [""] * Op.N_OPS
for _name, _value in vars(Op).items():
    if _name.startswith("_") or _name == "N_OPS":
        continue
    OP_NAMES[_value] = _name

OP_BY_NAME: Dict[str, int] = {n: i for i, n in enumerate(OP_NAMES) if n}

#: Opcodes whose ``a``/``c`` operand is a control-flow target label.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})
JUMP_OPS = frozenset({Op.JMP, Op.CALL})
CONTROL_OPS = BRANCH_OPS | JUMP_OPS | {Op.RET, Op.HALT}

#: Opcodes that access data memory.
MEMORY_OPS = frozenset({Op.LOAD, Op.STORE, Op.FLOAD, Op.FSTORE})

#: Opcodes the block engine never compiles: they re-enter the simulation
#: control plane (probe dispatch, syscalls) or end execution, so they
#: always take the precise interpreter path and cut basic blocks short.
BLOCK_BREAK_OPS = frozenset({Op.PROBE, Op.SYSCALL, Op.HALT})

#: Opcodes that can raise a MachineFault at runtime (bad address, divide
#: by zero, negative sqrt, empty call stack).  The block compiler flushes
#: pending count updates before each of these so the counts array is
#: exact at the moment a fault propagates.
FAULTING_OPS = frozenset(
    {Op.LOAD, Op.STORE, Op.FLOAD, Op.FSTORE, Op.DIV, Op.FDIV, Op.FSQRT, Op.RET}
)

#: Floating point opcodes (for instruction-mix bookkeeping).
FP_OPS_SET = frozenset(
    {Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FSQRT, Op.FMA, Op.FCVT, Op.FLI, Op.FMOV}
)

#: Number of integer and floating point registers.
NUM_IREGS = 32
NUM_FREGS = 32

#: Bytes per instruction slot; instruction *addresses* (as seen by the
#: instruction cache and profiling buffers) are ``pc * INS_BYTES``.
INS_BYTES = 4

#: Bytes per data memory word; data *addresses* seen by the data cache are
#: ``DATA_SEGMENT_BASE + word_index * WORD_BYTES``.
WORD_BYTES = 8

#: Byte address where the data segment starts.  Keeps code and data in
#: disjoint address ranges so the unified L2 does not alias instruction
#: lines with data lines (as on a real machine, where text and data load
#: at different virtual addresses).
DATA_SEGMENT_BASE = 1 << 26


@dataclass(frozen=True)
class Instruction:
    """One symbolic instruction.

    ``a``/``b``/``c``/``d`` hold register indices, immediates, or -- for
    control flow ops -- a label string prior to resolution.
    """

    op: int
    a: object = 0
    b: object = 0
    c: object = 0
    d: object = 0

    def target_field(self) -> Optional[str]:
        """Name of the operand slot holding this instruction's label, if any."""
        if self.op in JUMP_OPS:
            return "a"
        if self.op in BRANCH_OPS:
            return "c"
        return None

    def target(self) -> Optional[object]:
        fieldname = self.target_field()
        return getattr(self, fieldname) if fieldname else None

    def with_target(self, value: object) -> "Instruction":
        fieldname = self.target_field()
        if fieldname is None:
            raise ProgramError(f"{OP_NAMES[self.op]} has no control-flow target")
        return replace(self, **{fieldname: value})

    def mnemonic(self) -> str:
        return OP_NAMES[self.op]


@dataclass(frozen=True)
class FunctionInfo:
    """A named region of the program: ``[start, end)`` instruction indices."""

    name: str
    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


class Program:
    """A symbolic program: instructions + labels + function table.

    Instances are immutable from the outside; rewriting operations return
    a new :class:`Program` plus a pc-remapping callable so a paused machine
    can be migrated onto the rewritten code (this is what dynaprof's
    "attach to a running executable" uses).
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Dict[str, int],
        functions: Dict[str, FunctionInfo],
        entry: str = "main",
        data_size: int = 0,
        name: str = "a.out",
        data_init: Sequence[Tuple[int, object]] = (),
    ) -> None:
        self._instructions: Tuple[Instruction, ...] = tuple(instructions)
        self._labels = dict(labels)
        self._functions = dict(functions)
        self.entry = entry
        self.data_size = int(data_size)
        self.name = name
        #: (word address, value) pairs applied to memory at load time
        #: (the program's ``.data`` section).
        self.data_init: Tuple[Tuple[int, object], ...] = tuple(data_init)
        self._validate()

    # -- introspection -------------------------------------------------

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return self._instructions

    @property
    def labels(self) -> Dict[str, int]:
        return dict(self._labels)

    @property
    def functions(self) -> Dict[str, FunctionInfo]:
        return dict(self._functions)

    def __len__(self) -> int:
        return len(self._instructions)

    def function_at(self, pc: int) -> Optional[FunctionInfo]:
        """Return the function containing instruction index *pc*, if any."""
        for info in self._functions.values():
            if pc in info:
                return info
        return None

    def label_at(self, name: str) -> int:
        try:
            return self._labels[name]
        except KeyError:
            raise ProgramError(f"unknown label: {name!r}") from None

    # -- validation / lowering ------------------------------------------

    def _validate(self) -> None:
        n = len(self._instructions)
        for label, idx in self._labels.items():
            if not 0 <= idx <= n:
                raise ProgramError(f"label {label!r} out of range: {idx}")
        if self.entry not in self._labels:
            raise ProgramError(f"entry label {self.entry!r} is not defined")
        for pc, ins in enumerate(self._instructions):
            tgt = ins.target()
            if tgt is not None and isinstance(tgt, str) and tgt not in self._labels:
                raise ProgramError(
                    f"pc {pc}: {ins.mnemonic()} targets undefined label {tgt!r}"
                )
        for fn in self._functions.values():
            if not (0 <= fn.start <= fn.end <= n):
                raise ProgramError(f"function {fn.name!r} region out of range")
        for addr, _value in self.data_init:
            if not 0 <= addr < self.data_size:
                raise ProgramError(
                    f"data initializer at word {addr} outside the data "
                    f"section (size {self.data_size})"
                )

    def resolve(self) -> List[Tuple[int, object, object, object, object]]:
        """Lower to executable form: flat tuples with absolute targets."""
        code: List[Tuple[int, object, object, object, object]] = []
        for ins in self._instructions:
            tgt = ins.target()
            if tgt is not None and isinstance(tgt, str):
                ins = ins.with_target(self._labels[tgt])
            code.append((ins.op, ins.a, ins.b, ins.c, ins.d))
        return code

    # -- rewriting (dynamic instrumentation support) ---------------------

    def insert(
        self, insertions: Dict[int, Sequence[Instruction]]
    ) -> Tuple["Program", Callable[[int], int]]:
        """Insert instruction sequences before the given indices.

        *insertions* maps instruction index -> sequence to insert before
        that index.  Labels bound at an insertion point move with the
        inserted code's head so that existing control flow executes the
        inserted instructions (this is what makes an entry probe fire on
        every call).  Returns ``(new_program, remap)`` where ``remap``
        translates old instruction indices to new ones.
        """
        for idx in insertions:
            if not 0 <= idx <= len(self._instructions):
                raise ProgramError(f"insertion point out of range: {idx}")

        new_instructions: List[Instruction] = []
        # old_to_new: new index of each original instruction (used to remap
        # a paused machine's pc and return addresses -- the in-flight
        # instruction resumes at itself, not at code inserted before it).
        old_to_new: List[int] = []
        # head_map: where the code region for each original index begins,
        # i.e. the first *inserted* instruction if any.  Labels and
        # function boundaries use this so that existing control flow
        # (calls, branches) executes the inserted probes.
        head_map: List[int] = []
        points = sorted(insertions.items())
        point_iter = iter(points)
        next_point = next(point_iter, None)
        for old_idx, ins in enumerate(self._instructions):
            head_map.append(len(new_instructions))
            while next_point is not None and next_point[0] == old_idx:
                new_instructions.extend(next_point[1])
                next_point = next(point_iter, None)
            old_to_new.append(len(new_instructions))
            new_instructions.append(ins)
        head_map.append(len(new_instructions))
        while next_point is not None:
            new_instructions.extend(next_point[1])
            next_point = next(point_iter, None)
        old_to_new.append(len(new_instructions))  # map for index == len()

        def remap(old_pc: int) -> int:
            if not 0 <= old_pc < len(old_to_new):
                raise ProgramError(f"cannot remap pc {old_pc}")
            return old_to_new[old_pc]

        new_labels = {name: head_map[idx] for name, idx in self._labels.items()}
        new_functions = {
            name: FunctionInfo(fn.name, head_map[fn.start], head_map[fn.end])
            for name, fn in self._functions.items()
        }
        program = Program(
            new_instructions,
            new_labels,
            new_functions,
            entry=self.entry,
            data_size=self.data_size,
            name=self.name,
            data_init=self.data_init,
        )
        return program, remap

    def remove(
        self, indices: Iterable[int]
    ) -> Tuple["Program", Callable[[int], int]]:
        """Remove the instructions at *indices* (dynaprof deinstrument).

        The inverse of :meth:`insert`.  Labels bound at a removed
        instruction move to the next surviving one, and the returned
        ``remap`` sends a removed pc there too -- a machine paused at a
        probe resumes at the instruction the probe guarded.
        """
        drop = set(indices)
        n = len(self._instructions)
        for idx in drop:
            if not 0 <= idx < n:
                raise ProgramError(f"removal point out of range: {idx}")
        old_to_new: List[int] = []
        survivors: List[Instruction] = []
        for old_idx, ins in enumerate(self._instructions):
            old_to_new.append(len(survivors))
            if old_idx not in drop:
                survivors.append(ins)
        old_to_new.append(len(survivors))

        new_instructions: List[Instruction] = []
        for ins in survivors:
            tgt = ins.target()
            if tgt is not None and not isinstance(tgt, str):
                ins = ins.with_target(old_to_new[tgt])
            new_instructions.append(ins)

        def remap(old_pc: int) -> int:
            if not 0 <= old_pc < len(old_to_new):
                raise ProgramError(f"cannot remap pc {old_pc}")
            return old_to_new[old_pc]

        new_labels = {
            name: old_to_new[idx] for name, idx in self._labels.items()
        }
        new_functions = {
            name: FunctionInfo(fn.name, old_to_new[fn.start], old_to_new[fn.end])
            for name, fn in self._functions.items()
        }
        program = Program(
            new_instructions,
            new_labels,
            new_functions,
            entry=self.entry,
            data_size=self.data_size,
            name=self.name,
            data_init=self.data_init,
        )
        return program, remap

    # -- debugging -------------------------------------------------------

    def disassemble(self, start: int = 0, end: Optional[int] = None) -> str:
        """Human readable listing with labels and function boundaries."""
        end = len(self._instructions) if end is None else end
        label_by_index: Dict[int, List[str]] = {}
        for name, idx in self._labels.items():
            label_by_index.setdefault(idx, []).append(name)
        lines: List[str] = []
        for pc in range(start, end):
            for name in sorted(label_by_index.get(pc, ())):
                lines.append(f"{name}:")
            ins = self._instructions[pc]
            operands = ", ".join(
                str(getattr(ins, f))
                for f in ("a", "b", "c", "d")
                if getattr(ins, f) != 0 or f == "a"
            )
            lines.append(f"  {pc:6d}  {ins.mnemonic():<8s} {operands}")
        return "\n".join(lines)


def _parse_reg(token: object, bank: str) -> int:
    """Parse ``"r5"``/``"f3"`` (or a raw int) into a register index."""
    if isinstance(token, int):
        idx = token
    elif isinstance(token, str) and len(token) >= 2 and token[0] == bank:
        try:
            idx = int(token[1:])
        except ValueError:
            raise ProgramError(f"bad register name: {token!r}") from None
    else:
        raise ProgramError(f"expected {bank!r}-register, got {token!r}")
    limit = NUM_IREGS if bank == "r" else NUM_FREGS
    if not 0 <= idx < limit:
        raise ProgramError(f"register index out of range: {token!r}")
    return idx


class Assembler:
    """Builder producing :class:`Program` objects.

    Registers are written as strings (``"r0"``..``"r31"``,
    ``"f0"``..``"f31"``); the assembler parses them once so the
    interpreter never pays string costs.

    Example::

        asm = Assembler()
        asm.func("main")
        asm.li("r1", 10)
        asm.li("r2", 0)
        asm.label("loop")
        asm.addi("r2", "r2", 1)
        asm.blt("r2", "r1", "loop")
        asm.halt()
        asm.endfunc()
        program = asm.build()
    """

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._functions: Dict[str, FunctionInfo] = {}
        self._open_function: Optional[Tuple[str, int]] = None
        self._data_size = 0
        self._data_init: List[Tuple[int, object]] = []

    # -- structure -------------------------------------------------------

    def label(self, name: str) -> "Assembler":
        if name in self._labels:
            raise ProgramError(f"duplicate label: {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def func(self, name: str) -> "Assembler":
        """Open a function region; also binds a label of the same name."""
        if self._open_function is not None:
            raise ProgramError(
                f"function {self._open_function[0]!r} is still open"
            )
        if name in self._functions:
            raise ProgramError(f"duplicate function: {name!r}")
        self.label(name)
        self._open_function = (name, len(self._instructions))
        return self

    def endfunc(self) -> "Assembler":
        if self._open_function is None:
            raise ProgramError("endfunc without func")
        name, start = self._open_function
        self._functions[name] = FunctionInfo(name, start, len(self._instructions))
        self._open_function = None
        return self

    def reserve_data(self, words: int) -> int:
        """Reserve *words* words of data memory; returns the base address."""
        if words < 0:
            raise ProgramError("cannot reserve a negative amount of memory")
        base = self._data_size
        self._data_size += words
        return base

    def init_array(self, values: Sequence[object]) -> int:
        """Reserve and initialize an array; returns the base address."""
        base = self.reserve_data(len(values))
        for i, v in enumerate(values):
            self._data_init.append((base + i, v))
        return base

    def init_word(self, addr: int, value: object) -> "Assembler":
        """Initialize one already-reserved data word."""
        self._data_init.append((int(addr), value))
        return self

    def raw(self, ins: Instruction) -> "Assembler":
        self._instructions.append(ins)
        return self

    # -- control flow ------------------------------------------------------

    def halt(self):
        return self.raw(Instruction(Op.HALT))

    def nop(self):
        return self.raw(Instruction(Op.NOP))

    def jmp(self, target: str):
        return self.raw(Instruction(Op.JMP, target))

    def beq(self, ra, rb, target: str):
        return self.raw(
            Instruction(Op.BEQ, _parse_reg(ra, "r"), _parse_reg(rb, "r"), target)
        )

    def bne(self, ra, rb, target: str):
        return self.raw(
            Instruction(Op.BNE, _parse_reg(ra, "r"), _parse_reg(rb, "r"), target)
        )

    def blt(self, ra, rb, target: str):
        return self.raw(
            Instruction(Op.BLT, _parse_reg(ra, "r"), _parse_reg(rb, "r"), target)
        )

    def bge(self, ra, rb, target: str):
        return self.raw(
            Instruction(Op.BGE, _parse_reg(ra, "r"), _parse_reg(rb, "r"), target)
        )

    def call(self, target: str):
        return self.raw(Instruction(Op.CALL, target))

    def ret(self):
        return self.raw(Instruction(Op.RET))

    def probe(self, probe_id: int):
        return self.raw(Instruction(Op.PROBE, int(probe_id)))

    def syscall(self, number: int):
        return self.raw(Instruction(Op.SYSCALL, int(number)))

    # -- integer ----------------------------------------------------------

    def li(self, rd, imm: int):
        return self.raw(Instruction(Op.LI, _parse_reg(rd, "r"), d=int(imm)))

    def mov(self, rd, ra):
        return self.raw(Instruction(Op.MOV, _parse_reg(rd, "r"), _parse_reg(ra, "r")))

    def _int3(self, op, rd, ra, rb):
        return self.raw(
            Instruction(
                op, _parse_reg(rd, "r"), _parse_reg(ra, "r"), _parse_reg(rb, "r")
            )
        )

    def add(self, rd, ra, rb):
        return self._int3(Op.ADD, rd, ra, rb)

    def sub(self, rd, ra, rb):
        return self._int3(Op.SUB, rd, ra, rb)

    def mul(self, rd, ra, rb):
        return self._int3(Op.MUL, rd, ra, rb)

    def div(self, rd, ra, rb):
        return self._int3(Op.DIV, rd, ra, rb)

    def addi(self, rd, ra, imm: int):
        return self.raw(
            Instruction(Op.ADDI, _parse_reg(rd, "r"), _parse_reg(ra, "r"), d=int(imm))
        )

    def muli(self, rd, ra, imm: int):
        return self.raw(
            Instruction(Op.MULI, _parse_reg(rd, "r"), _parse_reg(ra, "r"), d=int(imm))
        )

    # -- memory ------------------------------------------------------------

    def load(self, rd, ra, offset: int = 0):
        return self.raw(
            Instruction(
                Op.LOAD, _parse_reg(rd, "r"), _parse_reg(ra, "r"), d=int(offset)
            )
        )

    def store(self, rs, ra, offset: int = 0):
        return self.raw(
            Instruction(
                Op.STORE, _parse_reg(rs, "r"), _parse_reg(ra, "r"), d=int(offset)
            )
        )

    def fload(self, fd, ra, offset: int = 0):
        return self.raw(
            Instruction(
                Op.FLOAD, _parse_reg(fd, "f"), _parse_reg(ra, "r"), d=int(offset)
            )
        )

    def fstore(self, fs, ra, offset: int = 0):
        return self.raw(
            Instruction(
                Op.FSTORE, _parse_reg(fs, "f"), _parse_reg(ra, "r"), d=int(offset)
            )
        )

    # -- floating point ------------------------------------------------------

    def fli(self, fd, imm: float):
        return self.raw(Instruction(Op.FLI, _parse_reg(fd, "f"), d=float(imm)))

    def fmov(self, fd, fa):
        return self.raw(
            Instruction(Op.FMOV, _parse_reg(fd, "f"), _parse_reg(fa, "f"))
        )

    def _fp3(self, op, fd, fa, fb):
        return self.raw(
            Instruction(
                op, _parse_reg(fd, "f"), _parse_reg(fa, "f"), _parse_reg(fb, "f")
            )
        )

    def fadd(self, fd, fa, fb):
        return self._fp3(Op.FADD, fd, fa, fb)

    def fsub(self, fd, fa, fb):
        return self._fp3(Op.FSUB, fd, fa, fb)

    def fmul(self, fd, fa, fb):
        return self._fp3(Op.FMUL, fd, fa, fb)

    def fdiv(self, fd, fa, fb):
        return self._fp3(Op.FDIV, fd, fa, fb)

    def fsqrt(self, fd, fa):
        return self.raw(
            Instruction(Op.FSQRT, _parse_reg(fd, "f"), _parse_reg(fa, "f"))
        )

    def fma(self, fd, fa, fb, fc):
        return self.raw(
            Instruction(
                Op.FMA,
                _parse_reg(fd, "f"),
                _parse_reg(fa, "f"),
                _parse_reg(fb, "f"),
                _parse_reg(fc, "f"),
            )
        )

    def fcvt(self, fd, fa):
        return self.raw(
            Instruction(Op.FCVT, _parse_reg(fd, "f"), _parse_reg(fa, "f"))
        )

    # -- finalize -------------------------------------------------------------

    def build(self, entry: str = "main", extra_data: int = 0) -> Program:
        if self._open_function is not None:
            raise ProgramError(
                f"function {self._open_function[0]!r} was never closed"
            )
        return Program(
            self._instructions,
            self._labels,
            self._functions,
            entry=entry,
            data_size=self._data_size + int(extra_data),
            name=self.name,
            data_init=self._data_init,
        )

"""Determinism and per-kind behaviour of the fault-injection plane.

The central contract (ISSUE: "identical seed+plan => identical fault
schedule, counts and health record, with the block engine on and off")
is asserted directly on the injector's append-only event log; the
per-kind tests then pin down what each fault does to a run and what the
self-healing runtime turns it into.
"""

import pytest

from repro.core.errors import SystemError_
from repro.core.library import Papi
from repro.faults import FaultInjector, FaultPlan, FaultProfile, attach_from_spec
from repro.platforms import create
from repro.tools.papirun import papirun
from repro.workloads import dot


def run_one(spec, platform="simPOWER", n=500, block_engine=True, **kw):
    """One papirun under *spec*; returns (result, injector-or-None)."""
    sub = create(platform, block_engine=block_engine)
    injector = attach_from_spec(sub, spec) if spec else None
    result = papirun(sub, dot(n, use_fma=sub.HAS_FMA), **kw)
    return result, injector


def fingerprint(result, injector):
    """Everything that must be identical between two equal-spec runs."""
    return (
        injector.schedule(),
        injector.summary(),
        result.values,
        result.health,
        result.real_usec,
        result.multiplexed,
    )


class TestDeterminism:
    @pytest.mark.parametrize("spec", ["3:chaos", "31:loss", "16:chaos"])
    def test_same_spec_same_schedule_counts_and_health(self, spec):
        a = fingerprint(*run_one(spec))
        b = fingerprint(*run_one(spec))
        assert a == b

    @pytest.mark.parametrize("spec", ["3:chaos", "31:loss"])
    def test_block_engine_on_off_identical(self, spec):
        on = fingerprint(*run_one(spec, block_engine=True))
        off = fingerprint(*run_one(spec, block_engine=False))
        assert on == off

    def test_different_seeds_diverge(self):
        """The seed is load-bearing: nearby seeds give different schedules."""
        base = fingerprint(*run_one("1:chaos"))
        assert any(
            fingerprint(*run_one(f"{seed}:chaos")) != base
            for seed in range(2, 12)
        )

    def test_schedule_is_append_only_tuples(self):
        _result, injector = run_one("3:chaos")
        sched = injector.schedule()
        assert sched, "seed 3 chaos must inject something"
        assert all(isinstance(entry, tuple) and len(entry) == 5
                   for entry in sched)
        # op indices never decrease: the log records one pass over time
        indices = [entry[0] for entry in sched]
        assert indices == sorted(indices)


class TestCleanPath:
    def test_no_injector_leaves_substrate_clean(self):
        sub = create("simPOWER")
        assert sub.faults is None
        assert all(cpu.pmu.delivery_gate is None for cpu in sub.machine.cpus)
        assert all(cpu.pmu.timer_jitter is None for cpu in sub.machine.cpus)

    def test_none_profile_is_bit_exact_with_clean(self):
        clean, _ = run_one(None)
        inert, injector = run_one("0:none")
        assert injector.events == []
        assert inert.values == clean.values
        assert inert.real_usec == clean.real_usec
        assert inert.virt_usec == clean.virt_usec
        assert inert.health["retries"] == 0
        assert inert.health["lost_intervals"] == []

    def test_inert_profile_installs_no_pmu_hooks(self):
        sub = create("simPOWER", inject="0:none")
        assert sub.faults is not None
        assert all(cpu.pmu.delivery_gate is None for cpu in sub.machine.cpus)
        assert all(cpu.pmu.timer_jitter is None for cpu in sub.machine.cpus)


class TestTransientFaults:
    def test_retry_absorbs_esys_and_counts_stay_exact(self):
        """A transient-only schedule must not change any counter value:
        the retry ladder absorbs it completely, paying only time."""
        clean, _ = run_one(None)
        for seed in range(1, 60):
            result, injector = run_one(f"{seed}:transient")
            summary = injector.summary()
            if summary:
                assert set(summary) == {"esys"}
                assert result.values == clean.values
                assert result.health["retries"] == summary["esys"]
                assert result.health["backoff_cycles"] > 0
                assert result.health["lost_intervals"] == []
                # retries are billed in simulated time
                assert result.real_usec > clean.real_usec
                return
        pytest.fail("no transient fault in 60 seeds; rate is broken")

    def test_exhausted_retries_roll_back_start(self):
        """esys_rate=1.0 defeats every retry: start must fail crash-
        consistently, and the set must work again once faults detach."""
        sub = create("simT3E")
        sub.attach_faults(FaultInjector(FaultPlan(
            1, FaultProfile("always-esys", esys_rate=1.0)
        )))
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        sub.machine.load(dot(200, use_fma=sub.HAS_FMA).program)
        with pytest.raises(SystemError_):
            es.start()
        assert not es.running
        assert papi._running_handle is None
        assert es.health.retries == papi.retry_policy.max_retries
        assert es.health.backoff_cycles > 0
        pmu = sub.machine.cpus[0].pmu
        assert all(not pmu.running(i) for i in range(sub.n_counters))
        sub.detach_faults()
        es.start()
        sub.machine.run_to_completion()
        values = es.stop()
        assert values[0] > 0


class TestLossFaults:
    def test_loss_at_stop_salvages_and_records_interval(self):
        """Seed 31 steals a counter exactly at stop: the whole window
        since the last good observation is honestly reported lost."""
        result, injector = run_one("31:loss")
        assert injector.summary()["loss"] >= 1
        intervals = result.lost_intervals
        assert len(intervals) == 1
        assert intervals[0]["recovered"] is True
        assert intervals[0]["start_cycle"] < intervals[0]["end_cycle"]
        assert "PAPI_ECLOST" in intervals[0]["reason"]
        # nothing was observed after start: the salvage point is zero
        assert all(v == 0 for v in result.values.values())

    def test_stolen_counter_reported_unavailable(self):
        sub = create("simT3E")
        injector = attach_from_spec(sub, "0:none")
        injector._stolen[(0, 2)] = 1000
        assert sub.unavailable_counters(0) == frozenset({2})
        assert sub.unavailable_counters(1) == frozenset()


class TestCorruption:
    def test_wild_wraps_are_clamped_never_surfaced(self):
        """corrupt_rate=1.0 poisons every read; the plausibility check
        must clamp every one to the last-good value -- reads stay
        monotone and physically possible, and the ledger counts them."""
        sub = create("simT3E")
        sub.attach_faults(FaultInjector(FaultPlan(
            5, FaultProfile("corrupt-all", corrupt_rate=1.0)
        )))
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        sub.machine.load(dot(2000, use_fma=sub.HAS_FMA).program)
        es.start()
        previous = [0]
        for _ in range(5):
            sub.machine.run(max_instructions=400)
            values = es.read()
            assert values[0] >= previous[0]
            assert 0 <= values[0] <= 8 * sub.real_cyc() + 4096
            previous = values
        sub.machine.run_to_completion()
        final = es.stop()
        assert final[0] >= previous[0]
        assert es.health.corruptions >= 6  # five reads + the stop

    def test_corruption_does_not_touch_the_register(self):
        """The wrap models a mis-latched read: the hardware register is
        fine, so a clean read after detaching sees the true count."""
        sub = create("simT3E")
        sub.attach_faults(FaultInjector(FaultPlan(
            5, FaultProfile("corrupt-all", corrupt_rate=1.0)
        )))
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        workload = dot(300, use_fma=sub.HAS_FMA)
        sub.machine.load(workload.program)
        es.start()
        sub.machine.run_to_completion()
        assert es.read() == [0]           # clamped to last-good
        sub.detach_faults()
        assert es.stop() == [workload.expect.flops]


class TestIrqFaults:
    def _overflow_run(self, spec, threshold=500):
        sub = create("simIA64")
        injector = attach_from_spec(sub, spec) if spec else None
        papi = Papi(sub)
        sub.machine.load(dot(3000, use_fma=sub.HAS_FMA).program)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        infos = []
        es.overflow(
            papi.event_name_to_code("PAPI_TOT_INS"), threshold, infos.append
        )
        es.start()
        sub.machine.run_to_completion()
        es.stop()
        return infos, injector

    def test_drops_and_delays_account_for_every_missing_delivery(self):
        clean_infos, _ = self._overflow_run(None)
        assert clean_infos
        for seed in range(1, 40):
            infos, injector = self._overflow_run(f"{seed}:irq")
            summary = injector.summary()
            if summary.get("irq_drop"):
                missing = len(clean_infos) - len(infos)
                assert missing > 0
                assert missing <= (
                    summary["irq_drop"] + summary.get("irq_delay", 0)
                )
                return
        pytest.fail("no dropped interrupt in 40 seeds; rate is broken")

    def test_delivery_faults_are_deterministic(self):
        a, inj_a = self._overflow_run("7:irq")
        b, inj_b = self._overflow_run("7:irq")
        assert inj_a.schedule() == inj_b.schedule()
        assert [(i.address, i.overflow_count) for i in a] == \
               [(i.address, i.overflow_count) for i in b]


class TestTimerJitter:
    def _mpx_run(self, spec):
        sub = create("simX86")
        injector = attach_from_spec(sub, spec) if spec else None
        papi = Papi(sub)
        es = papi.create_eventset()
        es.set_multiplex()
        es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS")
        sub.machine.load(dot(20000, use_fma=sub.HAS_FMA).program)
        es.start()
        sub.machine.run_to_completion()
        values = es.stop()
        return values, es, injector

    def test_jittered_rotation_still_estimates(self):
        values, es, _ = self._mpx_run("11:jitter")
        assert all(v >= 0 for v in values)
        assert values[1] > 0       # TOT_INS estimate survived the jitter
        assert es.health.mpx_rotation_faults == 0

    def test_jitter_is_deterministic(self):
        a, _, _ = self._mpx_run("11:jitter")
        b, _, _ = self._mpx_run("11:jitter")
        assert a == b

"""Integration tests: supervision over the real process transport.

These spawn genuine worker processes and kill or freeze them, so they
are the slowest tests in the daemon layer (a few seconds each); the
heartbeat/wedge timeouts are shrunk to keep detection latency small.
"""

import os
import signal
import time

import pytest

from repro.daemon import (
    DaemonConfig,
    PapidClient,
    PapidServer,
    SessionSpec,
    shard_of,
)


def wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def server():
    config = DaemonConfig(
        nshards=2, transport="process",
        heartbeat_interval=0.05, wedge_timeout=0.5, batch_timeout=2.0,
    )
    with PapidServer(config) as srv:
        yield srv


class TestSupervision:
    def test_killed_worker_is_detected_and_respawned(self, server):
        with PapidClient(server, seed=0) as client:
            specs = [SessionSpec(sid=f"sup-{i}", seed=i) for i in range(6)]
            client.create_fleet(specs)
            client.start_many([s.sid for s in specs])
            before = {
                r.sid: r.values
                for r in client.read_many([s.sid for s in specs])
            }
            victim = server.shards[0]
            victims = sorted(victim.sessions)
            os.kill(victim.proc.pid, signal.SIGKILL)
            # the heartbeat (50ms) must notice without any traffic
            assert wait_until(
                lambda: server.health().crashes_detected >= 1
            ), "supervisor never detected the SIGKILLed worker"
            assert wait_until(
                lambda: server.health().sessions_recovered >= len(victims)
            )
            assert server.shards[0].generation == 1
            after = client.read_many([s.sid for s in specs])
            for res in after:
                assert res.ok
                assert all(
                    res.values[k] >= before[res.sid][k]
                    for k in res.values
                )
                if res.sid in victims:
                    assert res.recovered and res.lost
            assert server.health().sessions_unrecovered == 0
            assert server.check_consistency() == []

    def test_wedged_worker_is_detected_by_heartbeat_timeout(self, server):
        with PapidClient(server, seed=0) as client:
            specs = [SessionSpec(sid=f"wdg-{i}", seed=i) for i in range(4)]
            client.create_fleet(specs)
            client.start_many([s.sid for s in specs])
            victim = server.shards[1]
            # SIGSTOP freezes the worker without killing it: exactly the
            # signature of a wedge (alive but unresponsive)
            os.kill(victim.proc.pid, signal.SIGSTOP)
            try:
                assert wait_until(
                    lambda: server.health().wedges_detected >= 1,
                    timeout=15.0,
                ), "supervisor never classified the frozen worker as wedged"
            finally:
                try:
                    os.kill(victim.proc.pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert wait_until(lambda: server.shards[1].generation == 1)
            results = client.read_many([s.sid for s in specs])
            assert all(r.ok for r in results)
            assert server.health().sessions_unrecovered == 0

    def test_mid_batch_kill_rolls_back_to_last_ack(self, server):
        with PapidClient(server, seed=0) as client:
            spec = SessionSpec(sid="roll-0")
            client.create(spec)
            client.start(spec.sid)
            acked = client.read(spec.sid)
            shard = server.shards[shard_of(spec.sid, 2)]
            os.kill(shard.proc.pid, signal.SIGKILL)
            # the next read races the kill: either it lands after
            # recovery (fresh worker) or gets retried; both must be
            # monotone vs the last acked snapshot
            res = client.read(spec.sid)
            assert all(
                res.values[k] >= acked.values[k] for k in res.values
            )
            assert wait_until(
                lambda: server.registry[spec.sid].recovered
            )
            (entry,) = server.registry[spec.sid].lost
            assert entry["start_cycle"] >= acked.cycle


class TestSupervisorMechanics:
    def test_request_check_wakes_promptly(self):
        config = DaemonConfig(
            nshards=1, transport="inline", heartbeat_interval=3600.0,
        )
        with PapidServer(config) as srv:
            scans = srv.supervisor.scans
            srv.supervisor.request_check()
            assert wait_until(
                lambda: srv.supervisor.scans > scans, timeout=5.0
            ), "wake event did not trigger a scan ahead of the interval"

    def test_supervisor_stops_with_drain(self):
        config = DaemonConfig(nshards=1, transport="inline")
        server = PapidServer(config)
        thread = server.supervisor
        server.drain()
        assert not thread.is_alive()

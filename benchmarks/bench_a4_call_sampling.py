"""A4 (ablation): statistical call sampling -- the tool developers' escape.

Section 4: "Unacceptable overhead has caused some tool developers to
reduce the number of calls through statistical sampling techniques."
This sweep quantifies the escape hatch on the worst-case substrate
(simX86 kernel-patch syscalls): measuring every k-th call cuts overhead
by ~k while the scaled per-function totals stay accurate for
steady-state functions.
"""

from _shared import emit, run_once
from repro.analysis import Table, overhead_pct, rel_error_pct
from repro.core.library import Papi
from repro.platforms import create
from repro.tools.dynaprof import Dynaprof, PapiProbe
from repro.tools.sampling_probe import SamplingPapiProbe
from repro.workloads import phased

KS = [1, 2, 4, 8, 16]
REPEATS = 64
EVENTS = ["PAPI_TOT_CYC"]


def app():
    return phased([("fp", 250)], repeats=REPEATS, names=("work",))


def baseline():
    sub = create("simX86")
    sub.machine.load(app().program)
    sub.machine.run_to_completion()
    return sub.machine.real_cycles


def full_truth():
    """Exhaustive (k=1 equivalent) per-function total as ground truth."""
    sub = create("simX86")
    papi = Papi(sub)
    dyn = Dynaprof(sub, papi)
    dyn.load(app())
    probe = dyn.add_probe(PapiProbe(papi, EVENTS))
    dyn.instrument(functions=["work"])
    dyn.run()
    return probe.profiles["work"].inclusive["PAPI_TOT_CYC"]


def measure(k: int, base_cycles: int, truth: float):
    sub = create("simX86")
    papi = Papi(sub)
    dyn = Dynaprof(sub, papi)
    dyn.load(app())
    probe = dyn.add_probe(SamplingPapiProbe(papi, EVENTS, k))
    dyn.instrument(functions=["work"])
    dyn.run()
    est = probe.profiles["work"].inclusive["PAPI_TOT_CYC"]
    ovh = overhead_pct(sub.machine.real_cycles, base_cycles)
    return ovh, rel_error_pct(est, truth), probe.measured_calls


def run_experiment():
    base = baseline()
    truth = full_truth()
    return {k: measure(k, base, truth) for k in KS}


def bench_a4_call_sampling(benchmark, capsys):
    results = run_once(benchmark, run_experiment)

    table = Table(
        ["sample every k-th call", "measured calls", "overhead %",
         "estimate error %"],
        title=f"A4: statistical call sampling on simX86 "
              f"({REPEATS} calls to a small function, syscall reads)",
    )
    for k, (ovh, err, measured) in results.items():
        table.add_row(k, measured, round(ovh, 1), round(err, 2))
    emit(capsys, table.render())

    overheads = [results[k][0] for k in KS]
    errors = [results[k][1] for k in KS]
    # overhead falls monotonically with k, by roughly the sampling factor
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[-1] * 6 < overheads[0]
    # the k=1 estimate equals truth; scaled estimates stay close on this
    # steady-state function (the technique's sweet spot)
    assert errors[0] < 1.0
    assert max(errors) < 20.0

"""Static counter oracle: affine bounds must bracket the exact oracle.

The contract under test: for every program the exact oracle can run,
``static_signal_bounds(p).brackets(expected_signal_counts(p))`` -- and
for control-regular programs (counted loops, straight-line bodies) the
bounds collapse to a point, i.e. the static oracle IS the exact oracle
without executing a single instruction.
"""

import pytest

from repro.hw.events import Signal
from repro.hw.isa import Assembler
from repro.lint.staticoracle import (
    Interval,
    StaticOracleError,
    _first_k,
    block_signal_vectors,
    static_signal_bounds,
    verify_block_affine,
)
from repro.validate.oracle import ORACLE_SIGNALS, expected_signal_counts
from repro.workloads.branches import random_branches
from repro.workloads.builder import Flow, loop_control_vector
from repro.workloads.linalg import dot, matmul
from repro.workloads.validation import conformance_mix


# ---------------------------------------------------------------------------
# interval arithmetic
# ---------------------------------------------------------------------------


class TestInterval:
    def test_exact_property(self):
        assert Interval(3, 3).exact == 3
        assert Interval(3, 5).exact is None
        assert Interval(0, None).exact is None

    def test_malformed_rejected(self):
        with pytest.raises(StaticOracleError):
            Interval(5, 3)
        with pytest.raises(StaticOracleError):
            Interval(-1, 2)


class TestFirstK:
    """Closed-form first-exit iteration vs brute-force simulation."""

    KINDS = ("lt", "le", "gt", "ge", "eq", "ne")

    @staticmethod
    def _holds(kind, x, bound):
        return {
            "lt": x < bound, "le": x <= bound,
            "gt": x > bound, "ge": x >= bound,
            "eq": x == bound, "ne": x != bound,
        }[kind]

    @staticmethod
    def _brute(kind, x0, s, bound, limit=10_000):
        for k in range(limit):
            if TestFirstK._holds(kind, x0 + k * s, bound):
                return k
        return None

    def test_matches_brute_force(self):
        for kind in self.KINDS:
            for x0 in range(-6, 7, 2):
                for s in (-3, -1, 1, 2, 5):
                    for bound in range(-5, 6, 2):
                        got = _first_k(kind, x0, s, bound)
                        want = self._brute(kind, x0, s, bound)
                        # None from _first_k means "gave up / diverges";
                        # a definite answer must be the true first k.
                        if got is not None:
                            assert got == want, (kind, x0, s, bound)

    def test_straightforward_upcount(self):
        # for (x = 0; !(x >= 8); x += 1): exits at k = 8
        assert _first_k("ge", 0, 1, 8) == 8


# ---------------------------------------------------------------------------
# exactness on control-regular programs
# ---------------------------------------------------------------------------


def _empty_loop(n):
    asm = Assembler(name=f"loop{n}")
    flow = Flow(asm)
    asm.func("main")
    with flow.loop(n, "r30", "r31"):
        pass
    asm.halt()
    asm.endfunc()
    return asm.build()


class TestExactness:
    @pytest.mark.parametrize("n", [0, 1, 5, 33])
    def test_counted_loop_is_exact_and_matches_closed_form(self, n):
        program = _empty_loop(n)
        bounds = static_signal_bounds(program)
        exact = expected_signal_counts(program)
        assert bounds.is_exact(), "counted loop must collapse to a point"
        assert bounds.brackets(exact), bounds.mismatches(exact)
        vec = loop_control_vector(n)
        # the halt is the only instruction outside the loop skeleton
        assert exact[Signal.TOT_INS] == vec[Signal.TOT_INS] + 1
        for sig in (Signal.BR_INS, Signal.BR_CN,
                    Signal.BR_TKN, Signal.BR_NTK):
            assert bounds.interval(sig).exact == vec[sig] == exact[sig]

    def test_bottom_test_single_block_loop(self):
        # do { body } while (x < limit): step and compare share a block
        asm = Assembler(name="bottom")
        asm.func("main")
        asm.li("r1", 0)
        asm.li("r2", 7)
        asm.label("top")
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", "top")
        asm.halt()
        asm.endfunc()
        program = asm.build()
        bounds = static_signal_bounds(program)
        exact = expected_signal_counts(program)
        assert bounds.is_exact()
        assert bounds.brackets(exact), bounds.mismatches(exact)
        assert bounds.interval(Signal.BR_CN).exact == 7

    def test_nested_loops_matmul_is_exact(self):
        program = matmul(3).program
        bounds = static_signal_bounds(program)
        exact = expected_signal_counts(program)
        assert bounds.is_exact()
        assert bounds.brackets(exact), bounds.mismatches(exact)

    def test_call_into_leaf_is_exact(self):
        program = dot(16).program
        bounds = static_signal_bounds(program)
        exact = expected_signal_counts(program)
        assert bounds.is_exact()
        assert bounds.brackets(exact), bounds.mismatches(exact)


# ---------------------------------------------------------------------------
# soundness where exactness is impossible
# ---------------------------------------------------------------------------


class TestSoundLooseness:
    def test_data_dependent_branches_bracket(self):
        program = random_branches(64).program
        bounds = static_signal_bounds(program)
        exact = expected_signal_counts(program)
        assert bounds.brackets(exact), bounds.mismatches(exact)
        # taken/not-taken split genuinely depends on the data
        assert bounds.interval(Signal.BR_TKN).exact is None

    def test_conformance_mix_brackets(self):
        program = conformance_mix(20).program
        bounds = static_signal_bounds(program)
        exact = expected_signal_counts(program)
        assert bounds.brackets(exact), bounds.mismatches(exact)

    def test_recursion_degrades_to_unbounded_not_wrong(self):
        asm = Assembler(name="rec")
        asm.func("main")
        asm.call("spin")
        asm.halt()
        asm.endfunc()
        asm.func("spin")
        asm.call("spin")
        asm.ret()
        asm.endfunc()
        bounds = static_signal_bounds(asm.build())
        assert bounds.hi[Signal.TOT_INS] is None


# ---------------------------------------------------------------------------
# block-engine affine invariance
# ---------------------------------------------------------------------------


class TestBlockAffine:
    @pytest.mark.parametrize(
        "make", [lambda: dot(8), lambda: matmul(3),
                 lambda: conformance_mix(12)],
        ids=["dot", "matmul", "conformance_mix"],
    )
    def test_workloads_certify(self, make):
        vectors = verify_block_affine(make().program)
        assert vectors
        for vec in vectors.values():
            assert vec[Signal.TOT_INS] >= 1

    def test_block_vectors_sum_to_straightline_counts(self):
        asm = Assembler(name="straight")
        asm.func("main")
        asm.li("r1", 1)
        asm.fli("f1", 2.0)
        asm.fadd("f2", "f1", "f1")
        asm.halt()
        asm.endfunc()
        program = asm.build()
        vectors = block_signal_vectors(program.resolve())
        total = [0] * Signal.N_SIGNALS
        for vec in vectors.values():
            for sig in ORACLE_SIGNALS:
                total[sig] += vec[sig]
        exact = expected_signal_counts(program)
        for sig in (Signal.TOT_INS, Signal.INT_INS,
                    Signal.FP_ADD, Signal.FP_MOV):
            assert total[sig] == exact[sig]


# ---------------------------------------------------------------------------
# trace-level certificates
# ---------------------------------------------------------------------------


def _superblock_loop(n=10):
    """A multi-block loop whose body is a unique static path: a JMP
    split plus a CALL to a leaf, closed by one conditional branch."""
    asm = Assembler(name="superblock")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.label("loop")
    asm.addi("r4", "r4", 1)
    asm.jmp("mid")
    asm.label("mid")
    asm.call("leaf")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    asm.func("leaf")
    asm.fadd("f2", "f1", "f1")
    asm.ret()
    asm.endfunc()
    return asm.build()


def _diamond_loop(n=10):
    """A loop with a data-dependent branch inside: no unique path."""
    asm = Assembler(name="diamond")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.label("loop")
    asm.beq("r1", "r0", "else_")
    asm.addi("r4", "r4", 1)
    asm.jmp("join")
    asm.label("else_")
    asm.addi("r5", "r5", 1)
    asm.label("join")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


def _probed_loop(n=10):
    asm = Assembler(name="probed")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.label("loop")
    asm.probe(1)
    asm.addi("r4", "r4", 1)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


class TestTraceCertificates:
    def test_superblock_loop_certifies(self):
        report = verify_block_affine(_superblock_loop())
        certs = report.certified_traces
        assert len(certs) == 1
        (cert,) = certs.values()
        assert cert.certified and cert.vector is not None
        assert cert.path_len > 2  # genuinely multi-block, not a self-loop
        assert cert.vector[Signal.TOT_INS] == cert.path_len
        # the trace crosses a CALL/RET pair and an FP add in the leaf
        assert cert.vector[Signal.FP_ADD] == 1

    def test_diamond_loop_skips_with_reason(self):
        report = verify_block_affine(_diamond_loop())
        # the outer back edge cannot certify (two paths), and the skip
        # names the branch rather than passing silently
        skipped = report.skipped_traces
        assert skipped, "multi-path cycle must not certify"
        for cert in skipped.values():
            assert cert.reason  # never silent
        outer = [c for c in skipped.values() if "branch" in c.reason]
        assert outer, [c.reason for c in skipped.values()]
        assert not report.certified_traces

    def test_probed_loop_skip_names_the_probe(self):
        report = verify_block_affine(_probed_loop())
        skipped = report.skipped_traces
        assert len(skipped) == 1
        (cert,) = skipped.values()
        assert "PROBE" in cert.reason
        assert not cert.certified

    def test_self_loop_defers_to_block_tier(self):
        asm = Assembler(name="tight")
        asm.func("main")
        asm.li("r1", 0)
        asm.li("r2", 50)
        asm.label("loop")
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", "loop")
        asm.halt()
        asm.endfunc()
        report = verify_block_affine(asm.build())
        (cert,) = report.skipped_traces.values()
        assert "block tier" in cert.reason

    def test_report_keeps_dict_interface(self):
        report = verify_block_affine(_superblock_loop())
        assert dict(report)  # block vectors still reachable as a mapping
        for vec in report.values():
            assert vec[Signal.TOT_INS] >= 1

"""E6: PAPI_flops normalization and the POWER3 rounding discrepancy.

Paper claims (Section 4): "the PAPI_flops call attempts to return the
expected number of floating point operations, which sometimes entails
multiplying the measured counts by a factor of two to count
floating-point multiply-add instructions as two floating point
operations and/or subtracting counts for miscellaneous types of floating
point instructions"; and the anecdote: "on the IBM POWER3 platform, a
discrepancy in the number of floating point instructions was resolved
when it was discovered that extra rounding instructions were being
introduced to convert between double and single precision and were being
included as floating point instructions."

Reproduction: two kernels (an FMA-heavy dot product and a convert-heavy
mixed-precision sum) measured on every direct platform, reading the raw
``PAPI_FP_INS`` next to the normalized ``PAPI_FP_OPS``.
"""

from _shared import emit, run_once
from repro.analysis import Table
from repro.core.library import Papi
from repro.platforms import DIRECT_PLATFORMS, create
from repro.workloads import dot, mixed_precision_sum

N = 1200


def measure(platform, workload):
    substrate = create(platform)
    papi = Papi(substrate)
    es = papi.create_eventset()
    es.add_named("PAPI_FP_INS", "PAPI_FP_OPS")
    substrate.machine.load(workload.program)
    es.start()
    substrate.machine.run_to_completion()
    fp_ins, fp_ops = es.stop()
    return fp_ins, fp_ops


def run_experiment():
    rows = []
    for platform in DIRECT_PLATFORMS:
        sub = create(platform)
        fma_wl = dot(N, use_fma=sub.HAS_FMA)
        cvt_wl = mixed_precision_sum(N)
        fma_ins, fma_ops = measure(platform, fma_wl)
        cvt_ins, cvt_ops = measure(platform, cvt_wl)
        rows.append((platform, sub.HAS_FMA, fma_ins, fma_ops,
                     fma_wl.expect.flops, cvt_ins, cvt_ops,
                     cvt_wl.expect.flops))
    return rows


def bench_e6_flops_normalization(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)

    table = Table(
        ["platform", "fma hw", "dot FP_INS", "dot FP_OPS", "dot true",
         "cvt FP_INS", "cvt FP_OPS", "cvt true"],
        title=f"E6: raw FP_INS vs normalized FP_OPS (dot n={N} and a "
              f"convert-heavy sum n={N})",
    )
    data = {}
    for row in rows:
        data[row[0]] = row[1:]
        table.add_row(*row)
    emit(capsys, table.render())

    for platform, (has_fma, fma_ins, fma_ops, fma_true,
                   cvt_ins, cvt_ops, cvt_true) in data.items():
        # the normalized call is exact everywhere, on both kernels
        assert fma_ops == fma_true, platform
        assert cvt_ops == cvt_true, platform
        if has_fma:
            # FMA hardware: half the instructions do all the flops
            assert fma_ins == fma_true // 2, platform

    # the POWER3 anecdote: FP_INS includes converts there and only there
    _, _, _, _, cvt_ins_power, _, cvt_true_power = data["simPOWER"]
    assert cvt_ins_power == 2 * cvt_true_power
    for platform in ("simT3E", "simX86", "simIA64"):
        assert data[platform][4] == cvt_true_power, platform

"""Regression tests: probe insertion/removal against a *running* machine.

Compiled regions specialize on the probe registry (handlers are
pre-resolved into the generated code), so instrumenting, removing
probes, or mutating the registry from inside a probe handler mid-run
must all invalidate the engines' compiled code.  Every scenario is
checked for bit-exactness across the three engine tiers.
"""

import pytest

from repro.hw import Assembler, Machine, MachineConfig
from repro.platforms import create
from repro.tools.dynaprof import Dynaprof, UserProbe
from repro.workloads import demo_app

TIERS = ["off", "block", "trace"]


def _midrun_instrument(engine):
    """Start uninstrumented, attach+instrument at an arbitrary pause."""
    sub = create("simPOWER", engine=engine)
    dyn = Dynaprof(sub)
    dyn.load(demo_app(scale=10))
    sub.machine.run(max_instructions=400)  # engine warm on old code
    dyn.attach()
    calls = []
    dyn.add_probe(UserProbe(entry=lambda fn, cpu: calls.append(fn)))
    dyn.instrument()
    dyn.run()
    return list(sub.machine.counts), calls


def _midrun_remove(engine):
    """Start instrumented, strip every probe at an arbitrary pause."""
    sub = create("simPOWER", engine=engine)
    dyn = Dynaprof(sub)
    dyn.load(demo_app(scale=10))
    calls = []
    dyn.add_probe(UserProbe(entry=lambda fn, cpu: calls.append(fn)))
    dyn.instrument()
    dyn.run(max_instructions=500)  # regions with compiled-in probes ran
    dyn.remove_probes()
    result = sub.machine.run_to_completion()
    assert result.halted
    return list(sub.machine.counts), calls


class TestMidRunInstrument:
    def test_bit_exact_across_tiers(self):
        ref_counts, ref_calls = _midrun_instrument("off")
        assert ref_calls  # probes really fired after mid-run insertion
        for tier in TIERS[1:]:
            counts, calls = _midrun_instrument(tier)
            assert counts == ref_counts, tier
            assert calls == ref_calls, tier


class TestMidRunRemove:
    def test_bit_exact_across_tiers(self):
        ref_counts, ref_calls = _midrun_remove("off")
        assert ref_calls  # probes fired before removal
        for tier in TIERS[1:]:
            counts, calls = _midrun_remove(tier)
            assert counts == ref_counts, tier
            assert calls == ref_calls, tier

    def test_removed_probes_stop_firing(self):
        sub = create("simPOWER", engine="trace")
        dyn = Dynaprof(sub)
        dyn.load(demo_app(scale=10))
        calls = []
        dyn.add_probe(UserProbe(entry=lambda fn, cpu: calls.append(fn)))
        dyn.instrument()
        dyn.run(max_instructions=500)
        dyn.remove_probes()
        fired = len(calls)
        sub.machine.run_to_completion()
        assert len(calls) == fired
        from repro.hw.isa import Op

        assert all(ins.op != Op.PROBE for ins in dyn._program.instructions)

    def test_remove_before_start_strips_program(self):
        sub = create("simPOWER", engine="trace")
        dyn = Dynaprof(sub)
        dyn.load(demo_app(scale=10))
        dyn.instrument()
        dyn.remove_probes()
        from repro.hw.events import Signal

        sub.machine.run_to_completion()
        assert sub.machine.counts[Signal.PRB_INS] == 0

    def test_remove_without_instrument_rejected(self):
        from repro.core.errors import InvalidArgumentError

        sub = create("simPOWER", engine="trace")
        dyn = Dynaprof(sub)
        dyn.load(demo_app(scale=10))
        with pytest.raises(InvalidArgumentError):
            dyn.remove_probes()

    def test_reinstrument_after_remove(self):
        sub = create("simPOWER", engine="trace")
        dyn = Dynaprof(sub)
        dyn.load(demo_app(scale=10))
        calls = []
        dyn.add_probe(UserProbe(entry=lambda fn, cpu: calls.append(fn)))
        dyn.instrument()
        dyn.remove_probes()
        dyn.instrument()
        dyn.run()
        assert calls


def _probe_loop_program(n=3000):
    asm = Assembler(name="reg-mut")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.label("loop")
    asm.probe(1)
    asm.addi("r4", "r4", 7)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


class TestHandlerMutatesRegistry:
    """A handler that changes the probe registry invalidates the region
    it is running inside; execution continues precisely."""

    def _run(self, engine):
        m = Machine(MachineConfig(engine=engine))
        m.load(_probe_loop_program())
        seen = [0]

        def handler(pid, cpu):
            seen[0] += 1
            if seen[0] == 1000:
                m.register_probe(99, lambda p, c: None)
            elif seen[0] == 2000:
                m.unregister_probe(99)

        m.register_probe(1, handler)
        result = m.run_to_completion()
        assert result.halted
        return list(m.counts), seen[0]

    def test_bit_exact_across_tiers(self):
        ref = self._run("off")
        for tier in TIERS[1:]:
            assert self._run(tier) == ref, tier

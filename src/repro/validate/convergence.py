"""Convergence plane: multiplex estimation error vs runtime length.

Section 2 of the paper: "Erroneous results can occur when the runtime is
insufficient to permit the estimated counter values to converge to their
expected values."  This plane makes the hazard a measured curve: five
architectural events multiplexed onto simX86's two counters, the run
length swept across doublings, each event's estimate scored against the
oracle.  The matrix commits two regressions -- at the longest duration
every event's relative error is under :data:`FINAL_ERROR_BOUND`, and the
*median* error is monotonically non-increasing across the sweep (the
"run longer, trust more" property tools rely on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.library import Papi
from repro.core.sampling import relative_error
from repro.platforms import create
from repro.validate.matrix import MatrixCell
from repro.validate.oracle import expected_preset_values, expected_signal_counts
from repro.workloads import phased

#: the multiplexed EventSet: five architectural presets on two counters.
EVENTS = ["PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_LD_INS", "PAPI_SR_INS",
          "PAPI_BR_INS"]

#: platform under test; two counters makes five events genuinely contend.
PLATFORM = "simX86"

#: multiplex rotation quantum (cycles), matching experiment E3.
QUANTUM = 6000

#: per-phase iteration counts; one repeat is deliberately shorter than a
#: full rotation cycle so the shortest runs are badly estimated.
PHASES = (("fp", 1500), ("mem", 1500), ("br", 1500))

#: phase-repeat sweep (each point doubles the runtime).
DURATIONS = (1, 2, 4, 8, 16, 32)
DURATIONS_THOROUGH = (1, 2, 4, 8, 16, 32, 64)

#: regression bound: worst per-event relative error at the longest
#: duration.  The paper's "long enough run time" made concrete.
FINAL_ERROR_BOUND = 0.01


@dataclass(frozen=True)
class SweepPoint:
    """One duration's outcome: per-event errors + rotation count."""

    errors: Dict[str, float]
    rotations: int
    n_counters: int


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure_sweep(
    durations: Sequence[int] = DURATIONS,
    seed: int = 12345,
) -> Dict[int, "SweepPoint"]:
    """Per-duration, per-event multiplex relative error vs the oracle."""
    out: Dict[int, SweepPoint] = {}
    for repeats in durations:
        substrate = create(PLATFORM, seed=seed)
        papi = Papi(substrate)
        papi.mpx_quantum_cycles = QUANTUM
        work = phased(list(PHASES), repeats=repeats,
                      use_fma=substrate.HAS_FMA)
        counts = expected_signal_counts(work.program)
        expectations = expected_preset_values(
            PLATFORM, counts,
            {n: ev.signals for n, ev in substrate.native_events.items()},
        )
        es = papi.create_eventset()
        try:
            es.set_multiplex()
            es.add_named(*EVENTS)
            substrate.machine.load(work.program)
            es.start()
            substrate.machine.run_to_completion()
            values = dict(zip(es.event_names, es.stop()))
            rotations = es.mpx_rotations
        finally:
            if es.running:  # an exception left the set running
                es.stop()
            papi.destroy_eventset(es)
        out[repeats] = SweepPoint(
            errors={
                symbol: relative_error(values[symbol],
                                       expectations[symbol].expected)
                for symbol in EVENTS
            },
            rotations=rotations,
            n_counters=substrate.n_counters,
        )
    return out


def run_convergence_plane(
    thorough: bool = False,
    seed: int = 12345,
) -> List[MatrixCell]:
    durations = DURATIONS_THOROUGH if thorough else DURATIONS
    sweep = measure_sweep(durations, seed=seed)
    cells: List[MatrixCell] = []
    medians = []
    for repeats in durations:
        point = sweep[repeats]
        med = _median(list(point.errors.values()))
        medians.append(med)
        cells.append(MatrixCell(
            plane="convergence", platform=PLATFORM,
            name=f"median-error@repeats={repeats}",
            status="pass", actual=med,
            detail=f"{len(EVENTS)} events on {point.n_counters} "
                   f"counters, {point.rotations} rotations",
        ))
    longest = durations[-1]
    for symbol, err in sorted(sweep[longest].errors.items()):
        cells.append(MatrixCell(
            plane="convergence", platform=PLATFORM,
            name=f"{symbol}@repeats={longest}",
            status="pass" if err < FINAL_ERROR_BOUND else "fail",
            expected=FINAL_ERROR_BOUND, actual=err, error=err,
            detail="converged estimate at longest runtime",
        ))
    # "run longer, trust more" holds until the curve converges: once
    # both neighbours sit under FINAL_ERROR_BOUND the estimates are
    # rotation-phase jitter around the true value, and demanding strict
    # ordering there would regress on noise rather than on convergence.
    monotone = all(
        b <= a or max(a, b) < FINAL_ERROR_BOUND
        for a, b in zip(medians, medians[1:])
    )
    cells.append(MatrixCell(
        plane="convergence", platform=PLATFORM, name="median-monotone",
        status="pass" if monotone else "fail",
        actual=medians[-1],
        detail="median error non-increasing until converged: "
               + " -> ".join(f"{m:.3g}" for m in medians),
    ))
    return cells

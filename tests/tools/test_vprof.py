"""Unit tests: the VProf-style source annotator."""

import pytest

from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.core.profile import Profil, ProfileBuffer
from repro.hw.isa import INS_BYTES
from repro.platforms import create
from repro.tools.vprof import annotate
from repro.workloads import demo_app, dot


def profiled_run(platform="simIA64", wl=None, threshold=150):
    substrate = create(platform)
    papi = Papi(substrate)
    wl = wl or dot(4000, use_fma=substrate.HAS_FMA)
    substrate.machine.load(wl.program)
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    buf = ProfileBuffer.covering(0, (len(wl.program) + 16) * INS_BYTES)
    prof = Profil(es, buf, papi.event_name_to_code("PAPI_TOT_INS"),
                  threshold)
    prof.install()
    es.start()
    substrate.machine.run_to_completion()
    es.stop()
    prof.collect()
    return wl, buf


class TestAnnotation:
    def test_lines_cover_program(self):
        wl, buf = profiled_run()
        ann = annotate(wl.program, buf)
        assert len(ann.lines) == len(wl.program)
        assert ann.lines[0].pc == 0

    def test_shares_sum_to_coverage(self):
        wl, buf = profiled_run()
        ann = annotate(wl.program, buf)
        assert sum(l.share for l in ann.lines) == pytest.approx(
            ann.coverage()
        )
        assert 0.9 <= ann.coverage() <= 1.0

    def test_hot_lines_in_the_loop(self):
        wl, buf = profiled_run()
        ann = annotate(wl.program, buf)
        # the dot kernel's loop body starts after 3 setup instructions
        for line in ann.hottest_lines(3):
            assert line.pc >= 3

    def test_function_summary_demo_app(self):
        wl, buf = profiled_run(wl=demo_app(scale=40), threshold=200)
        ann = annotate(wl.program, buf)
        summaries = {s.name: s for s in ann.function_summaries()}
        assert set(summaries) == {"compute", "memwalk", "branchy", "main"}
        # memwalk burns the most cycles -> on a TOT_INS profile the three
        # phases all show up; main is cold
        assert summaries["main"].hits < summaries["memwalk"].hits
        assert ann.hottest_function() in ("compute", "memwalk", "branchy")

    def test_text_renders(self):
        wl, buf = profiled_run()
        ann = annotate(wl.program, buf)
        text = ann.to_text()
        assert "vprof" in text
        assert "FMA" in text or "FMUL" in text
        summary = ann.summary_text()
        assert "main" in summary

    def test_empty_buffer_rejected(self):
        wl = dot(100, use_fma=True)
        buf = ProfileBuffer.covering(0, 1024)
        with pytest.raises(InvalidArgumentError):
            annotate(wl.program, buf)

    def test_annotated_line_fields(self):
        wl, buf = profiled_run()
        ann = annotate(wl.program, buf)
        line = ann.lines[0]
        assert line.function == "main"
        assert isinstance(line.text, str) and line.text

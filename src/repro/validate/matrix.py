"""The conformance matrix: aggregation and rendering of validate results.

Every plane runner returns a list of :class:`MatrixCell`; a
:class:`ConformanceMatrix` collects them, knows whether the whole run
passed (no cell failed), and renders itself as JSON (machine-readable,
the CI artifact) or text (via :mod:`repro.analysis.report`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import Table

#: canonical plane order for reports.
PLANES = ("oracle", "virtual", "components", "cost", "convergence",
          "skid", "refute")

#: cell verdicts.  ``skip`` records *why* a cell is unscored (preset not
#: mapped / touches micro-architectural signals / feature unsupported)
#: -- an honest matrix shows its holes instead of silently omitting them.
STATUSES = ("pass", "fail", "skip")


@dataclass
class MatrixCell:
    """One scored (or deliberately unscored) check."""

    plane: str
    platform: str
    name: str               # preset symbol, op name, event, or metric
    status: str             # pass | fail | skip
    expected: Optional[float] = None
    actual: Optional[float] = None
    #: relative error (oracle/convergence) or score (skid: fraction of
    #: samples attributed to the true code) where the plane defines one.
    error: Optional[float] = None
    #: platform semantics legitimately differ from the reference
    #: catalogue on this workload (the POWER3 hazard, surfaced).
    drift: bool = False
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"bad cell status {self.status!r}")

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "plane": self.plane,
            "platform": self.platform,
            "name": self.name,
            "status": self.status,
        }
        for key in ("expected", "actual", "error"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.drift:
            out["drift"] = True
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class ConformanceMatrix:
    """All cells from one validate run, plus run metadata."""

    cells: List[MatrixCell] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def extend(self, cells: Sequence[MatrixCell]) -> None:
        self.cells.extend(cells)

    @property
    def passed(self) -> bool:
        return not any(c.status == "fail" for c in self.cells)

    def failures(self) -> List[MatrixCell]:
        return [c for c in self.cells if c.status == "fail"]

    def plane_cells(self, plane: str) -> List[MatrixCell]:
        return [c for c in self.cells if c.plane == plane]

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-plane tallies: ``{plane: {pass: n, fail: n, skip: n}}``."""
        out: Dict[str, Dict[str, int]] = {}
        for cell in self.cells:
            tally = out.setdefault(
                cell.plane, {status: 0 for status in STATUSES}
            )
            tally[cell.status] += 1
        return out

    # -- rendering ---------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": "repro.validate/1",
            "passed": self.passed,
            "meta": dict(self.meta),
            "summary": self.summary(),
            "cells": [c.to_json() for c in self.cells],
        }

    def to_json_str(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        chunks: List[str] = []
        summary = self.summary()
        head = Table(["plane", "pass", "fail", "skip"],
                     title="conformance summary")
        for plane in PLANES:
            if plane not in summary:
                continue
            tally = summary[plane]
            head.add_row(plane, tally["pass"], tally["fail"], tally["skip"])
        chunks.append(head.render())
        for plane in PLANES:
            cells = self.plane_cells(plane)
            if not cells:
                continue
            table = Table(
                ["platform", "name", "status", "expected", "actual",
                 "error", "note"],
                title=f"plane: {plane}",
            )
            for c in cells:
                note = c.detail
                if c.drift:
                    note = f"[drift] {note}".strip()
                table.add_row(c.platform, c.name, c.status, c.expected,
                              c.actual, c.error, note or None)
            chunks.append(table.render())
        verdict = "PASS" if self.passed else "FAIL"
        fails = len(self.failures())
        chunks.append(
            f"conformance: {verdict} "
            f"({len(self.cells)} cells, {fails} failures)"
        )
        return "\n\n".join(chunks)

    def to_markdown(self) -> str:
        """Summary as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        lines = ["| plane | pass | fail | skip |", "| --- | --- | --- | --- |"]
        summary = self.summary()
        for plane in PLANES:
            if plane not in summary:
                continue
            tally = summary[plane]
            lines.append(
                f"| {plane} | {tally['pass']} | {tally['fail']} "
                f"| {tally['skip']} |"
            )
        return "\n".join(lines)


def run_all(
    platforms: Optional[Sequence[str]] = None,
    planes: Optional[Sequence[str]] = None,
    thorough: bool = False,
    seed: int = 12345,
) -> ConformanceMatrix:
    """Run the requested planes and aggregate one conformance matrix.

    *platforms* defaults to all six; *planes* to every plane in
    :data:`PLANES` (plus the attach/SMP virtualization rung of the
    oracle plane).  *thorough* scales work up (longer convergence
    sweeps, denser sampling, the full refutation combo cross) for the
    nightly CI job; the default is sized for a PR-scoped quick matrix.

    *seed* is the run's single master seed.  The planes that make
    stochastic choices beyond machine construction -- the refutation
    program generator, the convergence sweeps, and the cost plane's
    transient-fault profile -- each receive an independent stream via
    :func:`repro.validate.seeds.derive_seed` (labels ``plane:refute``,
    ``plane:convergence``, ``fault:transient``), so one documented
    integer pins them all without any two sharing a stream.  The purely
    deterministic planes (oracle, virtual, cost's clean rung, skid) take
    the master seed directly: their verdicts are exact equalities that
    must hold at *any* seed.
    """
    # plane imports are deferred so `repro.validate.matrix` stays
    # importable from the plane modules without a cycle.
    from repro.refute.engine import run_refute_plane
    from repro.validate.components import run_components_plane
    from repro.validate.conformance import (
        run_oracle_plane,
        run_virtualization_plane,
    )
    from repro.validate.convergence import run_convergence_plane
    from repro.validate.cost import run_cost_plane
    from repro.validate.seeds import derive_seed
    from repro.validate.skid import run_skid_plane

    from repro.platforms import PLATFORM_NAMES

    names = list(platforms) if platforms else list(PLATFORM_NAMES)
    unknown = [n for n in names if n not in PLATFORM_NAMES]
    if unknown:
        raise ValueError(f"unknown platforms: {unknown}")
    wanted = list(planes) if planes else list(PLANES)
    bad = [p for p in wanted if p not in PLANES]
    if bad:
        raise ValueError(f"unknown planes: {bad}; known: {list(PLANES)}")

    matrix = ConformanceMatrix(meta={
        "platforms": names,
        "planes": wanted,
        "thorough": thorough,
        "seed": seed,
    })
    if "oracle" in wanted:
        matrix.extend(run_oracle_plane(names, thorough=thorough, seed=seed))
    if "virtual" in wanted:
        matrix.extend(
            run_virtualization_plane(names, thorough=thorough, seed=seed)
        )
    if "components" in wanted:
        matrix.extend(
            run_components_plane(names, thorough=thorough, seed=seed)
        )
    if "cost" in wanted:
        matrix.extend(run_cost_plane(names, seed=seed))
    if "convergence" in wanted:
        matrix.extend(run_convergence_plane(
            thorough=thorough,
            seed=derive_seed(seed, "plane:convergence"),
        ))
    if "skid" in wanted:
        matrix.extend(run_skid_plane(names, thorough=thorough, seed=seed))
    if "refute" in wanted:
        matrix.extend(run_refute_plane(
            names, thorough=thorough,
            seed=derive_seed(seed, "plane:refute"),
        ))
    return matrix

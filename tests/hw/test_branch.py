"""Unit tests: branch predictors."""

import pytest

from repro.hw.branch import (
    GsharePredictor,
    StaticTakenPredictor,
    TwoBitPredictor,
    make_predictor,
)


class TestStatic:
    def test_always_taken(self):
        p = StaticTakenPredictor()
        assert p.predict(0) is True
        p.update(0, False)
        assert p.predict(0) is True


class TestTwoBit:
    def test_learns_taken_loop(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.update(10, True)
        assert p.predict(10) is True

    def test_learns_not_taken(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.update(10, False)
        assert p.predict(10) is False

    def test_hysteresis_survives_single_flip(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.update(10, True)
        p.update(10, False)  # one not-taken shouldn't flip a saturated state
        assert p.predict(10) is True

    def test_reset(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.update(10, False)
        p.reset()
        assert p.predict(10) is True  # back to weakly-taken

    def test_aliasing_uses_table_mask(self):
        p = TwoBitPredictor(table_size=4)
        for _ in range(4):
            p.update(0, False)
        # pc 4 aliases to the same entry with a 4-entry table
        assert p.predict(4) is False

    def test_bad_table_size_rejected(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(table_size=3)


class TestGshare:
    def test_learns_alternating_pattern(self):
        """Gshare learns period-2 patterns that defeat per-pc two-bit."""
        p = GsharePredictor(history_bits=4)
        pattern = [True, False] * 200
        # train
        for taken in pattern:
            p.update(10, taken)
        correct = 0
        for taken in pattern:
            if p.predict(10) == taken:
                correct += 1
            p.update(10, taken)
        assert correct / len(pattern) > 0.95

    def test_two_bit_fails_alternating_pattern(self):
        p = TwoBitPredictor()
        pattern = [True, False] * 200
        for taken in pattern:
            p.update(10, taken)
        correct = 0
        for taken in pattern:
            if p.predict(10) == taken:
                correct += 1
            p.update(10, taken)
        assert correct / len(pattern) <= 0.6

    def test_reset_clears_history(self):
        p = GsharePredictor()
        for _ in range(10):
            p.update(3, False)
        p.reset()
        assert p.predict(3) is True

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_size=100)
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("static-taken", StaticTakenPredictor),
        ("two-bit", TwoBitPredictor),
        ("gshare", GsharePredictor),
    ])
    def test_make_predictor(self, kind, cls):
        assert isinstance(make_predictor(kind), cls)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_predictor("oracle")

"""Documented-model predictor: what each substrate *must* report.

The refutation engine needs, for every generated program and every
substrate, the value the platform's **documented model** says each
preset will read.  That model has four published pieces, all reused here
rather than re-derived:

- the architectural ISA semantics, executed by the independent reference
  interpreter (:func:`repro.validate.oracle.expected_signal_counts`);
- the platform's native-event signal table (``NativeEvent.signals``)
  and preset mapping (:mod:`repro.core.presets`), combined by
  :func:`repro.validate.oracle.expected_preset_values`;
- the L1-instruction-cache fetch geometry (``l1i.line_bits``), which
  fully determines ``Signal.L1I_ACC`` on a single CPU;
- the static counter oracle's affine bounds
  (:mod:`repro.lint.staticoracle`), a closed-form *second* derivation of
  the same counts that must bracket -- and, for branch-free-exact
  programs, equal -- the interpreter's answer.

:class:`SubstrateModel` is a frozen snapshot of those documented
parameters, detached from the live machine.  That detachment is the
point: the sensitivity gate (``tests/refute/test_sensitivity.py``)
perturbs a *model* constant while the machine stays faithful, and every
such mutant must be refuted -- proving the harness actually compares
model against measurement instead of measurement against itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.lint.staticoracle import static_exact_signal_counts, static_signal_bounds
from repro.refute.generator import GeneratedProgram
from repro.validate.oracle import (
    ORACLE_SIGNALS,
    OracleError,
    PresetExpectation,
    expected_preset_values,
    expected_signal_counts,
)

__all__ = [
    "Prediction",
    "SubstrateModel",
    "predict",
]


@dataclass(frozen=True)
class SubstrateModel:
    """The documented counter model of one platform, as data.

    Everything the predictor consumes comes through this record, never
    from a live :class:`~repro.platforms.base.Substrate` -- so a test can
    hand the engine a deliberately wrong model (via ``replace``) and
    demand a refutation.
    """

    platform: str
    #: ``direct`` or ``sampling`` (drives measurement strategy, not
    #: prediction -- the documented counts are the same either way).
    counting: str
    #: native event name -> tuple of hardware signal indices it sums.
    native_signals: Dict[str, Tuple[int, ...]]
    #: documented per-operation interface costs (AccessCosts).
    costs: object
    #: documented L1I line width; fetch-line transitions per the dynamic
    #: pc stream at this width = predicted ``Signal.L1I_ACC`` (ncpus=1).
    l1i_line_bytes: int
    has_fma: bool

    @property
    def l1i_line_bits(self) -> int:
        return self.l1i_line_bytes.bit_length() - 1

    @staticmethod
    def of(platform: str, seed: int = 12345) -> "SubstrateModel":
        """Build the model from a platform's published tables.

        Instantiates a throwaway substrate purely to read its class-level
        documentation (event table, costs, cache geometry); the instance
        is discarded and never measured against.
        """
        from repro.platforms import create

        sub = create(platform, seed=seed)
        return SubstrateModel.from_substrate(sub)

    @staticmethod
    def from_substrate(substrate) -> "SubstrateModel":
        return SubstrateModel(
            platform=substrate.NAME,
            counting=substrate.COUNTING,
            native_signals={
                name: tuple(ev.signals)
                for name, ev in substrate.native_events.items()
            },
            costs=substrate.COSTS,
            l1i_line_bytes=substrate.machine.hierarchy.config.l1i.line_bytes,
            has_fma=substrate.HAS_FMA,
        )

    def with_costs(self, **changes) -> "SubstrateModel":
        """A copy with perturbed access costs (mutation hook)."""
        return replace(self, costs=replace(self.costs, **changes))

    def with_line_bytes(self, line_bytes: int) -> "SubstrateModel":
        """A copy with a perturbed L1I line width (mutation hook)."""
        return replace(self, l1i_line_bytes=int(line_bytes))

    def with_native_signals(
        self, name: str, signals: Tuple[int, ...]
    ) -> "SubstrateModel":
        """A copy with one native event's signal vector replaced."""
        if name not in self.native_signals:
            raise KeyError(f"{self.platform}: no native event {name!r}")
        table = dict(self.native_signals)
        table[name] = tuple(signals)
        return replace(self, native_signals=table)


@dataclass(frozen=True)
class Prediction:
    """Everything the documented model pins down for one program."""

    platform: str
    program: str
    #: exact architectural signal counts (reference interpreter),
    #: including ``L1I_ACC`` at the model's documented line width.
    signal_counts: List[int]
    #: predicted fetch-line transitions (== signal_counts[L1I_ACC]).
    l1i_accesses: int
    #: preset symbol -> expectation under the model's native table.
    presets: Dict[str, PresetExpectation]
    #: static-oracle closed form agreed exactly with the interpreter
    #: (None when the program is not statically exact -- bounds only).
    static_exact: Optional[bool]
    #: human-readable bracket violations from the static oracle (must be
    #: empty; a non-empty tuple refutes the static-bracket assumption).
    static_violations: Tuple[str, ...]

    def checkable_presets(self) -> Dict[str, PresetExpectation]:
        return {s: e for s, e in self.presets.items() if e.checkable}


def predict(
    generated: GeneratedProgram,
    model: SubstrateModel,
    max_instructions: int = 5_000_000,
) -> Prediction:
    """Derive the documented-model expectation for one generated program.

    Runs the reference interpreter once (with the model's fetch
    geometry), applies the model's preset mappings, and cross-checks the
    static oracle's affine bounds against the interpreted counts.
    Raises :class:`~repro.validate.oracle.OracleError` if the program
    faults -- the generator must never emit such a program, and the
    property suite holds it to that.
    """
    program = generated.program
    counts = expected_signal_counts(
        program,
        max_instructions=max_instructions,
        iline_shift=model.l1i_line_bits,
    )
    presets = expected_preset_values(
        model.platform, counts, model.native_signals
    )

    bounds = static_signal_bounds(program)
    violations = tuple(sorted(bounds.mismatches(counts)))
    exact = static_exact_signal_counts(program)
    static_exact: Optional[bool]
    if exact is None:
        static_exact = None
    else:
        static_exact = all(
            exact[sig] == counts[sig] for sig in ORACLE_SIGNALS
        )

    from repro.hw.events import Signal

    return Prediction(
        platform=model.platform,
        program=generated.name,
        signal_counts=counts,
        l1i_accesses=counts[Signal.L1I_ACC],
        presets=presets,
        static_exact=static_exact,
        static_violations=violations,
    )

"""The PAPI preset event catalogue.

Presets are the portable half of the PAPI event story: "a standard set
of events deemed most relevant for application performance tuning".
Each platform substrate maps as many presets as it can onto its native
events -- directly (one native event), derived (a signed combination of
native events), or not at all (the holes in the portability matrix).

This module defines the *catalogue*: stable codes, symbols,
descriptions, and each preset's **reference semantics** as a coefficient
vector over hardware signals.  The reference semantics are what the
preset ideally counts; platform mappings may deviate (the paper's
Section 4: "even when the same event is available, it may have
different semantics on different platforms"), and the test suite uses
the reference vector to quantify exactly where each platform deviates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core import constants as C
from repro.core.errors import InvalidArgumentError, NotPresetError
from repro.hw.events import Signal


@dataclass(frozen=True)
class Preset:
    """One catalogue entry."""

    index: int
    symbol: str
    description: str
    #: reference semantics: (signal, coefficient) terms.  Empty tuple
    #: means the preset is defined only operationally (none here).
    reference: Tuple[Tuple[int, int], ...]

    @property
    def code(self) -> int:
        return C.PAPI_PRESET_MASK | self.index


def _p(index, symbol, description, reference) -> Preset:
    return Preset(index, symbol, description, tuple(reference))


#: The catalogue, in stable index order.
PRESETS: List[Preset] = [
    _p(0, "PAPI_TOT_CYC", "Total cycles", [(Signal.TOT_CYC, 1)]),
    _p(1, "PAPI_TOT_INS", "Instructions completed", [(Signal.TOT_INS, 1)]),
    _p(2, "PAPI_INT_INS", "Integer instructions", [(Signal.INT_INS, 1)]),
    _p(3, "PAPI_FP_INS", "Floating point instructions",
       [(Signal.FP_ADD, 1), (Signal.FP_MUL, 1), (Signal.FP_DIV, 1),
        (Signal.FP_SQRT, 1), (Signal.FP_FMA, 1)]),
    _p(4, "PAPI_FP_OPS", "Floating point operations (FMA counts as two)",
       [(Signal.FP_ADD, 1), (Signal.FP_MUL, 1), (Signal.FP_DIV, 1),
        (Signal.FP_SQRT, 1), (Signal.FP_FMA, 2)]),
    _p(5, "PAPI_FMA_INS", "Fused multiply-add instructions",
       [(Signal.FP_FMA, 1)]),
    _p(6, "PAPI_FDV_INS", "Floating point divide instructions",
       [(Signal.FP_DIV, 1)]),
    _p(7, "PAPI_FSQ_INS", "Floating point square root instructions",
       [(Signal.FP_SQRT, 1)]),
    _p(8, "PAPI_LD_INS", "Load instructions", [(Signal.LD_INS, 1)]),
    _p(9, "PAPI_SR_INS", "Store instructions", [(Signal.SR_INS, 1)]),
    _p(10, "PAPI_LST_INS", "Load/store instructions",
       [(Signal.LD_INS, 1), (Signal.SR_INS, 1)]),
    _p(11, "PAPI_L1_DCM", "Level 1 data cache misses",
       [(Signal.L1D_MISS, 1)]),
    _p(12, "PAPI_L1_ICM", "Level 1 instruction cache misses",
       [(Signal.L1I_MISS, 1)]),
    _p(13, "PAPI_L1_TCM", "Level 1 total cache misses",
       [(Signal.L1D_MISS, 1), (Signal.L1I_MISS, 1)]),
    _p(14, "PAPI_L2_TCM", "Level 2 total cache misses",
       [(Signal.L2_MISS, 1)]),
    _p(15, "PAPI_L2_TCA", "Level 2 total cache accesses",
       [(Signal.L2_ACC, 1)]),
    _p(16, "PAPI_TLB_DM", "Data TLB misses", [(Signal.TLB_DM, 1)]),
    _p(17, "PAPI_BR_INS", "Branch instructions", [(Signal.BR_INS, 1)]),
    _p(18, "PAPI_BR_CN", "Conditional branch instructions",
       [(Signal.BR_CN, 1)]),
    _p(19, "PAPI_BR_TKN", "Conditional branches taken",
       [(Signal.BR_TKN, 1)]),
    _p(20, "PAPI_BR_NTK", "Conditional branches not taken",
       [(Signal.BR_NTK, 1)]),
    _p(21, "PAPI_BR_MSP", "Conditional branches mispredicted",
       [(Signal.BR_MSP, 1)]),
    _p(22, "PAPI_BR_PRC", "Conditional branches correctly predicted",
       [(Signal.BR_CN, 1), (Signal.BR_MSP, -1)]),
    _p(23, "PAPI_STL_CCY", "Cycles with no instructions completed (stalls)",
       [(Signal.STL_CYC, 1)]),
    _p(24, "PAPI_MEM_SCY", "Cycles stalled waiting for memory",
       [(Signal.MEM_RCY, 1)]),
    _p(25, "PAPI_HW_INT", "Hardware interrupts", [(Signal.HW_INT, 1)]),
]

#: symbol -> Preset
PRESET_BY_SYMBOL: Dict[str, Preset] = {p.symbol: p for p in PRESETS}
#: index -> Preset
PRESET_BY_INDEX: Dict[int, Preset] = {p.index: p for p in PRESETS}

NUM_PRESETS = len(PRESETS)


def preset_from_code(code: int) -> Preset:
    """Decode a preset event code; raises NotPresetError otherwise."""
    if not C.is_preset(code):
        raise NotPresetError(f"0x{code:08x} is not a preset event code")
    idx = C.preset_index(code)
    try:
        return PRESET_BY_INDEX[idx]
    except KeyError:
        raise NotPresetError(f"no preset with index {idx}") from None


def preset_from_symbol(symbol: str) -> Preset:
    try:
        return PRESET_BY_SYMBOL[symbol]
    except KeyError:
        raise NotPresetError(f"no preset named {symbol!r}") from None


def event_name_to_code(name: str) -> int:
    """PAPI_event_name_to_code for presets (native codes are per-library)."""
    return preset_from_symbol(name).code


def event_code_to_name(code: int) -> str:
    return preset_from_code(code).symbol


def reference_vector(preset: Preset) -> Dict[int, int]:
    """The preset's reference semantics as a {signal: coeff} dict."""
    vec: Dict[int, int] = {}
    for sig, coeff in preset.reference:
        vec[sig] = vec.get(sig, 0) + coeff
    return vec


def reference_count(preset: Preset, counts: List[int]) -> int:
    """Evaluate the reference semantics against a raw signal-counts array.

    Used by tests and the calibrate utility to compute ground truth the
    way an omniscient observer would.
    """
    return sum(coeff * counts[sig] for sig, coeff in preset.reference)


# ---------------------------------------------------------------------------
# per-platform mapping declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PresetMapping:
    """How one platform realizes one preset.

    ``terms`` is a signed combination of native event names; a single
    ``(+1)`` term is a *direct* mapping, anything else is *derived*.
    """

    preset: Preset
    terms: Tuple[Tuple[str, int], ...]

    @property
    def kind(self) -> str:
        if len(self.terms) == 1 and self.terms[0][1] == 1:
            return "direct"
        return "derived"

    @property
    def native_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.terms)

    def evaluate(self, native_values: Dict[str, int]) -> int:
        return sum(coeff * native_values[name] for name, coeff in self.terms)


def mapping_signal_vector(
    terms: Tuple[Tuple[str, int], ...],
    native_signals: Dict[str, Tuple[int, ...]],
) -> Dict[int, int]:
    """The {signal: coefficient} vector a platform mapping actually counts.

    Each term contributes its coefficient once per hardware signal of the
    named native event.  Comparing this against :func:`reference_vector`
    is how semantic drift between a platform's realization and the
    catalogue's reference semantics -- the POWER3 rounding-instruction
    discrepancy of Section 4 -- is detected mechanically (papi-lint rule
    PL204).  Native names absent from *native_signals* are skipped; the
    dangling-name check (PL201) reports those separately.
    """
    vec: Dict[int, int] = {}
    for name, coeff in terms:
        for sig in native_signals.get(name, ()):
            vec[sig] = vec.get(sig, 0) + coeff
    return {sig: c for sig, c in vec.items() if c != 0}


#: Hand-authored preset tables, platform name -> preset symbol -> terms.
#: This mirrors how real PAPI ships a preset table per substrate.  A
#: missing symbol means the preset is unavailable on that platform.
PLATFORM_PRESET_TABLES: Dict[str, Dict[str, List[Tuple[str, int]]]] = {
    "simT3E": {
        "PAPI_TOT_CYC": [("CYC_CNT", 1)],
        "PAPI_TOT_INS": [("INS_CNT", 1)],
        "PAPI_INT_INS": [("INT_OPS", 1)],
        # no FMA hardware: FP_INS == FP_OPS here, and the FMA/DIV/SQRT
        # presets are simply unavailable.
        "PAPI_FP_INS": [("FP_ARITH", 1)],
        "PAPI_FP_OPS": [("FP_ARITH", 1)],
        "PAPI_LD_INS": [("LD_QW", 1)],
        "PAPI_SR_INS": [("ST_QW", 1)],
        "PAPI_LST_INS": [("LD_QW", 1), ("ST_QW", 1)],
        "PAPI_L1_DCM": [("DC_MISS", 1)],
        "PAPI_L1_ICM": [("IC_MISS", 1)],
        "PAPI_L1_TCM": [("DC_MISS", 1), ("IC_MISS", 1)],
        "PAPI_BR_INS": [("BR_CNT", 1)],
    },
    "simX86": {
        "PAPI_TOT_CYC": [("CPU_CLK_UNHALTED", 1)],
        "PAPI_TOT_INS": [("INST_RETIRED", 1)],
        "PAPI_FP_INS": [("FLOPS", 1)],
        "PAPI_FP_OPS": [("FLOPS", 1)],  # x87: no FMA to normalize
        "PAPI_LD_INS": [("LD_RETIRED", 1)],
        "PAPI_SR_INS": [("ST_RETIRED", 1)],
        "PAPI_LST_INS": [("DATA_MEM_REFS", 1)],
        "PAPI_L1_DCM": [("DCU_LINES_IN", 1)],
        "PAPI_L1_ICM": [("IFU_IFETCH_MISS", 1)],
        "PAPI_L1_TCM": [("DCU_LINES_IN", 1), ("IFU_IFETCH_MISS", 1)],
        "PAPI_L2_TCM": [("L2_LINES_IN", 1)],
        # L2 accesses = L1 misses of both flavours (derived).
        "PAPI_L2_TCA": [("DCU_LINES_IN", 1), ("IFU_IFETCH_MISS", 1)],
        "PAPI_TLB_DM": [("DTLB_MISS", 1)],
        "PAPI_BR_INS": [("BR_INST_RETIRED", 1)],
        "PAPI_BR_TKN": [("BR_TAKEN_RETIRED", 1)],
        # semantics quirk: BR_INST_RETIRED includes unconditional jumps,
        # so this derived "not taken" over-subtracts relative to the
        # reference vector -- exactly the per-platform interpretation
        # hazard Section 4 warns about.
        "PAPI_BR_NTK": [("BR_INST_RETIRED", 1), ("BR_TAKEN_RETIRED", -1)],
        "PAPI_BR_MSP": [("BR_MISS_PRED_RETIRED", 1)],
        "PAPI_BR_PRC": [("BR_INST_RETIRED", 1), ("BR_MISS_PRED_RETIRED", -1)],
        "PAPI_STL_CCY": [("RESOURCE_STALLS", 1)],
    },
    "simPOWER": {
        "PAPI_TOT_CYC": [("PM_CYC", 1)],
        "PAPI_TOT_INS": [("PM_INST_CMPL", 1)],
        # The POWER3 anecdote: PM_FPU_INS includes precision converts,
        # so PAPI_FP_INS over-counts relative to the reference.
        "PAPI_FP_INS": [("PM_FPU_INS", 1)],
        # ... and the corrected derived formula used by PAPI_FP_OPS:
        # add FMA once more (to count it as two) and subtract converts.
        "PAPI_FP_OPS": [("PM_FPU_INS", 1), ("PM_FPU_FMA", 1), ("PM_FPU_CVT", -1)],
        "PAPI_FMA_INS": [("PM_FPU_FMA", 1)],
        "PAPI_FDV_INS": [("PM_FPU_DIV", 1)],
        "PAPI_FSQ_INS": [("PM_FPU_SQRT", 1)],
        "PAPI_LD_INS": [("PM_LD_CMPL", 1)],
        "PAPI_SR_INS": [("PM_ST_CMPL", 1)],
        "PAPI_LST_INS": [("PM_LD_CMPL", 1), ("PM_ST_CMPL", 1)],
        "PAPI_L1_DCM": [("PM_LD_MISS_L1", 1)],
        "PAPI_L1_ICM": [("PM_INST_MISS_L1", 1)],
        "PAPI_L1_TCM": [("PM_LD_MISS_L1", 1), ("PM_INST_MISS_L1", 1)],
        "PAPI_L2_TCM": [("PM_LD_MISS_L2", 1)],
        "PAPI_L2_TCA": [("PM_LD_MISS_L1", 1), ("PM_INST_MISS_L1", 1)],
        "PAPI_TLB_DM": [("PM_DTLB_MISS", 1)],
        "PAPI_BR_INS": [("PM_BR_CMPL", 1)],
        "PAPI_BR_CN": [("PM_CBR_CMPL", 1)],
        "PAPI_BR_MSP": [("PM_BR_MPRED", 1)],
        "PAPI_BR_PRC": [("PM_CBR_CMPL", 1), ("PM_BR_MPRED", -1)],
        "PAPI_STL_CCY": [("PM_STALL_CYC", 1)],
        "PAPI_MEM_SCY": [("PM_MEM_WAIT_CYC", 1)],
    },
    "simALPHA": {
        "PAPI_TOT_CYC": [("CYCLES", 1)],
        "PAPI_TOT_INS": [("RET_INS", 1)],
        # EV6-family Alphas have no fused multiply-add, so FP_INS and
        # FP_OPS coincide and the FMA preset is unavailable.
        "PAPI_FP_INS": [("RET_FLOPS", 1)],
        "PAPI_FP_OPS": [("RET_FLOPS", 1)],
        "PAPI_LD_INS": [("RET_LOADS", 1)],
        "PAPI_SR_INS": [("RET_STORES", 1)],
        "PAPI_LST_INS": [("RET_LOADS", 1), ("RET_STORES", 1)],
        "PAPI_L1_DCM": [("DC_MISSES", 1)],
        "PAPI_L2_TCM": [("BCACHE_MISSES", 1)],
        "PAPI_TLB_DM": [("DTB_MISSES", 1)],
        "PAPI_BR_INS": [("RET_BRANCHES", 1)],
        "PAPI_BR_MSP": [("RET_COND_BR_MSP", 1)],
    },
    "simSPARC": {
        "PAPI_TOT_CYC": [("Cycle_cnt", 1)],
        "PAPI_TOT_INS": [("Instr_cnt", 1)],
        # no FMA hardware on UltraSPARC-II
        "PAPI_FP_INS": [("FP_instr_cnt", 1)],
        "PAPI_FP_OPS": [("FP_instr_cnt", 1)],
        "PAPI_LD_INS": [("DC_rd", 1)],
        "PAPI_SR_INS": [("DC_wr", 1)],
        "PAPI_LST_INS": [("DC_rd", 1), ("DC_wr", 1)],
        # NOTE: no PAPI_L1_TCM here -- DC_rd_miss and IC_miss are pinned
        # to the *same* PIC, so the pair can never be counted together
        # (a real libcpc-era limitation).
        "PAPI_L1_DCM": [("DC_rd_miss", 1)],
        "PAPI_L1_ICM": [("IC_miss", 1)],
        "PAPI_L2_TCM": [("EC_misses", 1)],
        "PAPI_L2_TCA": [("EC_ref", 1)],
        "PAPI_BR_INS": [("Dispatch0_br", 1)],
        "PAPI_BR_MSP": [("Dispatch0_mispred", 1)],
        "PAPI_BR_PRC": [("Dispatch0_br", 1), ("Dispatch0_mispred", -1)],
        "PAPI_MEM_SCY": [("Load_use_stall", 1)],
    },
    "simIA64": {
        "PAPI_TOT_CYC": [("CPU_CYCLES", 1)],
        "PAPI_TOT_INS": [("IA64_INST_RETIRED", 1)],
        "PAPI_FP_INS": [("FP_OPS_RETIRED", 1)],
        # FMA retires once in FP_OPS_RETIRED; add it again for FMA=2.
        "PAPI_FP_OPS": [("FP_OPS_RETIRED", 1), ("FP_FMA_RETIRED", 1)],
        "PAPI_FMA_INS": [("FP_FMA_RETIRED", 1)],
        "PAPI_LD_INS": [("LOADS_RETIRED", 1)],
        "PAPI_SR_INS": [("STORES_RETIRED", 1)],
        "PAPI_LST_INS": [("LOADS_RETIRED", 1), ("STORES_RETIRED", 1)],
        "PAPI_L1_DCM": [("L1D_READ_MISSES", 1)],
        "PAPI_L1_ICM": [("L1I_MISSES", 1)],
        "PAPI_L1_TCM": [("L1D_READ_MISSES", 1), ("L1I_MISSES", 1)],
        "PAPI_L2_TCM": [("L2_MISSES", 1)],
        "PAPI_L2_TCA": [("L1D_READ_MISSES", 1), ("L1I_MISSES", 1)],
        "PAPI_TLB_DM": [("DTLB_MISSES", 1)],
        "PAPI_BR_INS": [("BR_RETIRED", 1)],
        "PAPI_BR_MSP": [("BR_MISPRED", 1)],
        "PAPI_BR_PRC": [("BR_RETIRED", 1), ("BR_MISPRED", -1)],
        "PAPI_STL_CCY": [("BACK_END_STALLS", 1)],
        "PAPI_MEM_SCY": [("MEM_STALLS", 1)],
    },
}


def platform_preset_map(platform_name: str) -> Dict[str, PresetMapping]:
    """Resolve the hand-authored table for *platform_name* into mappings."""
    try:
        table = PLATFORM_PRESET_TABLES[platform_name]
    except KeyError:
        raise InvalidArgumentError(
            f"no preset table for platform {platform_name!r}"
        ) from None
    out: Dict[str, PresetMapping] = {}
    for symbol, terms in table.items():
        preset = preset_from_symbol(symbol)
        out[symbol] = PresetMapping(preset, tuple((n, c) for n, c in terms))
    return out

"""E2: calibrate-utility convergence of sampled counts (Section 4).

Paper claim: "Test runs of the PAPI calibrate utility on this substrate
have shown that event counts converge to the expected value, given a
long enough run time to obtain sufficient samples."

Reproduction: the calibrate utility sweeps run lengths on simALPHA
(counts estimated from ProfileMe samples) and on simT3E (direct
counting, error identically zero -- the control).
"""

from _shared import emit, run_once
from repro.analysis import Table
from repro.core.calibrate import calibrate_convergence
from repro.platforms import create

SIZES = [1_000, 4_000, 16_000, 64_000, 256_000]
PERIOD = 512


def run_experiment():
    sampled = calibrate_convergence(
        create("simALPHA"), SIZES, kernel="dot", sampling_period=PERIOD
    )
    direct = calibrate_convergence(create("simT3E"), SIZES, kernel="dot")
    return sampled, direct


def bench_e2_calibrate_convergence(benchmark, capsys):
    sampled, direct = run_once(benchmark, run_experiment)

    table = Table(
        ["kernel size n", "run instructions", "sampled est.",
         "expected", "error %", "direct error %"],
        title=f"E2: calibrate convergence, dot kernel, sampling period "
              f"{PERIOD} (error ~ 1/sqrt(samples))",
    )
    for sp, dp in zip(sampled.points, direct.points):
        table.add_row(
            sp.expected // 2, sp.run_instructions, int(sp.estimate),
            int(sp.expected), round(sp.rel_error * 100, 2),
            round(dp.rel_error * 100, 2),
        )
    emit(capsys, table.render())

    errors = sampled.errors()
    # convergence: the longest run is far more accurate than the shortest
    assert sampled.is_converging(), errors
    assert errors[-1] < 0.05, f"long-run error too large: {errors[-1]:.3f}"
    assert errors[0] > errors[-1]
    # direct counting is exact at every size (the control)
    assert all(e == 0.0 for e in direct.errors())

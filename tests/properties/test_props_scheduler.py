"""Property-based tests: scheduler accounting conservation laws."""

from hypothesis import given, settings, strategies as st

from repro.hw import Machine
from repro.hw.events import Signal
from repro.simos import OS
from repro.workloads import dot


class TestSchedulerConservation:
    @given(
        sizes=st.lists(st.integers(min_value=50, max_value=800),
                       min_size=1, max_size=4),
        quantum=st.integers(min_value=300, max_value=8000),
    )
    @settings(max_examples=25, deadline=None)
    def test_virtual_times_sum_to_machine_time(self, sizes, quantum):
        """Sum of per-thread virtual cycles == machine user cycles,
        for any thread mix and any quantum."""
        machine = Machine()
        os_ = OS(machine, quantum_cycles=quantum)
        threads = [
            os_.spawn(dot(n, use_fma=True).program) for n in sizes
        ]
        os_.run()
        assert all(t.finished for t in threads)
        assert sum(t.user_cycles for t in threads) == machine.user_cycles

    @given(
        sizes=st.lists(st.integers(min_value=50, max_value=500),
                       min_size=2, max_size=3),
        quantum=st.integers(min_value=200, max_value=4000),
    )
    @settings(max_examples=20, deadline=None)
    def test_context_switch_costs_fully_accounted(self, sizes, quantum):
        machine = Machine()
        os_ = OS(machine, quantum_cycles=quantum, ctx_switch_cost=333)
        for n in sizes:
            os_.spawn(dot(n, use_fma=True).program)
        stats = os_.run()
        assert machine.system_cycles == 333 * stats.context_switches
        assert machine.real_cycles == (
            machine.user_cycles + machine.system_cycles
        )

    @given(
        n=st.integers(min_value=100, max_value=600),
        quantum=st.integers(min_value=100, max_value=5000),
    )
    @settings(max_examples=20, deadline=None)
    def test_scheduling_does_not_change_event_counts(self, n, quantum):
        """Total FMA count is invariant under any time-slicing."""
        direct = Machine()
        direct.load(dot(n, use_fma=True).program)
        direct.run_to_completion()
        expected = direct.counts[Signal.FP_FMA]

        machine = Machine()
        os_ = OS(machine, quantum_cycles=quantum)
        os_.spawn(dot(n, use_fma=True).program)
        os_.spawn(dot(n, use_fma=True).program)
        os_.run()
        assert machine.counts[Signal.FP_FMA] == 2 * expected

"""papi-lint: static analysis for PAPI counter programs.

Five analyzers behind one diagnostic engine (see DESIGN.md):

- **API misuse** (:mod:`repro.lint.apilint`, rules PL0xx): an AST
  state machine over Papi/EventSet/HighLevel call sequences;
- **static feasibility** (:mod:`repro.lint.feasibility`, PL1xx):
  decides counter allocability without executing, reusing the runtime
  allocator's bipartite matching over the platform tables;
- **preset-table validation** (:mod:`repro.lint.presetlint`, PL2xx):
  dangling natives, malformed mappings, FMA normalization, semantic
  drift versus the catalogue's reference vectors;
- **flow-sensitive typestate** (:mod:`repro.lint.flow` over
  :mod:`repro.lint.cfg` / :mod:`repro.lint.dataflow` /
  :mod:`repro.lint.typestate` / :mod:`repro.lint.summaries`, PL3xx
  lifecycle + PL4xx SMP rules): a CFG-based, path-sensitive,
  interprocedural analysis of EventSet/counter lifecycles, enabled
  with ``--flow``;
- **static counter oracle** (:mod:`repro.lint.staticoracle`): affine
  bounds on every architecturally-determined signal of a machine
  program, derived without executing it, bracketing the exact oracle.

CLI: ``python -m repro.tools.cli lint | check-events | check-presets``
or simply ``python -m repro.lint <files>``.
"""

from repro.lint.diagnostics import (
    JSON_SCHEMA,
    Diagnostic,
    apply_suppressions,
    parse_suppressions,
    render_json,
    render_text,
    sort_diagnostics,
    worst_severity,
)
from repro.lint.engine import (
    FLOW_SHADOWED_BY,
    dedupe_diagnostics,
    lint_file,
    lint_source,
)
from repro.lint.feasibility import (
    EventResolution,
    FeasibilityReport,
    check_events,
    portability_matrix,
    resolve_event,
)
from repro.lint.presetlint import (
    lint_mapping,
    lint_platform_table,
    lint_preset_tables,
)
from repro.lint.rules import RULES, Rule, Severity, rule
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.staticoracle import (
    AffineReport,
    Interval,
    SignalBounds,
    StaticOracleError,
    TraceCertificate,
    static_signal_bounds,
    trace_certificates,
    verify_block_affine,
)

__all__ = [
    "AffineReport",
    "Diagnostic",
    "EventResolution",
    "FLOW_SHADOWED_BY",
    "FeasibilityReport",
    "Interval",
    "JSON_SCHEMA",
    "RULES",
    "Rule",
    "Severity",
    "SignalBounds",
    "StaticOracleError",
    "TraceCertificate",
    "apply_suppressions",
    "check_events",
    "dedupe_diagnostics",
    "lint_file",
    "lint_mapping",
    "lint_platform_table",
    "lint_preset_tables",
    "lint_source",
    "parse_suppressions",
    "portability_matrix",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_event",
    "rule",
    "sort_diagnostics",
    "static_signal_bounds",
    "to_sarif",
    "trace_certificates",
    "verify_block_affine",
    "worst_severity",
]

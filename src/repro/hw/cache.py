"""Set-associative caches and a data TLB for the simulated machine.

These produce the cache/TLB miss event signals (``L1D_MISS``, ``L1I_MISS``,
``L2_MISS``, ``TLB_DM``) that several PAPI presets map to, and they supply
the miss *penalties* that make instrumented code measurably perturb the
application (the paper's "cache pollution" observation: counter-interface
code evicts application lines, changing the memory behaviour of the code
being measured).

Replacement policy is strict LRU.  Lookups operate on *line indices*
(byte address >> line-size bits); the caller does the shifting so the hot
path stays arithmetic-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``size_bytes`` must equal ``n_sets * assoc * line_bytes`` with power of
    two sets and line size.
    """

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.assoc < 1:
            raise ValueError(f"{self.name}: associativity must be >= 1")
        if self.size_bytes % (self.line_bytes * self.assoc) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of line_bytes * assoc"
            )
        if not _is_pow2(self.n_sets):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def line_bits(self) -> int:
        return self.line_bytes.bit_length() - 1


class Cache:
    """One level of set-associative cache with LRU replacement.

    The cache is indexed by *line index* (address pre-shifted by the line
    size); each set is a most-recently-used-last list of line indices.
    """

    __slots__ = ("config", "_sets", "_set_mask", "hits", "misses")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.n_sets)]
        self._set_mask = config.n_sets - 1
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def access(self, line: int) -> bool:
        """Access *line*; returns True on hit.  Misses allocate the line."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            # LRU update: move to most-recently-used position.
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.config.assoc:
            del ways[0]
        ways.append(line)
        return False

    def probe(self, line: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        return line in self._sets[line & self._set_mask]

    def evict(self, line: int) -> bool:
        """Remove *line* if present (used to model interface cache pollution)."""
        ways = self._sets[line & self._set_mask]
        if line in ways:
            ways.remove(line)
            return True
        return False

    def flush(self) -> None:
        """Invalidate all lines (statistics are retained)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def contents(self) -> List[Tuple[int, List[int]]]:
        """Snapshot of non-empty sets, LRU..MRU order (for tests)."""
        return [(i, list(w)) for i, w in enumerate(self._sets) if w]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (
            f"<Cache {c.name} {c.size_bytes}B/{c.assoc}way/{c.line_bytes}B "
            f"hits={self.hits} misses={self.misses}>"
        )


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the data TLB (fully associative, LRU)."""

    entries: int
    page_bytes: int

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("TLB must have at least one entry")
        if not _is_pow2(self.page_bytes):
            raise ValueError("page size must be a power of two")

    @property
    def page_bits(self) -> int:
        return self.page_bytes.bit_length() - 1


class TLB:
    """Fully associative translation lookaside buffer with LRU replacement."""

    __slots__ = ("config", "_entries", "hits", "misses")

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._entries: List[int] = []
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def access(self, page: int) -> bool:
        """Translate *page*; returns True on TLB hit."""
        entries = self._entries
        if page in entries:
            if entries[-1] != page:
                entries.remove(page)
                entries.append(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.config.entries:
            del entries[0]
        entries.append(page)
        return False

    def flush(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def resident(self) -> List[int]:
        """Pages currently mapped, LRU..MRU order (for tests)."""
        return list(self._entries)


@dataclass(frozen=True)
class HierarchyConfig:
    """The full memory hierarchy of one simulated platform."""

    l1d: CacheConfig
    l1i: CacheConfig
    l2: CacheConfig
    tlb: TLBConfig
    l2_latency: int = 8          #: extra cycles on an L1 miss / L2 hit
    mem_latency: int = 60        #: extra cycles on an L2 miss
    tlb_walk_latency: int = 24   #: extra cycles on a data TLB miss

    def __post_init__(self) -> None:
        if min(self.l2_latency, self.mem_latency, self.tlb_walk_latency) < 0:
            raise ValueError("latencies must be non-negative")


def default_hierarchy() -> HierarchyConfig:
    """A small, miss-prone hierarchy suitable for fast simulation.

    Sized so that the standard workloads (arrays of a few thousand words)
    overflow L1 but mostly fit in L2, giving realistic mixed hit/miss
    behaviour at simulation-friendly scales.
    """
    return HierarchyConfig(
        l1d=CacheConfig("L1D", size_bytes=4096, line_bytes=32, assoc=2),
        l1i=CacheConfig("L1I", size_bytes=4096, line_bytes=32, assoc=2),
        l2=CacheConfig("L2", size_bytes=65536, line_bytes=64, assoc=4),
        tlb=TLBConfig(entries=16, page_bytes=4096),
    )


class MemoryHierarchy:
    """L1D + L1I + unified L2 + data TLB wired together.

    Returns the incurred latency for each access so the CPU can charge
    stall cycles; raises the corresponding signal counts via the counts
    array handed in by the CPU (kept decoupled so the hierarchy is
    testable standalone).
    """

    __slots__ = ("config", "l1d", "l1i", "l2", "tlb", "_l1d_shift", "_l1i_shift",
                 "_l2_shift", "_page_shift")

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or default_hierarchy()
        self.l1d = Cache(self.config.l1d)
        self.l1i = Cache(self.config.l1i)
        self.l2 = Cache(self.config.l2)
        self.tlb = TLB(self.config.tlb)
        self._l1d_shift = self.config.l1d.line_bits
        self._l1i_shift = self.config.l1i.line_bits
        self._l2_shift = self.config.l2.line_bits
        self._page_shift = self.config.tlb.page_bits

    @property
    def l2_line_bytes(self) -> int:
        """Line size of the shared L2 -- the uncore transfer unit.

        Every L2 miss moves one full line across the socket's memory
        interface, so bandwidth components convert line-fill counts to
        bytes with this geometry constant.
        """
        return self.config.l2.line_bytes

    def uncore_lines_in(self) -> int:
        """Lines filled into the shared L2 (socket-scoped, all CPUs).

        The hierarchy is shared by every CPU, so this total is placement
        invariant: migrating a thread changes which CPU misses, not how
        many lines cross the memory interface.
        """
        return self.l2.misses

    def data_access(self, byte_addr: int) -> Tuple[int, bool, bool, bool]:
        """One data access at *byte_addr*.

        Returns ``(latency, l1_miss, l2_miss, tlb_miss)`` where latency is
        the stall penalty in cycles beyond the base instruction latency.
        """
        latency = 0
        tlb_miss = not self.tlb.access(byte_addr >> self._page_shift)
        if tlb_miss:
            latency += self.config.tlb_walk_latency
        l1_miss = not self.l1d.access(byte_addr >> self._l1d_shift)
        l2_miss = False
        if l1_miss:
            latency += self.config.l2_latency
            l2_miss = not self.l2.access(byte_addr >> self._l2_shift)
            if l2_miss:
                latency += self.config.mem_latency
        return latency, l1_miss, l2_miss, tlb_miss

    def inst_fetch(self, byte_addr: int) -> Tuple[int, bool, bool]:
        """One instruction fetch.  Returns ``(latency, l1i_miss, l2_miss)``."""
        latency = 0
        l1_miss = not self.l1i.access(byte_addr >> self._l1i_shift)
        l2_miss = False
        if l1_miss:
            latency += self.config.l2_latency
            l2_miss = not self.l2.access(byte_addr >> self._l2_shift)
            if l2_miss:
                latency += self.config.mem_latency
        return latency, l1_miss, l2_miss

    # -- access summaries (block-engine replay support) ------------------
    #
    # A steady-state loop iteration whose every access *hits* leaves the
    # LRU state of all levels unchanged (each touched line/page returns to
    # the MRU position it already held), so k identical iterations are
    # equivalent to bulk-adding k times the iteration's hit counts.  The
    # block engine proves the all-hit property with a trial iteration and
    # then applies the summary below.

    def hit_snapshot(self) -> Tuple[int, int, int, int]:
        """Hit counters of (l1d, l1i, l2, tlb) for delta bookkeeping."""
        return (self.l1d.hits, self.l1i.hits, self.l2.hits, self.tlb.hits)

    def stats_snapshot(self) -> Tuple[int, ...]:
        """All hit/miss counters, for equivalence tests and diagnostics."""
        return (
            self.l1d.hits, self.l1d.misses,
            self.l1i.hits, self.l1i.misses,
            self.l2.hits, self.l2.misses,
            self.tlb.hits, self.tlb.misses,
        )

    def replay_hits(self, l1d: int, l1i: int, l2: int, tlb: int) -> None:
        """Bulk-apply an all-hit access summary (replayed iterations).

        Only statistics move: by the fixed-point argument above, the LRU
        state after k all-hit iterations equals the state after one.
        """
        self.l1d.hits += l1d
        self.l1i.hits += l1i
        self.l2.hits += l2
        self.tlb.hits += tlb

    def pollute(self, byte_addrs) -> None:
        """Touch *byte_addrs* as data accesses without recording statistics.

        Models the cache pollution caused by counter-interface code: the
        lines it touches evict application lines, but the interface's own
        hits/misses are not application events (the simulated PMU does not
        count in "kernel" domain by default).
        """
        hits, misses = self.l1d.hits, self.l1d.misses
        l2h, l2m = self.l2.hits, self.l2.misses
        th, tm = self.tlb.hits, self.tlb.misses
        for addr in byte_addrs:
            self.data_access(addr)
        self.l1d.hits, self.l1d.misses = hits, misses
        self.l2.hits, self.l2.misses = l2h, l2m
        self.tlb.hits, self.tlb.misses = th, tm

    def flush(self) -> None:
        self.l1d.flush()
        self.l1i.flush()
        self.l2.flush()
        self.tlb.flush()

    def reset_stats(self) -> None:
        self.l1d.reset_stats()
        self.l1i.reset_stats()
        self.l2.reset_stats()
        self.tlb.reset_stats()

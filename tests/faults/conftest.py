"""The faults suite manages its own injectors.

The ``REPRO_FAULT_PROFILE`` knob (the CI chaos job) must not stack a
second environment-driven injector onto substrates these tests configure
explicitly -- every test here states its own ``seed:profile`` spec, so
the knob is scrubbed for the whole directory.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_fault_profile(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PROFILE", raising=False)

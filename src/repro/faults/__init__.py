"""Deterministic fault injection at the substrate boundary.

The paper's platforms misbehave: syscalls fail, other users steal
counters mid-run, overflow interrupts skid, arrive late or not at all,
and multiplex timers drift.  This package makes those failure modes
first-class and *reproducible*: a :class:`FaultPlan` (seed + profile)
drives a :class:`FaultInjector` that intercepts the substrate's counter
operations and the PMU's interrupt delivery, injecting the same fault
schedule on every run with the same seed, plan and program.

With no injector attached the runtime is byte-identical to the clean
build -- every hook is ``None`` and every gate is a no-op.
"""

from repro.faults.injector import FaultEvent, FaultInjector, attach_from_spec
from repro.faults.plan import (
    PROFILES,
    FaultPlan,
    FaultProfile,
    parse_inject,
    profile,
)

__all__ = [
    "PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultProfile",
    "attach_from_spec",
    "parse_inject",
    "profile",
]

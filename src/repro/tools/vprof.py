"""A VProf-style source annotator: profiles correlated with code.

Section 2: PAPI_profil "can be used by end-user tools such as VProf to
collect profiling data which can then be correlated with application
source code."  For VM programs the "source" is the disassembly: this
tool merges a :class:`~repro.core.profile.ProfileBuffer` histogram with
the program listing, producing the classic annotated view --

    hits    %   pc  instruction
    1170  58%    7  FMA 0, 1, 2, 0      <-- hottest
     390  19%    8  ADDI 1, 1, 1

-- plus per-function rollups and a hot-line report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import Table
from repro.core.errors import InvalidArgumentError
from repro.core.profile import ProfileBuffer
from repro.hw.isa import INS_BYTES, OP_NAMES, Program


@dataclass(frozen=True)
class AnnotatedLine:
    """One program line with its profile weight."""

    pc: int
    function: Optional[str]
    text: str
    hits: int
    share: float                 #: fraction of all hits


@dataclass(frozen=True)
class FunctionSummary:
    name: str
    start: int
    end: int
    hits: int
    share: float


class SourceAnnotation:
    """The merged (program x profile) view."""

    def __init__(self, program: Program, buffer: ProfileBuffer) -> None:
        if buffer.hits == 0:
            raise InvalidArgumentError(
                "profile buffer is empty; run the profiled program first"
            )
        self.program = program
        self.buffer = buffer
        self.lines = self._annotate()

    def _annotate(self) -> List[AnnotatedLine]:
        total = self.buffer.hits
        lines: List[AnnotatedLine] = []
        for pc, ins in enumerate(self.program.instructions):
            idx = self.buffer.bucket_index(pc * INS_BYTES)
            hits = self.buffer.buckets[idx] if idx is not None else 0
            fn = self.program.function_at(pc)
            operands = ", ".join(
                str(getattr(ins, f))
                for f in ("a", "b", "c", "d")
                if getattr(ins, f) != 0 or f == "a"
            )
            lines.append(
                AnnotatedLine(
                    pc=pc,
                    function=fn.name if fn else None,
                    text=f"{OP_NAMES[ins.op]} {operands}".rstrip(),
                    hits=hits,
                    share=hits / total,
                )
            )
        return lines

    # ------------------------------------------------------------------

    def hottest_lines(self, k: int = 5) -> List[AnnotatedLine]:
        return sorted(self.lines, key=lambda l: l.hits, reverse=True)[:k]

    def function_summaries(self) -> List[FunctionSummary]:
        total = self.buffer.hits
        out = []
        for fn in sorted(
            self.program.functions.values(), key=lambda f: f.start
        ):
            hits = sum(
                l.hits for l in self.lines if fn.start <= l.pc < fn.end
            )
            out.append(
                FunctionSummary(fn.name, fn.start, fn.end, hits, hits / total)
            )
        return out

    def hottest_function(self) -> str:
        return max(self.function_summaries(), key=lambda s: s.hits).name

    def coverage(self) -> float:
        """Fraction of profile hits landing inside the program's text."""
        inside = sum(l.hits for l in self.lines)
        return inside / self.buffer.hits

    # ------------------------------------------------------------------

    def to_text(self, min_share: float = 0.0, metric: str = "samples") -> str:
        table = Table(
            ["hits", "%", "pc", "function", "instruction"],
            title=f"vprof: {self.program.name} ({self.buffer.hits} {metric})",
        )
        for line in self.lines:
            if line.share < min_share and line.hits == 0:
                continue
            table.add_row(
                line.hits,
                round(line.share * 100, 1),
                line.pc,
                line.function or "-",
                line.text,
            )
        return table.render()

    def summary_text(self) -> str:
        table = Table(
            ["function", "pcs", "hits", "%"],
            title=f"vprof summary: {self.program.name}",
        )
        for s in self.function_summaries():
            table.add_row(
                s.name, f"{s.start}..{s.end}", s.hits,
                round(s.share * 100, 1),
            )
        return table.render()


def annotate(program: Program, buffer: ProfileBuffer) -> SourceAnnotation:
    """Merge *buffer* with *program* (the VProf correlation step)."""
    return SourceAnnotation(program, buffer)

"""Shared helpers for the experiment benchmarks.

Every ``bench_*`` file reproduces one table/figure/claim from the paper
(see DESIGN.md's experiment index).  Conventions:

- the pytest-benchmark fixture times the experiment's headline
  computation (``benchmark.pedantic(..., rounds=1)`` for the heavy
  deterministic sweeps);
- the reproduced table/series is printed with capture disabled so it
  lands in ``bench_output.txt``;
- shape assertions (who wins, rough factors, orderings) guard the
  experiment against regressions without pinning absolute numbers.
"""

from __future__ import annotations

from typing import Callable


def emit(capsys, text: str) -> None:
    """Print *text* bypassing pytest's capture (so tee'd logs show it)."""
    with capsys.disabled():
        print()
        print(text)


def run_once(benchmark, fn: Callable):
    """Time *fn* exactly once and return its result.

    The experiments are deterministic simulations; repeating them only
    burns time, so one round is the honest measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

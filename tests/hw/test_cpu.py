"""Unit tests: CPU instruction semantics and event signal generation."""

import pytest

from repro.hw import Assembler, Machine
from repro.hw.cpu import MachineFault
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig


def run_program(build_fn, **machine_kwargs):
    asm = Assembler()
    asm.func("main")
    build_fn(asm)
    asm.halt()
    asm.endfunc()
    m = Machine(MachineConfig(**machine_kwargs)) if machine_kwargs else Machine()
    m.load(asm.build())
    m.run_to_completion()
    return m


class TestIntegerOps:
    def test_li_mov_add_sub(self):
        def body(asm):
            asm.li("r1", 7)
            asm.mov("r2", "r1")
            asm.li("r3", 3)
            asm.add("r4", "r1", "r3")
            asm.sub("r5", "r1", "r3")
        m = run_program(body)
        r = m.cpu.iregs
        assert (r[1], r[2], r[4], r[5]) == (7, 7, 10, 4)

    def test_mul_div(self):
        def body(asm):
            asm.li("r1", -7)
            asm.li("r2", 2)
            asm.mul("r3", "r1", "r2")
            asm.div("r4", "r1", "r2")
        m = run_program(body)
        assert m.cpu.iregs[3] == -14
        assert m.cpu.iregs[4] == -3  # truncation toward zero

    def test_addi_muli(self):
        def body(asm):
            asm.li("r1", 10)
            asm.addi("r2", "r1", -4)
            asm.muli("r3", "r1", 5)
        m = run_program(body)
        assert (m.cpu.iregs[2], m.cpu.iregs[3]) == (6, 50)

    def test_div_by_zero_faults(self):
        def body(asm):
            asm.li("r1", 1)
            asm.li("r2", 0)
            asm.div("r3", "r1", "r2")
        with pytest.raises(MachineFault, match="divide by zero"):
            run_program(body)

    def test_int_ins_signal(self):
        def body(asm):
            asm.li("r1", 1)
            asm.addi("r1", "r1", 1)
            asm.add("r2", "r1", "r1")
        m = run_program(body)
        assert m.counts[Signal.INT_INS] == 3


class TestFloatOps:
    def test_arithmetic_results(self):
        def body(asm):
            asm.fli("f1", 3.0)
            asm.fli("f2", 2.0)
            asm.fadd("f3", "f1", "f2")
            asm.fsub("f4", "f1", "f2")
            asm.fmul("f5", "f1", "f2")
            asm.fdiv("f6", "f1", "f2")
            asm.fsqrt("f7", "f1")
            asm.fma("f8", "f1", "f2", "f1")
        m = run_program(body)
        f = m.cpu.fregs
        assert f[3] == 5.0 and f[4] == 1.0 and f[5] == 6.0 and f[6] == 1.5
        assert f[7] == pytest.approx(3.0 ** 0.5)
        assert f[8] == 9.0

    def test_fp_signal_categories(self):
        def body(asm):
            asm.fli("f1", 2.0)
            asm.fadd("f2", "f1", "f1")   # FP_ADD
            asm.fsub("f2", "f1", "f1")   # FP_ADD (sub counts as add class)
            asm.fmul("f3", "f1", "f1")   # FP_MUL
            asm.fdiv("f4", "f1", "f1")   # FP_DIV
            asm.fsqrt("f5", "f1")        # FP_SQRT
            asm.fma("f6", "f1", "f1", "f1")  # FP_FMA
            asm.fcvt("f7", "f1")         # FP_CVT
            asm.fmov("f8", "f7")         # FP_MOV
        m = run_program(body)
        c = m.counts
        assert c[Signal.FP_ADD] == 2
        assert c[Signal.FP_MUL] == 1
        assert c[Signal.FP_DIV] == 1
        assert c[Signal.FP_SQRT] == 1
        assert c[Signal.FP_FMA] == 1
        assert c[Signal.FP_CVT] == 1
        assert c[Signal.FP_MOV] == 2  # fli + fmov

    def test_fcvt_rounds_to_single(self):
        def body(asm):
            asm.fli("f1", 1.0000000001)
            asm.fcvt("f2", "f1")
        m = run_program(body)
        assert m.cpu.fregs[2] == 1.0

    def test_fdiv_by_zero_faults(self):
        def body(asm):
            asm.fli("f1", 1.0)
            asm.fdiv("f2", "f1", "f0")
        with pytest.raises(MachineFault):
            run_program(body)

    def test_fsqrt_negative_faults(self):
        def body(asm):
            asm.fli("f1", -1.0)
            asm.fsqrt("f2", "f1")
        with pytest.raises(MachineFault):
            run_program(body)


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        asm = Assembler()
        base = asm.reserve_data(8)
        asm.func("main")
        asm.li("r1", base)
        asm.li("r2", 42)
        asm.store("r2", "r1", 3)
        asm.load("r3", "r1", 3)
        asm.fli("f1", 2.5)
        asm.fstore("f1", "r1", 4)
        asm.fload("f2", "r1", 4)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.cpu.iregs[3] == 42
        assert m.cpu.fregs[2] == 2.5

    def test_data_init_applied(self):
        asm = Assembler()
        base = asm.init_array([10, 20, 30])
        asm.func("main")
        asm.li("r1", base)
        asm.load("r2", "r1", 2)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.cpu.iregs[2] == 30

    def test_load_signals(self):
        asm = Assembler()
        base = asm.reserve_data(4)
        asm.func("main")
        asm.li("r1", base)
        asm.load("r2", "r1", 0)
        asm.store("r2", "r1", 1)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.counts[Signal.LD_INS] == 1
        assert m.counts[Signal.SR_INS] == 1
        assert m.counts[Signal.L1D_ACC] == 2
        assert m.counts[Signal.L1D_MISS] >= 1  # cold miss
        assert m.counts[Signal.TLB_DM] >= 1

    def test_out_of_range_load_faults(self):
        def body(asm):
            asm.li("r1", 99999)
            asm.load("r2", "r1", 0)
        with pytest.raises(MachineFault, match="out of range"):
            run_program(body)

    def test_out_of_range_store_faults(self):
        def body(asm):
            asm.li("r1", -1)
            asm.store("r1", "r1", 0)
        with pytest.raises(MachineFault, match="out of range"):
            run_program(body)

    def test_miss_penalty_charged_to_cycles(self):
        asm = Assembler()
        base = asm.reserve_data(4)
        asm.func("main")
        asm.li("r1", base)
        asm.load("r2", "r1", 0)
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        cfg = m.hierarchy.config
        expected_stall = cfg.l2_latency + cfg.mem_latency + cfg.tlb_walk_latency
        assert m.counts[Signal.STL_CYC] >= expected_stall
        assert m.counts[Signal.MEM_RCY] >= expected_stall


class TestControlFlow:
    def test_loop_executes_n_times(self):
        def body(asm):
            asm.li("r1", 10)
            asm.li("r2", 0)
            asm.label("loop")
            asm.addi("r2", "r2", 1)
            asm.blt("r2", "r1", "loop")
        m = run_program(body)
        assert m.cpu.iregs[2] == 10

    def test_branch_signal_accounting(self):
        def body(asm):
            asm.li("r1", 10)
            asm.li("r2", 0)
            asm.label("loop")
            asm.addi("r2", "r2", 1)
            asm.blt("r2", "r1", "loop")
        m = run_program(body)
        c = m.counts
        assert c[Signal.BR_CN] == 10
        assert c[Signal.BR_TKN] == 9
        assert c[Signal.BR_NTK] == 1
        assert c[Signal.BR_TKN] + c[Signal.BR_NTK] == c[Signal.BR_CN]

    def test_beq_bne_bge(self):
        def body(asm):
            asm.li("r1", 5)
            asm.li("r2", 5)
            asm.li("r3", 0)
            asm.beq("r1", "r2", "t1")
            asm.halt()
            asm.label("t1")
            asm.addi("r3", "r3", 1)
            asm.bne("r1", "r2", "bad")
            asm.bge("r1", "r2", "t2")
            asm.label("bad")
            asm.halt()
            asm.label("t2")
            asm.addi("r3", "r3", 1)
        m = run_program(body)
        assert m.cpu.iregs[3] == 2

    def test_call_ret(self):
        asm = Assembler()
        asm.func("leaf")
        asm.addi("r1", "r1", 1)
        asm.ret()
        asm.endfunc()
        asm.func("main")
        asm.li("r1", 0)
        asm.call("leaf")
        asm.call("leaf")
        asm.halt()
        asm.endfunc()
        m = Machine()
        m.load(asm.build())
        m.run_to_completion()
        assert m.cpu.iregs[1] == 2
        assert m.counts[Signal.CALL_INS] == 2
        assert m.counts[Signal.RET_INS] == 2

    def test_ret_without_call_faults(self):
        def body(asm):
            asm.ret()
        with pytest.raises(MachineFault, match="empty call stack"):
            run_program(body)

    def test_mispredictions_counted_and_penalized(self):
        def body(asm):
            asm.li("r1", 100)
            asm.li("r2", 0)
            asm.label("loop")
            asm.addi("r2", "r2", 1)
            asm.blt("r2", "r1", "loop")
        m = run_program(body)
        assert 0 < m.counts[Signal.BR_MSP] <= 3  # learns quickly
        assert m.counts[Signal.STL_CYC] > 0


class TestRunControl:
    def test_max_instructions_budget(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        result = m.run(max_instructions=100)
        assert result.reason == "max_instructions"
        assert result.instructions == 100
        assert not m.cpu.halted

    def test_max_cycles_budget(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        result = m.run(max_cycles=500)
        assert result.reason == "max_cycles"
        assert result.cycles >= 500  # can overshoot by one instruction

    def test_resume_after_budget(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.run(max_instructions=1000)
        result = m.run()
        assert result.halted
        assert m.counts[Signal.FP_FMA] == 1000

    def test_stop_flag(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.cpu.stop_flag = True
        result = m.run()
        assert result.reason == "stop"
        assert result.instructions == 0

    def test_run_after_halt_is_noop(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.run_to_completion()
        result = m.run()
        assert result.halted and result.instructions == 0

    def test_tot_ins_equals_executed(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        result = m.run_to_completion()
        assert m.counts[Signal.TOT_INS] == result.instructions

    def test_icache_fetches_counted(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.run_to_completion()
        assert m.counts[Signal.L1I_ACC] > 0
        # hot loop: instruction fetch misses are few
        assert m.counts[Signal.L1I_MISS] < 10


class TestContextSwitching:
    def test_save_restore_roundtrip(self, fma_loop_program):
        m = Machine()
        m.load(fma_loop_program)
        m.run(max_instructions=500)
        ctx = m.cpu.save_context()
        # trash the CPU state
        m.cpu.iregs[2] = 999999
        m.cpu.pc = 0
        m.cpu.restore_context(ctx)
        result = m.run()
        assert result.halted
        assert m.counts[Signal.FP_FMA] == 1000

    def test_migrate_mid_run(self, fma_loop_program):
        from repro.hw.isa import Instruction, Op

        m = Machine()
        m.load(fma_loop_program)
        m.run(max_instructions=500)
        fp_before = m.counts[Signal.FP_FMA]
        new_prog, remap = fma_loop_program.insert(
            {0: [Instruction(Op.NOP)]}
        )
        m.cpu.migrate(new_prog, remap)
        result = m.run()
        assert result.halted
        assert m.counts[Signal.FP_FMA] == 1000
        assert fp_before < 1000

"""Cost plane: the ``papi_cost`` analogue over simulated substrates.

Section 3 of the paper discusses the overhead of counter access through
each platform's native interface -- register reads are nearly free,
kernel-patch syscalls cost microseconds, vendor libraries sit between.
Every substrate publishes its model as
:class:`~repro.platforms.base.AccessCosts`; this plane *measures* each
operation's wall-cycle cost through the full PAPI stack and requires it
to equal the published model exactly on direct substrates (the library
must add zero hidden work to the hot path).

A second rung re-measures under a deterministic transient-fault profile
and checks the retry ladder's accounting: every absorbed retry must
surface in the health ledger with its backoff billed to the machine --
recovery is allowed to cost cycles, never to be invisible.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.library import Papi
from repro.platforms import create
from repro.validate.matrix import MatrixCell

#: preset used for cost probes: single-native on every platform, so the
#: per-counter arithmetic is the simplest possible.
COST_SYMBOL = "PAPI_TOT_INS"

#: start/stop cycles performed under the transient-fault profile; sized
#: so the 5% injected failure rate fires several times deterministically.
FAULT_ROUNDS = 60


def _measured_deltas(papi: Papi) -> tuple:
    """(start, read, reset, stop) wall-cycle deltas and native count."""
    substrate = papi.substrate
    es = papi.create_eventset()
    try:
        es.add_event(papi.event_name_to_code(COST_SYMBOL))
        c0 = substrate.real_cyc()
        es.start()
        c1 = substrate.real_cyc()
        es.read()
        c2 = substrate.real_cyc()
        es.reset()
        c3 = substrate.real_cyc()
        es.stop()
        c4 = substrate.real_cyc()
        n_natives = max(len(es.assignment), 1)
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)
    return (c1 - c0, c2 - c1, c3 - c2, c4 - c3), n_natives


def run_cost_plane(
    platforms: Sequence[str],
    seed: int = 12345,
) -> List[MatrixCell]:
    cells: List[MatrixCell] = []
    for platform in platforms:
        substrate = create(platform, seed=seed)
        papi = Papi(substrate)
        costs = substrate.COSTS
        if substrate.supports_sampling_counts():
            # no direct ops to cost; the read path is the per-native
            # estimate extraction.  Measured, not modelled.
            es = papi.create_eventset()
            try:
                es.add_event(papi.event_name_to_code(COST_SYMBOL))
                c0 = substrate.real_cyc()
                es.start()
                substrate.machine.run_to_completion()
                es.read()
                es.stop()
                delta = substrate.real_cyc() - substrate.machine.user_cycles
            finally:
                if es.running:  # an exception left the set running
                    es.stop()
                papi.destroy_eventset(es)
            cells.append(MatrixCell(
                plane="cost", platform=platform, name="interface-total",
                status="pass", actual=delta,
                detail="sampling interface: amortized daemon cost, "
                       "measured only (no per-op model)",
            ))
            continue
        (start, read, reset, stop), n = _measured_deltas(papi)
        expected = {
            "start": costs.program * n + costs.start,
            "read": costs.read + costs.read_per_counter * n,
            "reset": costs.reset,
            "stop": costs.stop,
        }
        measured = {"start": start, "read": read, "reset": reset,
                    "stop": stop}
        for op in ("start", "read", "reset", "stop"):
            cells.append(MatrixCell(
                plane="cost", platform=platform, name=op,
                status="pass" if measured[op] == expected[op] else "fail",
                expected=expected[op], actual=measured[op],
                detail=f"{substrate.STYLE} interface, {n} counter(s)",
            ))
        cells.append(_fault_cost_cell(platform, seed))
    return cells


def _fault_cost_cell(platform: str, seed: int) -> MatrixCell:
    """Retry/backoff accounting under the transient fault profile.

    The injector's stream is derived from the plane seed (label
    ``fault:transient``), never equal to it: the machine and the fault
    schedule must not be able to accidentally correlate.
    """
    from repro.validate.seeds import derive_seed

    fault_seed = derive_seed(seed, "fault:transient")
    substrate = create(platform, seed=seed, inject=f"{fault_seed}:transient")
    papi = Papi(substrate)
    es = papi.create_eventset()
    retries = backoff = 0
    try:
        es.add_event(papi.event_name_to_code(COST_SYMBOL))
        for _ in range(FAULT_ROUNDS):
            es.start()
            es.read()
            es.stop()
        retries = es.health.retries
        backoff = es.health.backoff_cycles
    finally:
        if es.running:  # an exception left the set running
            es.stop()
        papi.destroy_eventset(es)
    # the ledger must balance: absorbed retries iff billed backoff.
    consistent = (retries > 0) == (backoff > 0)
    # the injected 5% rate over 4+ gated ops per round makes zero
    # absorbed retries implausible; a silent ladder is a failure.
    exercised = retries > 0
    return MatrixCell(
        plane="cost", platform=platform, name="fault-retry",
        status="pass" if (consistent and exercised) else "fail",
        actual=backoff,
        error=None,
        detail=f"transient profile: {retries} retries billed "
               f"{backoff} backoff cycles over {FAULT_ROUNDS} rounds",
    )

"""perfometer: real-time performance monitoring (Figure 2).

"By connecting the frontend graphical display ... to the backend process
running an application code that has been linked with the perfometer and
PAPI libraries, the tool provides a runtime trace of a user-selected
PAPI metric ... for floating point operations per second (FLOPS).  The
user may change the performance event being measured by clicking on the
Select Metric button ... the perfometer backend code can save a trace
file for later off-line analysis."  (Section 2)

The Java front-end becomes :func:`render` (ASCII, via
:mod:`repro.analysis.report`); the backend, the metric feed, the
select-metric switch and the trace file are all real.  The dynaprof
integration ("attach to and monitor in real-time without ... restarting
the application") works because the backend only needs the machine to
run in slices.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.report import ascii_plot
from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.platforms.base import Substrate


@dataclass(frozen=True)
class TracePoint:
    """One sample of the selected metric's rate."""

    t_usec: float          #: wall time at the end of the interval
    metric: str            #: which metric was selected at the time
    count: int             #: events in this interval
    rate: float            #: events per second over the interval


@dataclass
class PerfometerTrace:
    """The trace file: a list of points plus run metadata."""

    platform: str
    points: List[TracePoint] = field(default_factory=list)

    def rates(self, metric: Optional[str] = None) -> List[float]:
        return [
            p.rate for p in self.points if metric is None or p.metric == metric
        ]

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(
                {
                    "platform": self.platform,
                    "points": [vars(p) for p in self.points],
                },
                f,
                indent=1,
            )

    @classmethod
    def load(cls, path: str) -> "PerfometerTrace":
        with open(path) as f:
            raw = json.load(f)
        trace = cls(platform=raw["platform"])
        for p in raw["points"]:
            trace.points.append(TracePoint(**p))
        return trace


class PerfometerProbe:
    """The dynaprof perfometer probe (Section 2).

    "The Dynaprof tool ... includes a perfometer probe that can
    automatically insert calls to the perfometer setup and color
    selection routines so that a running application can be attached to
    and monitored in real-time without requiring any source code changes
    or recompilation or even restarting the application."

    Instead of fixed time slices, this probe emits one
    :class:`TracePoint` per instrumented *function call*: the selected
    metric's count and rate over that call's duration.  Add it to a
    :class:`~repro.tools.dynaprof.Dynaprof` like any other probe.
    """

    def __init__(self, papi: Papi, metric: str = "PAPI_FP_OPS",
                 trace: Optional[PerfometerTrace] = None) -> None:
        self.papi = papi
        self.metric = metric
        self.trace = trace or PerfometerTrace(
            platform=papi.substrate.NAME
        )
        self.eventset = None
        self._stack: List[tuple] = []

    # dynaprof Probe protocol ------------------------------------------------

    def prepare(self, dynaprof) -> None:
        es = self.papi.create_eventset()
        es.add_event(self.papi.event_name_to_code(self.metric))
        self.eventset = es

    def _reading(self):
        assert self.eventset is not None
        if not self.eventset.running:
            self.eventset.start()
        return self.eventset.read()[0], self.papi.get_real_usec()

    def on_entry(self, function: str, cpu) -> None:
        self._stack.append((function, *self._reading()))

    def on_exit(self, function: str, cpu) -> None:
        if not self._stack:
            return
        _name, count0, t0 = self._stack.pop()
        count1, t1 = self._reading()
        dt = (t1 - t0) / 1e6
        delta = count1 - count0
        self.trace.points.append(
            TracePoint(
                t_usec=t1,
                metric=self.metric,
                count=delta,
                rate=delta / dt if dt > 0 else 0.0,
            )
        )

    def finish(self) -> None:
        if self.eventset is not None and self.eventset.running:
            self.eventset.stop()


class Perfometer:
    """The backend: samples a selected PAPI metric while the app runs."""

    def __init__(
        self,
        substrate: Substrate,
        papi: Optional[Papi] = None,
        metric: str = "PAPI_FP_OPS",
        interval_cycles: int = 20_000,
    ) -> None:
        if interval_cycles < 100:
            raise InvalidArgumentError("interval too fine to be meaningful")
        self.substrate = substrate
        self.machine = substrate.machine
        self.papi = papi or Papi(substrate)
        self.interval_cycles = interval_cycles
        self.metric = metric
        self.trace = PerfometerTrace(platform=substrate.NAME)
        self._es = None

    # ------------------------------------------------------------------

    def select_metric(self, metric: str) -> None:
        """The Select Metric button: switch what is being measured.

        Takes effect immediately: the current eventset is torn down and
        a new one armed for the new metric.
        """
        if not self.papi.query_event(self.papi.event_name_to_code(metric)):
            raise InvalidArgumentError(
                f"{metric} is not available on {self.substrate.NAME}"
            )
        if self._es is not None:
            self._teardown()
        self.metric = metric

    def _arm(self) -> None:
        es = self.papi.create_eventset()
        es.add_event(self.papi.event_name_to_code(self.metric))
        es.start()  # papi-lint: disable=PL008 -- stopped in _teardown()
        self._es = es

    def _teardown(self) -> None:
        if self._es is not None:
            if self._es.running:
                self._es.stop()
            self.papi.destroy_eventset(self._es)
            self._es = None

    # ------------------------------------------------------------------

    def monitor(self, max_intervals: Optional[int] = None) -> PerfometerTrace:
        """Run the loaded application to completion, sampling per interval.

        Can be called on a freshly loaded machine *or* mid-run (the
        dynaprof attach scenario): it just continues from the current
        machine state.
        """
        if self.machine.cpu.program is None:
            raise InvalidArgumentError("no application loaded on the machine")
        intervals = 0
        while not self.machine.cpu.halted:
            if max_intervals is not None and intervals >= max_intervals:
                break
            if self._es is None:
                self._arm()
            t0 = self.papi.get_real_usec()
            self.machine.run(max_cycles=self.interval_cycles)
            t1 = self.papi.get_real_usec()
            count = self._es.read()[0]
            self._es.reset()
            dt = (t1 - t0) / 1e6
            self.trace.points.append(
                TracePoint(
                    t_usec=t1,
                    metric=self.metric,
                    count=count,
                    rate=count / dt if dt > 0 else 0.0,
                )
            )
            intervals += 1
        self._teardown()
        return self.trace

    # ------------------------------------------------------------------

    def render(self, metric: Optional[str] = None, width: int = 64,
               height: int = 8) -> str:
        """The "front-end": an ASCII rate-vs-time plot of the trace."""
        metric = metric or self.metric
        rates = self.trace.rates(metric)
        label = f"perfometer [{self.substrate.NAME}] {metric} per second"
        return ascii_plot(rates, height=height, width=width, label=label)

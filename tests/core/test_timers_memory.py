"""Unit tests: portable timers and the PAPI-3 memory extension."""

import pytest

from repro.core.library import Papi
from repro.core.memory import dmem_info, dmem_locality, object_location
from repro.core.timers import TimeRegion, read_timers
from repro.workloads import dot, tlb_walker


class TestTimers:
    def test_reading_fields_consistent(self, simpower):
        papi = Papi(simpower)
        wl = dot(500, use_fma=True)
        simpower.machine.load(wl.program)
        simpower.machine.run_to_completion()
        r = read_timers(papi)
        mhz = simpower.machine.config.mhz
        assert r.real_usec == pytest.approx(r.real_cyc / mhz)
        assert r.virt_usec == pytest.approx(r.virt_cyc / mhz)
        assert r.virt_cyc <= r.real_cyc

    def test_region_measures_delta(self, simpower):
        papi = Papi(simpower)
        wl = dot(500, use_fma=True)
        simpower.machine.load(wl.program)
        with TimeRegion(papi) as tr:
            simpower.machine.run_to_completion()
        assert tr.real_cyc == simpower.machine.real_cycles
        assert tr.real_usec > 0
        assert tr.virt_cyc > 0

    def test_region_incomplete_raises(self, simpower):
        papi = Papi(simpower)
        tr = TimeRegion(papi)
        with pytest.raises(RuntimeError):
            _ = tr.real_cyc

    def test_interface_work_visible_in_real_not_virtual(self, simpower):
        """Counter interface cost dilates real time, not virtual time."""
        papi = Papi(simpower)
        wl = dot(100, use_fma=True)
        simpower.machine.load(wl.program)
        v0, r0 = papi.get_virt_cyc(), papi.get_real_cyc()
        simpower.machine.charge(10_000)
        assert papi.get_virt_cyc() == v0
        assert papi.get_real_cyc() == r0 + 10_000

    def test_timers_monotone_across_platforms(self, any_platform):
        papi = Papi(any_platform)
        wl = dot(200, use_fma=any_platform.HAS_FMA)
        any_platform.machine.load(wl.program)
        readings = [papi.get_real_cyc()]
        while not any_platform.machine.cpu.halted:
            any_platform.machine.run(max_instructions=200)
            readings.append(papi.get_real_cyc())
        assert readings == sorted(readings)


class TestMemoryExtension:
    def test_dmem_info_single_process(self, simpower):
        papi = Papi(simpower)
        page_words = simpower.machine.hierarchy.config.tlb.page_bytes // 8
        wl = tlb_walker(6, page_words=page_words)
        simpower.machine.load(wl.program)
        simpower.machine.run_to_completion()
        info = dmem_info(papi)
        assert info.thread_rss_pages == 6
        assert info.used_bytes == info.used_pages * info.page_bytes

    def test_dmem_info_per_thread(self, simpower):
        papi = Papi(simpower)
        os_ = simpower.os
        page_words = simpower.machine.hierarchy.config.tlb.page_bytes // 8
        t1 = os_.spawn(tlb_walker(3, page_words=page_words).program)
        t2 = os_.spawn(tlb_walker(5, page_words=page_words).program)
        os_.run()
        assert dmem_info(papi, t1).thread_rss_pages == 3
        assert dmem_info(papi, t2).thread_rss_pages == 5

    def test_locality_histogram(self, simpower):
        papi = Papi(simpower)
        page_words = simpower.machine.hierarchy.config.tlb.page_bytes // 8
        wl = tlb_walker(8, page_words=page_words)
        simpower.machine.load(wl.program)
        simpower.machine.run_to_completion()
        hist = dmem_locality(papi, buckets=4)
        assert sum(hist.values()) == 8

    def test_locality_empty(self, simpower):
        papi = Papi(simpower)
        assert dmem_locality(papi) == {}

    def test_object_location(self, simpower):
        papi = Papi(simpower)
        page_words = simpower.machine.hierarchy.config.tlb.page_bytes // 8
        wl = tlb_walker(4, page_words=page_words)
        simpower.machine.load(wl.program)
        simpower.machine.run_to_completion()
        loc = object_location(papi, base_word=0, length_words=4 * page_words)
        assert loc["pages_spanned"] == 4
        assert loc["pages_touched"] == 4

    def test_object_location_untouched(self, simpower):
        papi = Papi(simpower)
        wl = dot(10, use_fma=True)
        simpower.machine.load(wl.program)
        loc = object_location(papi, base_word=0, length_words=100)
        assert loc["pages_touched"] == 0

    def test_papi_get_dmem_info_entry_point(self, simpower):
        papi = Papi(simpower)
        wl = dot(100, use_fma=True)
        simpower.machine.load(wl.program)
        simpower.machine.run_to_completion()
        info = papi.get_dmem_info()
        assert info.thread_rss_pages >= 1

"""Differential lockdown for the component-architecture refactor.

The substrate boundary was refactored into PAPI-C-style components: the
legacy CPU counter plane became component 0 and two non-CPU components
(uncore, energy) joined it.  The lockdown contract has two clauses, both
bit-exact and both enforced at every engine tier:

- the ``cpu:::`` namespace is an *alias*, not a second path: an
  EventSet built from ``cpu:::``-qualified native names must report the
  same event codes and the same counts as one built from the legacy
  unqualified names;
- component co-members are *invisible* to the CPU plane: adding uncore
  and energy events to an EventSet must not move any CPU member by a
  single count (component snapshots are charge-free reads of
  free-running banks).

Together with ``test_seed_equivalence.py`` -- which replays every E/A
golden table against ``goldens_seed.json`` on the refactored tree --
this pins the whole CPU-component path to the pre-component seed.
"""

from __future__ import annotations

import pytest

from repro.core.library import Papi
from repro.platforms import PLATFORM_NAMES, create
from repro.workloads import conformance_mix

TIERS = ("off", "block", "trace")

#: CPU members used by the invariance clause; single-native presets
#: that exist on every platform (they fit even simSPARC's two PICs).
CPU_EVENTS = ("PAPI_TOT_INS", "PAPI_TOT_CYC")


def _measure(platform, tier, add):
    """One fresh machine + EventSet; *add* populates the set."""
    substrate = create(platform, engine=tier)
    papi = Papi(substrate)
    if substrate.supports_sampling_counts():
        papi.sampling_period = 64
    es = papi.create_eventset()
    add(papi, es)
    workload = conformance_mix(80, use_fma=substrate.HAS_FMA)
    substrate.machine.load(workload.program)
    es.start()
    substrate.machine.run_to_completion()
    values = dict(zip(es.event_names, es.stop()))
    papi.destroy_eventset(es)
    return values


def _tot_ins_native(platform):
    """The native event name PAPI_TOT_INS maps to on *platform*."""
    papi = Papi(create(platform))
    terms = papi.resolve_terms(papi.event_name_to_code("PAPI_TOT_INS"))
    assert len(terms) == 1
    return terms[0][0].name


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("platform", PLATFORM_NAMES)
def test_cpu_namespace_aliases_legacy_path(platform, tier):
    native = _tot_ins_native(platform)

    legacy = _measure(
        platform, tier,
        lambda papi, es: es.add_event(papi.event_name_to_code(native)),
    )
    qualified = _measure(
        platform, tier,
        lambda papi, es: es.add_named(f"cpu:::{native}"),
    )
    # same code object: the alias resolves to the legacy native code,
    # so the reported names are identical too
    assert list(legacy) == list(qualified) == [native]
    assert legacy[native] == qualified[native]


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("platform", PLATFORM_NAMES)
def test_component_members_do_not_move_cpu_counts(platform, tier):
    def cpu_only(papi, es):
        es.add_named(*CPU_EVENTS)

    def mixed(papi, es):
        papi.component("uncore")
        papi.component("energy")
        es.add_named(*CPU_EVENTS)
        es.add_named("uncore:::MEM_BW_RD", "energy:::PKG_ENERGY")

    baseline = _measure(platform, tier, cpu_only)
    with_components = _measure(platform, tier, mixed)
    for symbol in CPU_EVENTS:
        assert with_components[symbol] == baseline[symbol], (
            f"{symbol} moved on {platform}/{tier} when component "
            f"events joined the set"
        )
    # and the component members actually counted something
    assert with_components["energy:::PKG_ENERGY"] > 0

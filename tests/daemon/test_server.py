"""Unit tests: the papid server core on the inline transport.

The inline transport runs the real :class:`WorkerState` synchronously
behind a pipe-shaped shim, so every server-side mechanism — routing,
admission control, dedupe, journaling, recovery, drain — is exercised
deterministically without process scheduling in the way.
"""

import itertools

import pytest

from repro.daemon import (
    PAPID_EDRAIN,
    PAPID_ESHED,
    PAPID_OK,
    DaemonConfig,
    Op,
    PapidServer,
    SessionSpec,
    shard_of,
)


def inline_config(**kw):
    kw.setdefault("transport", "inline")
    kw.setdefault("nshards", 2)
    # the unit layer drives recovery explicitly via check_shards(); a
    # long heartbeat keeps the supervisor thread out of the timing
    kw.setdefault("heartbeat_interval", 60.0)
    return DaemonConfig(**kw)


class _Seq:
    """Per-sid sequence numbers, like PapidClient issues."""

    def __init__(self):
        self._counters = {}

    def __call__(self, sid):
        nxt = self._counters.get(sid, 0) + 1
        self._counters[sid] = nxt
        return nxt


@pytest.fixture
def seq():
    return _Seq()


def make_fleet(server, n, seq, prefix="s", **spec_kw):
    specs = [
        SessionSpec(sid=f"{prefix}-{i}", seed=100 + i, **spec_kw)
        for i in range(n)
    ]
    created = server.submit(
        [Op(kind="create", sid=s.sid, spec=s) for s in specs]
    )
    assert all(r.ok for r in created)
    started = server.submit(
        [Op(kind="start", sid=s.sid, seq=seq(s.sid)) for s in specs]
    )
    assert all(r.ok for r in started)
    return [s.sid for s in specs]


class TestLifecycle:
    def test_create_start_read_stop_destroy(self, seq):
        with PapidServer(inline_config()) as server:
            (sid,) = make_fleet(server, 1, seq)
            first = server.submit([Op(kind="read", sid=sid, seq=seq(sid))])[0]
            second = server.submit([Op(kind="read", sid=sid, seq=seq(sid))])[0]
            assert first.ok and second.ok
            assert all(
                second.values[k] >= first.values[k] for k in first.values
            )
            assert second.cycle >= first.cycle > 0
            stopped = server.submit([Op(kind="stop", sid=sid, seq=seq(sid))])[0]
            assert stopped.ok
            assert server.registry[sid].state == "stopped"
            gone = server.submit([Op(kind="destroy", sid=sid)])[0]
            assert gone.ok
            assert sid not in server.registry
            assert server.check_consistency() == []

    def test_duplicate_create_is_fatal(self, seq):
        with PapidServer(inline_config()) as server:
            (sid,) = make_fleet(server, 1, seq)
            spec = server.registry[sid].spec
            res = server.submit([Op(kind="create", sid=sid, spec=spec)])[0]
            assert not res.ok and not res.transient

    def test_unknown_sid_is_fatal(self):
        with PapidServer(inline_config()) as server:
            res = server.submit([Op(kind="read", sid="nope", seq=1)])[0]
            assert not res.ok and not res.transient

    def test_sessions_spread_across_shards(self, seq):
        with PapidServer(inline_config(nshards=2)) as server:
            sids = make_fleet(server, 8, seq)
            homes = {shard_of(sid, 2) for sid in sids}
            assert homes == {0, 1}
            for sid in sids:
                shard = server.shards[shard_of(sid, 2)]
                assert sid in shard.sessions


class TestSeqDedupe:
    def test_replayed_read_returns_cached_result(self, seq):
        with PapidServer(inline_config(nshards=1)) as server:
            (sid,) = make_fleet(server, 1, seq)
            n = seq(sid)
            first = server.submit([Op(kind="read", sid=sid, seq=n)])[0]
            replay = server.submit([Op(kind="read", sid=sid, seq=n)])[0]
            # at-least-once delivery, exactly-once effect: the replay is
            # served from the worker's dedupe cache without advancing
            assert replay.values == first.values
            assert replay.cycle == first.cycle
            fresh = server.submit([Op(kind="read", sid=sid, seq=seq(sid))])[0]
            assert fresh.advanced > first.advanced


class TestBackpressure:
    def test_overflow_reads_served_stale(self, seq):
        config = inline_config(nshards=1, high_water=2, staleness_ops=10_000)
        with PapidServer(config) as server:
            sids = make_fleet(server, 6, seq)
            results = server.submit(
                [Op(kind="read", sid=sid, seq=seq(sid)) for sid in sids]
            )
            assert all(r.ok for r in results)
            stale = [r for r in results if r.stale]
            assert len(stale) == 4
            health = server.health()
            assert health.stale_reads == 4
            assert health.shed_reads == 0

    def test_stale_reads_serve_last_acked_values(self, seq):
        config = inline_config(nshards=1, high_water=1, staleness_ops=10_000)
        with PapidServer(config) as server:
            (sid, other) = make_fleet(server, 2, seq)
            fresh = server.submit([Op(kind="read", sid=sid, seq=seq(sid))])[0]
            # both reads contend for a budget of 1; the loser is served
            # from the registry snapshot, i.e. exactly the last ack
            results = server.submit([
                Op(kind="read", sid=sid, seq=seq(sid)),
                Op(kind="read", sid=other, seq=seq(other)),
            ])
            stale = [r for r in results if r.stale]
            assert len(stale) == 1
            if stale[0].sid == sid:
                assert stale[0].values == fresh.values

    def test_shed_lowest_priority_first(self):
        config = inline_config(nshards=1, high_water=2, staleness_ops=-1)
        with PapidServer(config) as server:
            counter = itertools.count(1)
            specs = [
                SessionSpec(sid=f"p{pri}", seed=pri, priority=pri)
                for pri in (0, 1, 2, 3)
            ]
            server.submit(
                [Op(kind="create", sid=s.sid, spec=s) for s in specs]
            )
            server.submit(
                [Op(kind="start", sid=s.sid, seq=next(counter))
                 for s in specs]
            )
            results = server.submit(
                [Op(kind="read", sid=s.sid, seq=next(counter))
                 for s in specs]
            )
            by_sid = {r.sid: r for r in results}
            # budget 2: the two highest priorities run, the two lowest
            # are shed (staleness -1 disables the stale-serve fallback)
            assert by_sid["p3"].status == PAPID_OK
            assert by_sid["p2"].status == PAPID_OK
            assert by_sid["p1"].status == PAPID_ESHED
            assert by_sid["p0"].status == PAPID_ESHED
            assert server.health().shed_reads == 2


class TestCrashRecovery:
    def _kill_shard(self, server, shard_id):
        shard = server.shards[shard_id]
        shard.conn.dead = True
        shard.conn.crash_mode = "die"
        return shard

    def test_killed_shard_is_rehomed_with_ledger(self, seq):
        with PapidServer(inline_config(nshards=2)) as server:
            sids = make_fleet(server, 6, seq)
            before = {
                sid: server.submit(
                    [Op(kind="read", sid=sid, seq=seq(sid))]
                )[0]
                for sid in sids
            }
            victim = self._kill_shard(server, 0)
            victims = sorted(victim.sessions)
            assert victims, "shard 0 should own some sessions"
            server.check_shards()
            health = server.health()
            assert health.crashes_detected == 1
            assert health.recoveries == 1
            assert health.sessions_recovered == len(victims)
            assert health.sessions_unrecovered == 0
            assert server.shards[0].generation == 1
            for sid in sids:
                res = server.submit(
                    [Op(kind="read", sid=sid, seq=seq(sid))]
                )[0]
                assert res.ok
                assert all(
                    res.values[k] >= before[sid].values[k]
                    for k in res.values
                ), "counts must stay monotone across recovery"
                if sid in victims:
                    assert res.recovered
                    assert len(res.lost) == 1
                    assert res.lost[0]["recovered"] is True
                else:
                    assert not res.recovered
            assert server.check_consistency() == []

    def test_recovery_without_inflight_ops_loses_nothing(self, seq):
        with PapidServer(inline_config(nshards=1)) as server:
            (sid,) = make_fleet(server, 1, seq)
            acked = server.submit([Op(kind="read", sid=sid, seq=seq(sid))])[0]
            self._kill_shard(server, 0)
            server.check_shards()
            rec = server.registry[sid]
            # nothing was in flight at crash time: the lost interval is
            # zero-length and the restored base equals the last ack
            (entry,) = rec.lost
            assert entry["start_cycle"] == entry["end_cycle"] == acked.cycle
            res = server.submit([Op(kind="read", sid=sid, seq=seq(sid))])[0]
            assert all(res.values[k] >= acked.values[k] for k in res.values)

    def test_stopped_session_survives_crash_stopped(self, seq):
        with PapidServer(inline_config(nshards=1)) as server:
            (sid,) = make_fleet(server, 1, seq)
            stopped = server.submit([Op(kind="stop", sid=sid, seq=seq(sid))])[0]
            self._kill_shard(server, 0)
            server.check_shards()
            assert server.registry[sid].state == "stopped"
            final = server.submit([Op(kind="stop", sid=sid, seq=seq(sid))])
            # a second stop on a stopped session is fatal on the worker,
            # but the registry still holds the exact pre-crash totals
            assert server.registry[sid].values == stopped.values


class TestDrain:
    def test_drain_is_idempotent_and_final(self, seq):
        with PapidServer(inline_config()) as server:
            sids = make_fleet(server, 4, seq)
            first = server.drain()
            second = server.drain()
            assert first.drained and second.drained
            for sid in sids:
                assert server.registry[sid].state == "stopped"
            res = server.submit([Op(kind="read", sid=sids[0], seq=99)])[0]
            assert res.status == PAPID_EDRAIN

    def test_drain_journals_final_states(self, seq, tmp_path):
        path = str(tmp_path / "papid.journal")
        from repro.daemon import Journal, recover_sessions

        with PapidServer(inline_config(journal_path=path)) as server:
            sids = make_fleet(server, 3, seq)
            server.drain()
        records = Journal.load(path)
        assert records[-1]["t"] == "drain"
        images = recover_sessions(records)
        assert sorted(images) == sorted(sids)
        assert all(img.state == "stopped" for img in images.values())

"""Unit tests: component-event lint (PL019 and the PL010 extensions).

PL019 flags component events used without first checking the component
is registered (component sets differ across substrates, so an unchecked
``uncore:::`` add is a latent ``PAPI_ENOCMP``).  PL010 gained three
component-flavoured misuses: an event in an unregistered component
namespace, an unknown short name inside a known component, and a
``cpu:::`` alias that names no native event.
"""

from repro.lint import Severity, lint_source

PRELUDE = """\
from repro.core.library import Papi
from repro.platforms import create

substrate = create("{platform}")
papi = Papi(substrate)
es = papi.create_eventset()
"""


def codes(source, platform=None, path="script.py"):
    return [
        d.code for d in lint_source(source, path, default_platform=platform)
    ]


def lint(source, platform=None, path="script.py"):
    return lint_source(source, path, default_platform=platform)


class TestPL019Availability:
    def test_unchecked_component_event_is_pl019(self):
        src = PRELUDE.format(platform="simX86") + (
            'es.add_named("uncore:::MEM_BW_RD")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == ["PL019"]

    def test_pl019_is_a_warning(self):
        src = PRELUDE.format(platform="simX86") + (
            'es.add_named("energy:::PKG_ENERGY")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        (diag,) = lint(src)
        assert diag.code == "PL019"
        assert diag.severity is Severity.WARNING

    def test_component_lookup_makes_it_clean(self):
        src = PRELUDE.format(platform="simX86") + (
            'papi.component("uncore")\n'
            'es.add_named("uncore:::MEM_BW_RD")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == []

    def test_check_covers_only_the_named_component(self):
        src = PRELUDE.format(platform="simX86") + (
            'papi.component("uncore")\n'
            'es.add_named("uncore:::MEM_BW_RD")\n'
            'es.add_named("energy:::PKG_ENERGY")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == ["PL019"]

    def test_num_components_enumeration_covers_all(self):
        src = PRELUDE.format(platform="simX86") + (
            "n = papi.num_components()\n"
            'es.add_named("uncore:::MEM_BW_RD", "energy:::PKG_ENERGY")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == []

    def test_query_named_counts_as_availability_check(self):
        src = PRELUDE.format(platform="simX86") + (
            'papi.query_named("energy:::PKG_ENERGY")\n'
            'es.add_named("energy:::CORE_ENERGY")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == []

    def test_enocmp_guard_suppresses_pl019(self):
        src = PRELUDE.format(platform="simX86") + (
            "from repro.core.errors import NoSuchComponentError\n"
            "try:\n"
            '    es.add_named("uncore:::MEM_BW_RD")\n'
            "except NoSuchComponentError:\n"
            "    pass\n"
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == []

    def test_overflow_on_component_event_is_pl019(self):
        src = PRELUDE.format(platform="simX86") + (
            'papi.component("energy")\n'
            'es.add_named("energy:::PKG_ENERGY")\n'
            "es.overflow(papi.event_name_to_code("
            "'energy:::PKG_ENERGY'), 1000, print)\n"
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == ["PL019"]


class TestPL010ComponentNamespaces:
    def test_unknown_component_namespace_is_pl010(self):
        src = PRELUDE.format(platform="simX86") + (
            'es.add_named("gpu:::SM_ACTIVE")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == ["PL010"]

    def test_unknown_short_in_known_component_is_pl010(self):
        src = PRELUDE.format(platform="simX86") + (
            'papi.component("uncore")\n'
            'es.add_named("uncore:::NO_SUCH_COUNTER")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == ["PL010"]

    def test_cpu_alias_of_unknown_native_is_pl010(self):
        src = PRELUDE.format(platform="simX86") + (
            'es.add_named("cpu:::NOT_A_NATIVE")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src, platform="simX86") == ["PL010"]

    def test_cpu_alias_of_real_native_is_clean(self):
        """cpu::: aliases the legacy native table, which needs no
        component availability check (component 0 always exists)."""
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("cpu:::INS_CNT")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        # PL103 (portable-nowhere-else INFO) is expected for a raw
        # native; the component rules must stay silent.
        assert codes(src, platform="simT3E") == ["PL103"]

"""ConformanceMatrix aggregation/rendering and the `validate` CLI verb."""

import json

import pytest

from repro.tools.cli import main
from repro.validate import ConformanceMatrix, run_all
from repro.validate.matrix import MatrixCell


def _cells():
    return [
        MatrixCell(plane="oracle", platform="simT3E", name="PAPI_TOT_INS",
                   status="pass", expected=100, actual=100, error=0.0),
        MatrixCell(plane="oracle", platform="simPOWER", name="PAPI_FP_INS",
                   status="pass", expected=70, actual=70, drift=True,
                   detail="platform semantics drift"),
        MatrixCell(plane="oracle", platform="simX86", name="PAPI_TOT_CYC",
                   status="skip", detail="micro-architectural"),
        MatrixCell(plane="skid", platform="simX86", name="PAPI_FP_INS",
                   status="fail", actual=0.05),
    ]


class TestMatrixCell:
    def test_bad_status_rejected(self):
        with pytest.raises(ValueError, match="bad cell status"):
            MatrixCell(plane="oracle", platform="simT3E", name="x",
                       status="maybe")

    def test_to_json_drops_unset_fields(self):
        cell = MatrixCell(plane="cost", platform="simT3E", name="read",
                          status="pass", expected=4, actual=4)
        js = cell.to_json()
        assert js["expected"] == 4 and js["actual"] == 4
        assert "error" not in js and "drift" not in js and "detail" not in js

    def test_to_json_keeps_drift_and_detail(self):
        js = _cells()[1].to_json()
        assert js["drift"] is True
        assert js["detail"] == "platform semantics drift"


class TestConformanceMatrix:
    def test_passed_and_failures(self):
        matrix = ConformanceMatrix(cells=_cells()[:3])
        assert matrix.passed and matrix.failures() == []
        matrix.extend(_cells()[3:])
        assert not matrix.passed
        assert [c.name for c in matrix.failures()] == ["PAPI_FP_INS"]

    def test_summary_tallies_by_plane(self):
        summary = ConformanceMatrix(cells=_cells()).summary()
        assert summary["oracle"] == {"pass": 2, "fail": 0, "skip": 1}
        assert summary["skid"] == {"pass": 0, "fail": 1, "skip": 0}

    def test_json_schema(self):
        matrix = ConformanceMatrix(cells=_cells(), meta={"seed": 1})
        js = json.loads(matrix.to_json_str())
        assert js["schema"] == "repro.validate/1"
        assert js["passed"] is False
        assert js["meta"] == {"seed": 1}
        assert len(js["cells"]) == 4

    def test_text_rendering(self):
        text = ConformanceMatrix(cells=_cells()).to_text()
        assert "conformance summary" in text
        assert "plane: oracle" in text and "plane: skid" in text
        assert "[drift]" in text
        assert text.rstrip().endswith("(4 cells, 1 failures)")
        assert "FAIL" in text

    def test_markdown_summary(self):
        md = ConformanceMatrix(cells=_cells()).to_markdown()
        assert md.splitlines()[0] == "| plane | pass | fail | skip |"
        assert "| oracle | 2 | 0 | 1 |" in md


class TestRunAll:
    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platforms"):
            run_all(platforms=["simVAX"])

    def test_unknown_plane_rejected(self):
        with pytest.raises(ValueError, match="unknown planes"):
            run_all(planes=["vibes"])

    def test_single_plane_single_platform(self):
        matrix = run_all(platforms=["simT3E"], planes=["cost"])
        assert matrix.passed
        assert matrix.meta["platforms"] == ["simT3E"]
        assert {c.plane for c in matrix.cells} == {"cost"}


class TestValidateVerb:
    def test_text_output_and_exit_zero(self, capsys):
        rc = main(["validate", "--platform", "simT3E", "--planes", "cost"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "conformance summary" in out
        assert "PASS" in out

    def test_json_format(self, capsys):
        rc = main(["validate", "--platform", "simT3E", "--planes", "cost",
                   "--format", "json"])
        assert rc == 0
        js = json.loads(capsys.readouterr().out)
        assert js["schema"] == "repro.validate/1" and js["passed"]

    def test_json_out_artifact(self, tmp_path, capsys):
        path = tmp_path / "matrix.json"
        rc = main(["validate", "--platform", "simT3E", "--planes", "cost",
                   "--json-out", str(path)])
        capsys.readouterr()
        assert rc == 0
        js = json.loads(path.read_text())
        assert js["schema"] == "repro.validate/1"
        assert js["meta"]["platforms"] == ["simT3E"]

    def test_bad_plane_exits_2(self, capsys):
        rc = main(["validate", "--planes", "vibes"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown planes" in err

"""The first-fit baseline allocator.

Before the optimal matching algorithm landed in PAPI 2.3, substrates
placed events greedily: take events in the order the user added them,
put each on the first free counter its constraints allow, fail if none
is free.  First-fit never *un*-places an earlier event, so on
constrained platforms it strands events the optimal matcher would have
placed -- the gap experiment E4 measures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.allocation.graph import MappingProblem


def first_fit(problem: MappingProblem) -> Dict[str, int]:
    """First-fit partial assignment, in the problem's event order.

    Deterministic: counters are tried in ascending index order.  Events
    that do not fit are left out of the result (callers treat a partial
    result as a conflict, like the pre-2.3 substrates did).
    """
    free: List[bool] = [True] * problem.n_counters
    assignment: Dict[str, int] = {}
    for event in problem.events:
        for ctr in sorted(problem.allowed[event]):
            if free[ctr]:
                free[ctr] = False
                assignment[event] = ctr
                break
    problem.validate_assignment(assignment)
    return assignment

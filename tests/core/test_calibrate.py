"""Unit tests: the calibrate utility and sampling estimation helpers."""

import math

import pytest

from repro.core.calibrate import calibrate, calibrate_all, calibrate_convergence
from repro.core.sampling import (
    ConvergenceStudy,
    Estimate,
    estimate_count,
    relative_error,
)
from repro.platforms import create


class TestCalibrate:
    def test_exact_on_direct_platform(self, direct_platform):
        result = calibrate(direct_platform, "dot", n=800)
        assert result.measured_fp_ops == result.expected_flops
        assert result.fp_ops_error == 0.0
        assert result.cycles > 0 and result.real_usec > 0

    def test_all_kernels_on_t3e(self, simt3e):
        results = calibrate_all(simt3e, n=300)
        assert len(results) == 5
        for r in results:
            assert r.fp_ops_error == 0.0, f"{r.kernel} mismatch"

    def test_power_fp_ins_discrepancy_surfaced(self, simpower):
        """The mixsum kernel shows the convert discrepancy in FP_INS."""
        result = calibrate(simpower, "mixsum", n=300)
        assert result.measured_fp_ops == result.expected_flops
        assert result.measured_fp_ins == 2 * result.expected_fp_ins

    def test_sampling_platform_approximate(self, simalpha):
        result = calibrate(simalpha, "dot", n=20000, sampling_period=256)
        assert result.fp_ops_error < 0.20

    def test_unknown_kernel_rejected(self, simt3e):
        with pytest.raises(ValueError):
            calibrate(simt3e, "fibonacci")

    def test_convergence_study_on_sampling(self):
        sub = create("simALPHA")
        study = calibrate_convergence(sub, sizes=[500, 5000, 50000])
        assert len(study.points) == 3
        assert study.is_converging()
        assert study.final_error() < 0.15

    def test_convergence_trivial_on_direct(self, simt3e):
        study = calibrate_convergence(simt3e, sizes=[200, 2000])
        assert study.final_error() == 0.0


class TestSamplingHelpers:
    def test_estimate_count(self):
        from repro.hw.pmu import SampleRecord

        def s(is_fp):
            return SampleRecord(
                pc=0, opcode=0, cycle=0, is_load=False, is_store=False,
                is_fp=is_fp, is_branch=False, br_mispred=False,
                l1d_miss=False, l2_miss=False, tlb_miss=False, latency=1,
            )

        samples = [s(True)] * 30 + [s(False)] * 70
        est = estimate_count(samples, 100, lambda x: x.is_fp)
        assert est.value == 3000
        assert est.n_matches == 30
        assert 0 < est.relative_stderr < 1

    def test_estimate_zero_matches_infinite_error(self):
        est = Estimate(value=0, n_samples=10, n_matches=0, period=100)
        assert est.relative_stderr == math.inf

    def test_estimate_bad_period(self):
        with pytest.raises(ValueError):
            estimate_count([], 0, lambda s: True)

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == math.inf

    def test_convergence_study_api(self):
        study = ConvergenceStudy("x")
        assert not study.is_converging()
        study.add(100, 10, estimate=50, expected=100)
        study.add(1000, 100, estimate=95, expected=100)
        assert study.errors() == [0.5, 0.05]
        assert study.is_converging()

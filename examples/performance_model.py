#!/usr/bin/env python
"""Parameterizing a predictive performance model from PAPI data.

The paper's Section 5: "we plan to collaborate with performance modeling
projects ... in using PAPI to collect data for parameterizing predictive
performance models."  This example is that pipeline end to end:

1. measure a diverse training suite of workloads through the portable
   PAPI interface (counter vectors + cycles);
2. fit a linear cycles model by least squares;
3. inspect the fitted coefficients -- they recover the machine's actual
   latency parameters (e.g. the L2-miss coefficient lands near the
   configured memory latency);
4. predict the runtime of workloads the model never saw, from their
   counter signatures alone.

Run:  python examples/performance_model.py
"""

from repro.analysis import Table
from repro.analysis.model import (
    DEFAULT_FEATURES,
    collect_counters,
    fit_platform_model,
)
from repro.platforms import create
from repro.workloads import matmul, strided_scan

PLATFORM = "simIA64"


def main() -> None:
    # -- 1 + 2: measure the suite and fit -----------------------------------
    print(f"fitting the standard workload suite on {PLATFORM} ...")
    model, data = fit_platform_model(PLATFORM)
    print()
    print(model.describe())
    print()

    table = Table(
        ["training workload"] +
        [f.replace("PAPI_", "") for f in DEFAULT_FEATURES] +
        ["cycles", "model cycles", "err %"],
        title="training data (collected through PAPI) and fit quality",
    )
    for name, counters, cycles in data:
        pred = model.predict(counters)
        table.add_row(
            name,
            *[counters[f] for f in DEFAULT_FEATURES],
            cycles, int(pred),
            round(abs(pred - cycles) / cycles * 100, 1),
        )
    print(table.render())
    print()

    # -- 3: the coefficients against the machine's ground truth -------------
    machine_cfg = create(PLATFORM).machine.hierarchy.config
    print("coefficient sanity vs machine parameters:")
    print(f"  fitted cycles per L2 miss : "
          f"{model.coefficients['PAPI_L2_TCM']:7.1f}   "
          f"(machine memory latency: {machine_cfg.mem_latency})")
    print(f"  fitted cycles per L1 miss : "
          f"{model.coefficients['PAPI_L1_DCM']:7.1f}   "
          f"(machine L2 latency: {machine_cfg.l2_latency})")
    print()

    # -- 4: predict unseen workloads -----------------------------------------
    print("predicting workloads the model never saw:")
    unseen = [
        ("matmul(20)", lambda: matmul(20, use_fma=True)),
        ("scan(16k, stride 4)", lambda: strided_scan(16384, 4)),
    ]
    table = Table(["unseen workload", "true cycles", "predicted", "err %"])
    for name, factory in unseen:
        counters, cycles = collect_counters(PLATFORM, factory,
                                            DEFAULT_FEATURES)
        pred = model.predict(counters)
        table.add_row(name, cycles, int(pred),
                      round(abs(pred - cycles) / cycles * 100, 1))
    print(table.render())


if __name__ == "__main__":
    main()

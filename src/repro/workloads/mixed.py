"""Multi-phase applications: programs whose behaviour changes over time.

Phase behaviour is what breaks naive multiplexing (E3: a time-sliced
counter extrapolates its slice across phases it never saw) and what the
perfometer trace (E9 / Figure 2) visualizes.  These programs also have a
real call structure -- main calling per-phase functions -- which is what
dynaprof instruments and the TAU-style profiler attributes metrics to
(E10).

Register convention: main's sequencing loops use r14/r15; phase
functions use r26-r31 and r1-r10 internally (clobbered across calls).
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.hw.isa import Assembler
from repro.workloads.builder import Expectations, Flow, Workload


class _PhaseSpec:
    """Internal: one phase's emitter + expected dominant preset."""

    def __init__(self, kind: str, iters: int):
        if kind not in ("fp", "mem", "br"):
            raise ValueError(f"unknown phase kind {kind!r}")
        if iters < 1:
            raise ValueError("phase iterations must be positive")
        self.kind = kind
        self.iters = iters


def phased(
    phases: Sequence[Tuple[str, int]],
    repeats: int = 1,
    use_fma: bool = True,
    seed: int = 23,
    names: Sequence[str] = (),
) -> Workload:
    """Build a program running the given phases in order, *repeats* times.

    *phases* is a list of ``(kind, iterations)`` with kind in
    ``{"fp", "mem", "br"}``:

    - ``fp``: floating point burst over a 64-word hot array;
    - ``mem``: strided walk over a large array (cache-hostile);
    - ``br``: data-dependent branches (predictor-hostile).

    Each phase is a function (``phase_0``, ``phase_1``, ... by default;
    override with *names*) so tools can instrument and attribute per
    phase.
    """
    specs = [_PhaseSpec(kind, iters) for kind, iters in phases]
    if repeats < 1:
        raise ValueError("repeats must be positive")
    if names and len(names) != len(specs):
        raise ValueError("names must match the number of phases")
    fn_names = list(names) or [f"phase_{pi}" for pi in range(len(specs))]
    rng = random.Random(seed)
    asm = Assembler(name="phased")
    flow = Flow(asm)

    hot = asm.init_array([1.0] * 64)
    big_n = 4096
    big = asm.init_array([1] * big_n)
    bits = asm.init_array([rng.randint(0, 1) for _ in range(1024)])

    # ---- phase functions -------------------------------------------------
    for pi, spec in enumerate(specs):
        asm.func(fn_names[pi])
        if spec.kind == "fp":
            asm.li("r1", hot)
            asm.li("r2", 0)          # index within the hot array
            asm.li("r3", 64)
            asm.fli("f0", 1.25)
            with flow.loop(spec.iters, "r30", "r31"):
                asm.add("r4", "r1", "r2")
                asm.fload("f1", "r4", 0)
                if use_fma:
                    asm.fma("f1", "f0", "f1", "f1")
                else:
                    asm.fmul("f2", "f0", "f1")
                    asm.fadd("f1", "f1", "f2")
                asm.fstore("f1", "r4", 0)
                asm.addi("r2", "r2", 1)
                with flow.if_ge("r2", "r3"):
                    asm.li("r2", 0)
        elif spec.kind == "mem":
            # stride-16 walk over the big array, wrapping
            asm.li("r1", 0)
            asm.li("r3", big_n)
            with flow.loop(spec.iters, "r30", "r31"):
                asm.addi("r4", "r1", big)
                asm.load("r5", "r4", 0)
                asm.addi("r1", "r1", 16)
                with flow.if_ge("r1", "r3"):
                    asm.li("r1", 0)
        else:  # br
            asm.li("r1", 0)
            asm.li("r3", 1024)
            asm.li("r6", 1)
            asm.li("r7", 0)
            with flow.loop(spec.iters, "r30", "r31"):
                asm.addi("r4", "r1", bits)
                asm.load("r5", "r4", 0)
                with flow.if_ge("r5", "r6"):
                    asm.addi("r7", "r7", 1)
                asm.addi("r1", "r1", 1)
                with flow.if_ge("r1", "r3"):
                    asm.li("r1", 0)
        asm.ret()
        asm.endfunc()

    # ---- main -----------------------------------------------------------
    asm.func("main")
    with flow.loop(repeats, "r14", "r15"):
        for pi in range(len(specs)):
            asm.call(fn_names[pi])
    asm.halt()
    asm.endfunc()

    fp_iters = sum(s.iters for s in specs if s.kind == "fp") * repeats
    mem_iters = sum(s.iters for s in specs if s.kind == "mem") * repeats
    br_iters = sum(s.iters for s in specs if s.kind == "br") * repeats
    return Workload(
        name=f"phased({','.join(k for k, _ in phases)},x{repeats})",
        program=asm.build(),
        expect=Expectations(
            flops=2 * fp_iters,
            fp_ins=fp_iters if use_fma else 2 * fp_iters,
            fma=fp_iters if use_fma else 0,
            converts=0,
            hot_function=None,
            extra={
                "fp_iters": fp_iters,
                "mem_iters": mem_iters,
                "br_iters": br_iters,
            },
        ),
    )


def demo_app(scale: int = 200, use_fma: bool = True) -> Workload:
    """The three-personality demo application used by tools and examples.

    ``compute`` (fp-bound), ``memwalk`` (L1-miss-bound) and ``branchy``
    (mispredict-bound) are each called from ``main``; a correct
    multi-metric profile attributes cycles ~evenly-ish but attributes
    L1_DCM overwhelmingly to ``memwalk`` and BR_MSP to ``branchy`` (E10).
    """
    return phased(
        [("fp", 6 * scale), ("mem", 4 * scale), ("br", 4 * scale)],
        repeats=1,
        use_fma=use_fma,
        names=("compute", "memwalk", "branchy"),
    )

"""Unit tests: the perfometer real-time monitor (Figure 2)."""

import pytest

from repro.core.errors import InvalidArgumentError
from repro.platforms import create
from repro.tools.perfometer import Perfometer, PerfometerTrace, TracePoint
from repro.workloads import phased


def fp_then_mem(repeats=2):
    return phased([("fp", 2500), ("mem", 2500)], repeats=repeats)


class TestMonitoring:
    def test_trace_collected_until_halt(self):
        sub = create("simPOWER")
        pm = Perfometer(sub, metric="PAPI_FP_OPS", interval_cycles=10_000)
        sub.machine.load(fp_then_mem().program)
        trace = pm.monitor()
        assert sub.machine.cpu.halted
        assert len(trace.points) > 4
        assert all(p.metric == "PAPI_FP_OPS" for p in trace.points)

    def test_trace_shows_phases(self):
        """fp-phase intervals show high FLOPS, mem-phase near zero --
        the Figure 2 content."""
        sub = create("simPOWER")
        pm = Perfometer(sub, metric="PAPI_FP_OPS", interval_cycles=8_000)
        sub.machine.load(fp_then_mem(repeats=3).program)
        trace = pm.monitor()
        rates = trace.rates()
        assert max(rates) > 0
        assert min(rates) == 0.0  # mem phases do no fp work

    def test_max_intervals_budget(self):
        sub = create("simPOWER")
        pm = Perfometer(sub, interval_cycles=5_000)
        sub.machine.load(fp_then_mem().program)
        pm.monitor(max_intervals=3)
        assert len(pm.trace.points) == 3
        assert not sub.machine.cpu.halted

    def test_select_metric_midway(self):
        """The Select Metric button: switch events between intervals."""
        sub = create("simPOWER")
        pm = Perfometer(sub, metric="PAPI_FP_OPS", interval_cycles=6_000)
        sub.machine.load(fp_then_mem(repeats=3).program)
        pm.monitor(max_intervals=4)
        pm.select_metric("PAPI_L1_DCM")
        pm.monitor()
        metrics = {p.metric for p in pm.trace.points}
        assert metrics == {"PAPI_FP_OPS", "PAPI_L1_DCM"}

    def test_select_unavailable_metric_rejected(self):
        sub = create("simT3E")
        pm = Perfometer(sub)
        with pytest.raises(Exception):
            pm.select_metric("PAPI_TLB_DM")

    def test_monitor_without_program_rejected(self):
        sub = create("simPOWER")
        pm = Perfometer(sub)
        with pytest.raises(InvalidArgumentError):
            pm.monitor()

    def test_interval_validation(self):
        sub = create("simPOWER")
        with pytest.raises(InvalidArgumentError):
            Perfometer(sub, interval_cycles=10)

    def test_attach_midway_scenario(self):
        """Dynaprof story: attach the perfometer to a half-run program."""
        sub = create("simPOWER")
        sub.machine.load(fp_then_mem().program)
        sub.machine.run(max_instructions=3000)
        pm = Perfometer(sub, metric="PAPI_TOT_INS", interval_cycles=8_000)
        trace = pm.monitor()
        assert trace.points
        assert sub.machine.cpu.halted


class TestTraceFile:
    def test_save_load_roundtrip(self, tmp_path):
        sub = create("simPOWER")
        pm = Perfometer(sub, interval_cycles=8_000)
        sub.machine.load(fp_then_mem().program)
        trace = pm.monitor()
        path = tmp_path / "run.perfometer.json"
        trace.save(str(path))
        loaded = PerfometerTrace.load(str(path))
        assert loaded.platform == trace.platform
        assert loaded.points == trace.points

    def test_rates_filter_by_metric(self):
        trace = PerfometerTrace(platform="x")
        trace.points.append(TracePoint(1.0, "A", 10, 100.0))
        trace.points.append(TracePoint(2.0, "B", 20, 200.0))
        assert trace.rates("A") == [100.0]
        assert len(trace.rates()) == 2


class TestRendering:
    def test_render_produces_plot(self):
        sub = create("simPOWER")
        pm = Perfometer(sub, interval_cycles=8_000)
        sub.machine.load(fp_then_mem().program)
        pm.monitor()
        art = pm.render(width=40, height=4)
        assert "PAPI_FP_OPS" in art
        assert "#" in art


class TestPerfometerProbe:
    """The dynaprof perfometer probe: per-call rate points."""

    def _run(self, metric="PAPI_FP_OPS"):
        from repro.core.library import Papi
        from repro.tools.dynaprof import Dynaprof
        from repro.tools.perfometer import PerfometerProbe

        sub = create("simPOWER")
        papi = Papi(sub)
        dyn = Dynaprof(sub, papi)
        dyn.load(phased([("fp", 400), ("mem", 400)], repeats=4,
                        names=("solver", "exchange")))
        probe = dyn.add_probe(PerfometerProbe(papi, metric=metric))
        dyn.instrument(functions=["solver", "exchange"])
        dyn.run()
        return probe

    def test_one_point_per_instrumented_call(self):
        probe = self._run()
        assert len(probe.trace.points) == 8  # 4 solver + 4 exchange calls

    def test_fp_phase_has_rate_mem_phase_none(self):
        probe = self._run()
        rates = [p.rate for p in probe.trace.points]
        # alternating solver/exchange: every other point is fp-hot
        solver_rates = rates[0::2]
        exchange_rates = rates[1::2]
        assert all(r > 0 for r in solver_rates)
        assert all(r == 0 for r in exchange_rates)

    def test_counts_match_phase_work(self):
        probe = self._run()
        solver_counts = [p.count for p in probe.trace.points[0::2]]
        assert all(c == 800 for c in solver_counts)  # 2 flops x 400 iters

    def test_trace_is_saveable(self, tmp_path):
        from repro.tools.perfometer import PerfometerTrace

        probe = self._run()
        path = tmp_path / "probe.json"
        probe.trace.save(str(path))
        assert len(PerfometerTrace.load(str(path)).points) == 8

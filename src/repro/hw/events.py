"""Catalogue of microarchitectural event signals.

A *signal* is a single wire out of the simulated pipeline: every time the
named microarchitectural occurrence happens, the signal's count increments
by one.  Signals are the raw material that platform *native events* are
built from (a native event is a sum over one or more signals, see
:mod:`repro.platforms.base`), and native events in turn are what PAPI
preset events map onto.

The split mirrors real hardware: a CPU has a fixed set of internal event
lines; each vendor exposes some subset (sometimes combinations) of them as
the documented native events of its PMU, and PAPI's preset table maps
portable names onto those native events per platform.

Signals are plain ``int`` indices into a flat counts array for speed; the
:class:`Signal` namespace gives them readable names.
"""

from __future__ import annotations

from typing import Dict, List


class Signal:
    """Integer indices of every event signal the simulated CPU can raise.

    The values index into ``CPU.counts`` (a flat list of ints), so they
    must be dense and start at zero.
    """

    # --- retirement / cycles ------------------------------------------
    TOT_INS = 0          #: instructions retired
    TOT_CYC = 1          #: cycles elapsed
    STL_CYC = 2          #: cycles lost to stalls (miss + mispredict penalties)

    # --- instruction mix ----------------------------------------------
    INT_INS = 3          #: integer ALU instructions retired
    LD_INS = 4           #: load instructions retired
    SR_INS = 5           #: store instructions retired
    BR_INS = 6           #: branch instructions retired (conditional + jumps)
    BR_CN = 7            #: conditional branch instructions retired
    BR_TKN = 8           #: conditional branches taken
    BR_NTK = 9           #: conditional branches not taken
    BR_MSP = 10          #: conditional branches mispredicted
    CALL_INS = 11        #: call instructions retired
    RET_INS = 12         #: return instructions retired

    # --- floating point -------------------------------------------------
    FP_ADD = 13          #: floating point add/subtract instructions
    FP_MUL = 14          #: floating point multiply instructions
    FP_DIV = 15          #: floating point divide instructions
    FP_SQRT = 16         #: floating point square root instructions
    FP_FMA = 17          #: fused multiply-add instructions
    FP_CVT = 18          #: precision-convert (rounding) instructions
    FP_MOV = 19          #: floating point register moves / loads-immediate

    # --- memory hierarchy ------------------------------------------------
    L1D_ACC = 20         #: L1 data cache accesses
    L1D_MISS = 21        #: L1 data cache misses
    L1I_ACC = 22         #: L1 instruction cache accesses
    L1I_MISS = 23        #: L1 instruction cache misses
    L2_ACC = 24          #: L2 (unified) cache accesses
    L2_MISS = 25         #: L2 (unified) cache misses
    TLB_DM = 26          #: data TLB misses
    MEM_RCY = 27         #: cycles spent waiting on main memory

    # --- system ----------------------------------------------------------
    SYS_INS = 28         #: system call instructions retired
    PRB_INS = 29         #: probe (instrumentation) pseudo-instructions retired
    HW_INT = 30          #: hardware interrupts delivered (overflow, timer)
    SYS_CYC = 31         #: cycles of kernel/interface work (PAPI_DOM_KERNEL)

    N_SIGNALS = 32       #: total number of signals (size of the counts array)


#: Human readable name for every signal index.
SIGNAL_NAMES: List[str] = [""] * Signal.N_SIGNALS
for _name, _value in vars(Signal).items():
    if _name.startswith("_") or _name == "N_SIGNALS":
        continue
    SIGNAL_NAMES[_value] = _name

#: Reverse lookup: signal name -> index.
SIGNAL_BY_NAME: Dict[str, int] = {
    name: idx for idx, name in enumerate(SIGNAL_NAMES) if name
}


def signal_name(signal: int) -> str:
    """Return the symbolic name of *signal*.

    Raises :class:`ValueError` for indices outside the catalogue so that
    corrupt event programming is caught early rather than silently
    producing an empty string.
    """
    if not 0 <= signal < Signal.N_SIGNALS:
        raise ValueError(f"unknown signal index: {signal!r}")
    return SIGNAL_NAMES[signal]


def signal_by_name(name: str) -> int:
    """Return the signal index for symbolic *name* (case sensitive)."""
    try:
        return SIGNAL_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown signal name: {name!r}") from None


def fresh_counts() -> List[int]:
    """Return a zeroed signal-counts array of the right length."""
    return [0] * Signal.N_SIGNALS

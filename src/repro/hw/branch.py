"""Branch predictors for the simulated machine.

Conditional branch outcomes feed the ``BR_*`` event signals; mispredictions
additionally cost pipeline-flush stall cycles.  Three predictors of
increasing sophistication are provided so that platforms can differ in
their branch behaviour (and so the branchy workloads show realistic
misprediction-rate differences between predictable and data-dependent
branches).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class BranchPredictor:
    """Interface: predict, then update with the actual outcome."""

    name = "abstract"

    def predict(self, pc: int) -> bool:
        """Return the predicted direction (True = taken) for branch at *pc*."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Record the actual outcome of the branch at *pc*."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all learned state."""
        raise NotImplementedError

    def steady_taken(self, pc: int) -> bool:
        """True when the branch at *pc* is in a *steady taken* state.

        Steady means: ``predict(pc)`` returns True and ``update(pc, True)``
        leaves the predictor's entire state unchanged, so an unbounded run
        of taken outcomes is a fixed point.  The block engine's loop
        replay requires this before multiplying a trial iteration.
        Unknown predictors conservatively answer False (replay disabled,
        correctness unaffected).
        """
        return False

    def inline_spec(self) -> Optional[Tuple[str, object, int]]:
        """Codegen contract for the trace engine, or None.

        Returns ``(kind, state, mask)`` when predict/update for a branch
        at a *statically known* pc can be open-coded against mutable
        *state* (shared by reference, so ``reset`` keeps working):

        - ``("twobit", table, mask)`` -- per-pc two-bit counters indexed
          by ``pc & mask``; predict is ``table[i] >= 2``, update
          saturates at 0/3;
        - ``("static", None, 0)`` -- always predicts taken, no state.

        History-coupled predictors (gshare) return None and are driven
        through the predict/update calls instead.
        """
        return None


class StaticTakenPredictor(BranchPredictor):
    """Always predicts taken (backward-branch-dominated codes do well)."""

    name = "static-taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        pass

    def steady_taken(self, pc: int) -> bool:
        return True

    def inline_spec(self):
        return ("static", None, 0)


class TwoBitPredictor(BranchPredictor):
    """Classic per-pc two-bit saturating counter table.

    States 0/1 predict not-taken, 2/3 predict taken; new branches start
    weakly taken (state 2), matching the loop-heavy workloads.
    """

    name = "two-bit"

    def __init__(self, table_size: int = 1024) -> None:
        if table_size < 1 or table_size & (table_size - 1):
            raise ValueError("table size must be a power of two")
        self._mask = table_size - 1
        self._table: List[int] = [2] * table_size

    def predict(self, pc: int) -> bool:
        return self._table[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = pc & self._mask
        state = self._table[idx]
        if taken:
            if state < 3:
                self._table[idx] = state + 1
        else:
            if state > 0:
                self._table[idx] = state - 1

    def reset(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = 2

    def steady_taken(self, pc: int) -> bool:
        # state 3 is saturated: a taken outcome leaves it at 3.
        return self._table[pc & self._mask] == 3

    def inline_spec(self):
        return ("twobit", self._table, self._mask)


class GsharePredictor(BranchPredictor):
    """Gshare: global history XOR pc indexing a two-bit counter table."""

    name = "gshare"

    def __init__(self, table_size: int = 4096, history_bits: int = 8) -> None:
        if table_size < 1 or table_size & (table_size - 1):
            raise ValueError("table size must be a power of two")
        if not 0 < history_bits <= 24:
            raise ValueError("history bits must be in (0, 24]")
        self._mask = table_size - 1
        self._table: List[int] = [2] * table_size
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        state = self._table[idx]
        if taken:
            if state < 3:
                self._table[idx] = state + 1
        else:
            if state > 0:
                self._table[idx] = state - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def reset(self) -> None:
        for i in range(len(self._table)):
            self._table[i] = 2
        self._history = 0

    def steady_taken(self, pc: int) -> bool:
        # taken outcomes shift 1s into the history; once it saturates at
        # all-ones AND the indexed entry saturates at 3, further taken
        # outcomes change nothing.
        return (
            self._history == self._history_mask
            and self._table[(pc ^ self._history) & self._mask] == 3
        )


_PREDICTORS: Dict[str, type] = {
    "static-taken": StaticTakenPredictor,
    "two-bit": TwoBitPredictor,
    "gshare": GsharePredictor,
}


def make_predictor(kind: str, **kwargs) -> BranchPredictor:
    """Factory used by platform configurations."""
    try:
        cls = _PREDICTORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown predictor {kind!r}; known: {sorted(_PREDICTORS)}"
        ) from None
    return cls(**kwargs)

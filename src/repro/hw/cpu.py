"""The interpreter CPU: executes programs and raises event signals.

This is the hot path of the whole reproduction -- every simulated
instruction flows through :meth:`CPU.run` -- so the loop is written as one
big dispatch with local-variable aliases, at some cost in elegance.  The
rest of the system only touches the CPU through its architectural state
(registers, memory, pc), the signal counts array, and the PMU hooks.

Event semantics (what increments what) are documented in
:mod:`repro.hw.events`; latencies and penalties come from
:class:`CPUConfig` so platforms can differ.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.hw.branch import BranchPredictor, make_predictor
from repro.hw.cache import MemoryHierarchy
from repro.hw.events import Signal, fresh_counts
from repro.hw.isa import (
    DATA_SEGMENT_BASE,
    INS_BYTES,
    NUM_FREGS,
    NUM_IREGS,
    WORD_BYTES,
    Op,
    Program,
)
from repro.hw.pmu import PMU, SampleRecord


class MachineFault(Exception):
    """Raised for runtime faults: bad memory access, divide by zero, ..."""


_F32 = struct.Struct("<f")


def _round_to_single(x: float) -> float:
    """Round a double to IEEE single precision (the FCVT operation)."""
    return _F32.unpack(_F32.pack(x))[0]


def default_latencies() -> List[int]:
    """Base latency (cycles) per opcode, before memory/branch penalties."""
    lat = [1] * Op.N_OPS
    lat[Op.MUL] = 3
    lat[Op.DIV] = 12
    lat[Op.FADD] = 2
    lat[Op.FSUB] = 2
    lat[Op.FMUL] = 3
    lat[Op.FDIV] = 14
    lat[Op.FSQRT] = 20
    lat[Op.FMA] = 3
    lat[Op.FCVT] = 2
    return lat


@dataclass(frozen=True)
class CPUConfig:
    """Microarchitectural parameters of one simulated CPU."""

    predictor: str = "two-bit"
    branch_penalty: int = 6
    syscall_cost: int = 200
    latencies: Tuple[int, ...] = tuple(default_latencies())
    #: heap words appended beyond the program's declared data size.
    heap_words: int = 0

    def __post_init__(self) -> None:
        if len(self.latencies) != Op.N_OPS:
            raise ValueError("latencies must cover every opcode")
        if self.branch_penalty < 0 or self.syscall_cost < 0:
            raise ValueError("penalties must be non-negative")


@dataclass
class RunResult:
    """Outcome of one :meth:`CPU.run` slice."""

    reason: str                 #: "halt" | "max_instructions" | "max_cycles" | "stop"
    instructions: int           #: instructions retired during this slice
    cycles: int                 #: cycles elapsed during this slice

    @property
    def halted(self) -> bool:
        return self.reason == "halt"


@dataclass
class CPUContext:
    """Snapshot of architectural state (for thread context switching)."""

    pc: int
    data_base: int
    iregs: List[int]
    fregs: List[float]
    call_stack: List[int]
    halted: bool
    cur_iline: int
    code: List[tuple]
    memory: List[float]
    program: Optional[Program]
    touched_pages: Set[int]


class CPU:
    """Interpreter for the simulated ISA.

    A :class:`~repro.hw.machine.Machine` owns one or more CPUs, each
    with a private PMU, signal-counts array and block engine (so decode
    caches are per-CPU) over a shared memory hierarchy.  Threads are
    time-multiplexed onto CPUs by saving/restoring :class:`CPUContext`.
    """

    def __init__(
        self,
        config: Optional[CPUConfig] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        pmu: Optional[PMU] = None,
        counts: Optional[List[int]] = None,
        block_engine: bool = True,
        engine_tier: Optional[str] = None,
    ) -> None:
        self.config = config or CPUConfig()
        self.counts: List[int] = counts if counts is not None else fresh_counts()
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.pmu = pmu  # may be attached later by the Machine
        self.predictor: BranchPredictor = make_predictor(self.config.predictor)
        # architectural state
        self.pc = 0
        self.iregs: List[int] = [0] * NUM_IREGS
        self.fregs: List[float] = [0.0] * NUM_FREGS
        self.call_stack: List[int] = []
        self.halted = True
        self.cur_iline = -1
        self.code: List[tuple] = []
        self.memory: List[float] = []
        self.program: Optional[Program] = None
        self.touched_pages: Set[int] = set()
        #: byte address where this context's data segment lives; threads
        #: get distinct bases so their pages/lines do not alias (distinct
        #: physical memory, as on a real machine).
        self.data_base: int = DATA_SEGMENT_BASE
        #: position of this CPU in its machine's ``cpus`` list (set by
        #: the Machine; 0 for standalone CPUs and single-CPU machines).
        self.cpu_index: int = 0
        #: invoked as ``probe_dispatch(probe_id, cpu)`` on PROBE opcodes.
        self.probe_dispatch: Optional[Callable[[int, "CPU"], None]] = None
        #: optional ``probe_id -> handler-or-None`` lookup the trace
        #: engine uses to pre-resolve probe handlers at region compile
        #: time (the Machine installs ``dict.get`` of its registry and
        #: invalidates engines whenever registrations change).
        self.probe_resolver: Optional[Callable[[int], object]] = None
        #: set by external code to make :meth:`run` return early.
        self.stop_flag = False
        # derived constants
        self._page_shift = self.hierarchy.config.tlb.page_bits
        self._iline_shift = self.hierarchy.config.l1i.line_bits
        #: basic-block execution engine (None = pure interpreter).  The
        #: engine is bit-exact with the interpreter at every tier; see
        #: :mod:`repro.hw.blockcache` for the correctness contract.
        #: ``engine_tier`` ("off" / "block" / "trace") wins over the
        #: legacy ``block_engine`` flag when given.
        tier = engine_tier if engine_tier is not None else (
            "trace" if block_engine else "off"
        )
        if tier not in ("off", "block", "trace"):
            raise ValueError(f"unknown engine tier {tier!r}")
        self.engine = None
        if tier != "off":
            from repro.hw.blockcache import BlockEngine

            self.engine = BlockEngine(self, tier)
            if self.pmu is not None:
                self.pmu.set_flush_hook(self.engine.flush)
                self.pmu.unquiet_hook = self.engine.unbind

    # ------------------------------------------------------------------
    # program loading / context switching
    # ------------------------------------------------------------------

    def load(self, program: Program, heap_words: Optional[int] = None) -> None:
        """Load *program*, allocate its memory and reset architectural state."""
        heap = self.config.heap_words if heap_words is None else heap_words
        if self.engine is not None and self.code:
            self.engine.retire(self.code)
        self.program = program
        self.code = program.resolve()
        self.memory = [0] * (program.data_size + heap)
        for addr, value in program.data_init:
            self.memory[addr] = value
        self.pc = program.label_at(program.entry)
        self.iregs = [0] * NUM_IREGS
        self.fregs = [0.0] * NUM_FREGS
        self.call_stack = []
        self.halted = False
        self.cur_iline = -1
        self.touched_pages = set()
        self.data_base = DATA_SEGMENT_BASE
        self.stop_flag = False

    def save_context(self) -> CPUContext:
        return CPUContext(
            pc=self.pc,
            data_base=self.data_base,
            iregs=list(self.iregs),
            fregs=list(self.fregs),
            call_stack=list(self.call_stack),
            halted=self.halted,
            cur_iline=self.cur_iline,
            code=self.code,
            memory=self.memory,
            program=self.program,
            touched_pages=self.touched_pages,
        )

    def restore_context(self, ctx: CPUContext) -> None:
        self.pc = ctx.pc
        self.data_base = ctx.data_base
        self.iregs = list(ctx.iregs)
        self.fregs = list(ctx.fregs)
        self.call_stack = list(ctx.call_stack)
        self.halted = ctx.halted
        # force an instruction refetch: the incoming thread's lines may
        # have been evicted while it was descheduled.
        self.cur_iline = -1
        self.code = ctx.code
        self.memory = ctx.memory
        self.program = ctx.program
        self.touched_pages = ctx.touched_pages
        if self.engine is not None:
            # the incoming thread's register/memory objects differ from
            # the bound ones; drop the binding until the next run().
            self.engine.unbind()

    # ------------------------------------------------------------------
    # block-engine control
    # ------------------------------------------------------------------

    def engine_barrier(self) -> None:
        """External machine-state change (cache pollution, reset, ...).

        Flushes the engine and re-arms its replay trials; a no-op when
        the engine is disabled.
        """
        if self.engine is not None:
            self.engine.barrier()

    def engine_stats(self):
        """The engine's :class:`~repro.hw.blockcache.EngineStats`, or None."""
        return self.engine.stats if self.engine is not None else None

    def migrate(self, program: Program, remap: Callable[[int], int]) -> None:
        """Move a paused CPU onto rewritten *program* (dynaprof attach).

        ``remap`` translates old instruction indices to new ones; it is
        applied to the pc and every return address on the call stack.
        """
        if self.engine is not None and self.code:
            # probe insertion rewrote the program: retire the old decode
            # cache (pcs and block shapes no longer match).
            self.engine.retire(self.code)
        self.program = program
        self.code = program.resolve()
        self.pc = remap(self.pc)
        self.call_stack = [remap(ra) for ra in self.call_stack]
        self.cur_iline = -1
        needed = program.data_size
        if len(self.memory) < needed:
            self.memory.extend([0] * (needed - len(self.memory)))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> RunResult:
        """Execute until HALT, an instruction/cycle budget, or stop_flag.

        ``max_cycles`` is a budget of *additional* cycles for this slice
        (used by the scheduler for time quanta).
        """
        if self.halted:
            return RunResult("halt", 0, 0)
        if not self.code:
            raise MachineFault("no program loaded")

        # --- local aliases for the hot loop -----------------------------
        code = self.code
        counts = self.counts
        iregs = self.iregs
        fregs = self.fregs
        memory = self.memory
        mem_len = len(memory)
        call_stack = self.call_stack
        hierarchy = self.hierarchy
        data_access = hierarchy.data_access
        inst_fetch = hierarchy.inst_fetch
        predictor = self.predictor
        predict = predictor.predict
        pred_update = predictor.update
        pmu = self.pmu
        branch_penalty = self.config.branch_penalty
        syscall_cost = self.config.syscall_cost
        lat = self.config.latencies
        page_shift = self._page_shift
        iline_shift = self._iline_shift
        touched = self.touched_pages
        data_base = self.data_base
        probe_dispatch = self.probe_dispatch

        pc = self.pc
        cur_iline = self.cur_iline
        executed = 0
        cycle0 = counts[Signal.TOT_CYC]
        ins_budget = max_instructions if max_instructions is not None else -1
        cyc_budget = (cycle0 + max_cycles) if max_cycles is not None else -1

        # block engine: compiled fast path for block-leader pcs.  Any pc
        # in ``denied`` (probes, syscalls, halts, mid-block resumes) and
        # any block that could cross a PMU/budget deadline falls through
        # to the interpreter body below, which remains the precise
        # reference path.
        engine = self.engine
        denied = None
        if engine is not None:
            _blocks, denied = engine.begin()
            engine_execute = engine.execute

        TOT_INS = Signal.TOT_INS
        TOT_CYC = Signal.TOT_CYC
        STL_CYC = Signal.STL_CYC
        INT_INS = Signal.INT_INS
        LD_INS = Signal.LD_INS
        SR_INS = Signal.SR_INS
        BR_INS = Signal.BR_INS
        BR_CN = Signal.BR_CN
        BR_TKN = Signal.BR_TKN
        BR_NTK = Signal.BR_NTK
        BR_MSP = Signal.BR_MSP
        L1D_ACC = Signal.L1D_ACC
        L1D_MISS = Signal.L1D_MISS
        L1I_ACC = Signal.L1I_ACC
        L1I_MISS = Signal.L1I_MISS
        L2_ACC = Signal.L2_ACC
        L2_MISS = Signal.L2_MISS
        TLB_DM = Signal.TLB_DM
        MEM_RCY = Signal.MEM_RCY

        reason = "halt"
        while True:
            if self.stop_flag:
                reason = "stop"
                break
            if executed == ins_budget:
                reason = "max_instructions"
                break
            if cyc_budget >= 0 and counts[TOT_CYC] >= cyc_budget:
                reason = "max_cycles"
                break

            if denied is not None and pc not in denied:
                res = engine_execute(
                    pc,
                    cur_iline,
                    ins_budget - executed if ins_budget >= 0 else -1,
                    cyc_budget,
                )
                if res is not None:
                    pc, cur_iline, n = res
                    executed += n
                    if engine.probe_exit_pc >= 0:
                        # a probe handler perturbed the machine inside a
                        # compiled region; the probe retired in-region
                        # without its post-retire hooks.  Resync if the
                        # handler rewrote the program, then run the PMU
                        # hooks the interpreter would have run for it.
                        exec_pc = engine.probe_exit_pc
                        engine.probe_exit_pc = -1
                        if self.code is not code:
                            code = self.code
                            memory = self.memory
                            mem_len = len(memory)
                            iregs = self.iregs
                            fregs = self.fregs
                            call_stack = self.call_stack
                            touched = self.touched_pages
                            data_base = self.data_base
                            probe_dispatch = self.probe_dispatch
                            cur_iline = -1
                            if (
                                0 <= self.pc < len(code)
                                and code[self.pc][0] == Op.PROBE
                            ):
                                pc = self.pc + 1
                            else:
                                pc = self.pc
                            _blocks, denied = engine.begin()
                            engine_execute = engine.execute
                        if pmu is not None:
                            if pmu.sampler is not None:
                                pmu.sample_countdown -= 1
                                if pmu.sample_countdown <= 0:
                                    sample = SampleRecord(
                                        pc=exec_pc,
                                        opcode=Op.PROBE,
                                        cycle=counts[TOT_CYC],
                                        is_load=False,
                                        is_store=False,
                                        is_fp=Op.FLI <= Op.PROBE <= Op.FCVT,
                                        is_branch=Op.JMP <= Op.PROBE <= Op.RET,
                                        br_mispred=False,
                                        l1d_miss=False,
                                        l2_miss=False,
                                        tlb_miss=False,
                                        latency=lat[Op.PROBE],
                                    )
                                    hw = pmu.deliver_sample(sample)
                                    counts[TOT_CYC] += (
                                        hw * pmu.config.interrupt_cost
                                    )
                                    counts[Signal.HW_INT] += hw
                            if pmu.watch_active:
                                hw = pmu.check_overflow(pc, counts[TOT_CYC])
                                if hw:
                                    counts[TOT_CYC] += (
                                        hw * pmu.config.interrupt_cost
                                    )
                                    counts[Signal.HW_INT] += hw
                            if pmu.timer_active:
                                hw = pmu.check_timer(counts[TOT_CYC])
                                if hw:
                                    counts[Signal.HW_INT] += hw
                    continue

            # ---- instruction fetch -------------------------------------
            byte_pc = pc * INS_BYTES
            iline = byte_pc >> iline_shift
            if iline != cur_iline:
                cur_iline = iline
                flat, i1m, l2m = inst_fetch(byte_pc)
                counts[L1I_ACC] += 1
                if i1m:
                    counts[L1I_MISS] += 1
                    counts[L2_ACC] += 1
                    if l2m:
                        counts[L2_MISS] += 1
                if flat:
                    counts[TOT_CYC] += flat
                    counts[STL_CYC] += flat

            try:
                op, a, b, c, d = code[pc]
            except IndexError:
                raise MachineFault(f"pc out of range: {pc}") from None

            counts[TOT_INS] += 1
            counts[TOT_CYC] += lat[op]
            executed += 1
            next_pc = pc + 1
            exec_pc = pc
            mem_l1m = mem_l2m = mem_tlbm = br_msp = False
            mem_penalty = 0

            # ---- execute ------------------------------------------------
            if op == Op.FLOAD or op == Op.LOAD:
                addr = iregs[b] + d
                if not 0 <= addr < mem_len:
                    raise MachineFault(
                        f"pc {pc}: load address {addr} out of range"
                    )
                byte_addr = addr * WORD_BYTES + data_base
                penalty, l1m, l2m, tlbm = data_access(byte_addr)
                mem_l1m, mem_l2m, mem_tlbm, mem_penalty = l1m, l2m, tlbm, penalty
                counts[LD_INS] += 1
                counts[L1D_ACC] += 1
                if l1m:
                    counts[L1D_MISS] += 1
                    counts[L2_ACC] += 1
                    if l2m:
                        counts[L2_MISS] += 1
                    if pmu is not None and pmu.ear_active:
                        pmu.ear_miss(pc, byte_addr, counts[TOT_CYC], "l1d_miss")
                if tlbm:
                    counts[TLB_DM] += 1
                    touched.add(byte_addr >> page_shift)
                    if pmu is not None and pmu.ear_active:
                        pmu.ear_miss(pc, byte_addr, counts[TOT_CYC], "tlb_miss")
                if penalty:
                    counts[TOT_CYC] += penalty
                    counts[STL_CYC] += penalty
                    counts[MEM_RCY] += penalty
                if op == Op.LOAD:
                    iregs[a] = int(memory[addr])
                else:
                    fregs[a] = float(memory[addr])
            elif op == Op.FSTORE or op == Op.STORE:
                addr = iregs[b] + d
                if not 0 <= addr < mem_len:
                    raise MachineFault(
                        f"pc {pc}: store address {addr} out of range"
                    )
                byte_addr = addr * WORD_BYTES + data_base
                penalty, l1m, l2m, tlbm = data_access(byte_addr)
                mem_l1m, mem_l2m, mem_tlbm, mem_penalty = l1m, l2m, tlbm, penalty
                counts[SR_INS] += 1
                counts[L1D_ACC] += 1
                if l1m:
                    counts[L1D_MISS] += 1
                    counts[L2_ACC] += 1
                    if l2m:
                        counts[L2_MISS] += 1
                    if pmu is not None and pmu.ear_active:
                        pmu.ear_miss(pc, byte_addr, counts[TOT_CYC], "l1d_miss")
                if tlbm:
                    counts[TLB_DM] += 1
                    touched.add(byte_addr >> page_shift)
                    if pmu is not None and pmu.ear_active:
                        pmu.ear_miss(pc, byte_addr, counts[TOT_CYC], "tlb_miss")
                if penalty:
                    counts[TOT_CYC] += penalty
                    counts[STL_CYC] += penalty
                    counts[MEM_RCY] += penalty
                if op == Op.STORE:
                    memory[addr] = iregs[a]
                else:
                    memory[addr] = fregs[a]
            elif op == Op.ADDI:
                counts[INT_INS] += 1
                iregs[a] = iregs[b] + d
            elif op == Op.ADD:
                counts[INT_INS] += 1
                iregs[a] = iregs[b] + iregs[c]
            elif op == Op.FMA:
                counts[Signal.FP_FMA] += 1
                fregs[a] = fregs[b] * fregs[c] + fregs[d]
            elif op == Op.FADD:
                counts[Signal.FP_ADD] += 1
                fregs[a] = fregs[b] + fregs[c]
            elif op == Op.FMUL:
                counts[Signal.FP_MUL] += 1
                fregs[a] = fregs[b] * fregs[c]
            elif op == Op.FSUB:
                counts[Signal.FP_ADD] += 1
                fregs[a] = fregs[b] - fregs[c]
            elif op == Op.BLT or op == Op.BGE or op == Op.BEQ or op == Op.BNE:
                counts[BR_INS] += 1
                counts[BR_CN] += 1
                if op == Op.BLT:
                    taken = iregs[a] < iregs[b]
                elif op == Op.BGE:
                    taken = iregs[a] >= iregs[b]
                elif op == Op.BEQ:
                    taken = iregs[a] == iregs[b]
                else:
                    taken = iregs[a] != iregs[b]
                predicted = predict(pc)
                pred_update(pc, taken)
                if taken:
                    counts[BR_TKN] += 1
                    next_pc = c
                else:
                    counts[BR_NTK] += 1
                if predicted != taken:
                    br_msp = True
                    counts[BR_MSP] += 1
                    counts[TOT_CYC] += branch_penalty
                    counts[STL_CYC] += branch_penalty
            elif op == Op.JMP:
                counts[BR_INS] += 1
                next_pc = a
            elif op == Op.CALL:
                counts[BR_INS] += 1
                counts[Signal.CALL_INS] += 1
                call_stack.append(pc + 1)
                next_pc = a
            elif op == Op.RET:
                counts[BR_INS] += 1
                counts[Signal.RET_INS] += 1
                if not call_stack:
                    raise MachineFault(f"pc {pc}: RET with empty call stack")
                next_pc = call_stack.pop()
            elif op == Op.LI:
                counts[INT_INS] += 1
                iregs[a] = d
            elif op == Op.MOV:
                counts[INT_INS] += 1
                iregs[a] = iregs[b]
            elif op == Op.SUB:
                counts[INT_INS] += 1
                iregs[a] = iregs[b] - iregs[c]
            elif op == Op.MUL:
                counts[INT_INS] += 1
                iregs[a] = iregs[b] * iregs[c]
            elif op == Op.DIV:
                counts[INT_INS] += 1
                if iregs[c] == 0:
                    raise MachineFault(f"pc {pc}: integer divide by zero")
                q = abs(iregs[b]) // abs(iregs[c])
                iregs[a] = q if (iregs[b] < 0) == (iregs[c] < 0) else -q
            elif op == Op.MULI:
                counts[INT_INS] += 1
                iregs[a] = iregs[b] * d
            elif op == Op.FDIV:
                counts[Signal.FP_DIV] += 1
                if fregs[c] == 0.0:
                    raise MachineFault(f"pc {pc}: float divide by zero")
                fregs[a] = fregs[b] / fregs[c]
            elif op == Op.FSQRT:
                counts[Signal.FP_SQRT] += 1
                if fregs[b] < 0.0:
                    raise MachineFault(f"pc {pc}: sqrt of negative value")
                fregs[a] = fregs[b] ** 0.5
            elif op == Op.FCVT:
                counts[Signal.FP_CVT] += 1
                fregs[a] = _round_to_single(fregs[b])
            elif op == Op.FLI:
                counts[Signal.FP_MOV] += 1
                fregs[a] = d
            elif op == Op.FMOV:
                counts[Signal.FP_MOV] += 1
                fregs[a] = fregs[b]
            elif op == Op.NOP:
                pass
            elif op == Op.PROBE:
                counts[Signal.PRB_INS] += 1
                if probe_dispatch is not None:
                    # expose live state so probes can read counters etc.
                    self.pc = pc
                    self.cur_iline = cur_iline
                    probe_dispatch(a, self)
                    if self.code is not code:
                        # the handler rewrote the program (dynaprof
                        # instrument/remove_probes, or a full reload):
                        # rebind every cached alias and resume under the
                        # new indexing -- past the migrated probe when
                        # it still exists there, at the new pc otherwise.
                        code = self.code
                        memory = self.memory
                        mem_len = len(memory)
                        iregs = self.iregs
                        fregs = self.fregs
                        call_stack = self.call_stack
                        touched = self.touched_pages
                        data_base = self.data_base
                        probe_dispatch = self.probe_dispatch
                        cur_iline = -1
                        if (
                            0 <= self.pc < len(code)
                            and code[self.pc][0] == Op.PROBE
                        ):
                            next_pc = self.pc + 1
                        else:
                            next_pc = self.pc
                        if engine is not None:
                            _blocks, denied = engine.begin()
                            engine_execute = engine.execute
            elif op == Op.SYSCALL:
                counts[Signal.SYS_INS] += 1
                counts[TOT_CYC] += syscall_cost
            elif op == Op.HALT:
                self.halted = True
                pc = next_pc  # leave pc past the HALT
                reason = "halt"
                # final PMU bookkeeping below, then exit
                if pmu is not None:
                    if pmu.watch_active:
                        n = pmu.check_overflow(pc, counts[TOT_CYC])
                        if n:
                            cost = n * pmu.config.interrupt_cost
                            counts[TOT_CYC] += cost
                            counts[Signal.HW_INT] += n
                    if pmu.timer_active:
                        n = pmu.check_timer(counts[TOT_CYC])
                        if n:
                            counts[Signal.HW_INT] += n
                break
            else:  # pragma: no cover - unreachable with a valid assembler
                raise MachineFault(f"pc {pc}: illegal opcode {op}")

            pc = next_pc

            # ---- PMU hooks ----------------------------------------------
            if pmu is not None:
                if pmu.sampler is not None:
                    pmu.sample_countdown -= 1
                    if pmu.sample_countdown <= 0:
                        # ProfileMe: precise attribution of the instruction
                        # that just retired, with its true miss behaviour.
                        sample = SampleRecord(
                            pc=exec_pc,
                            opcode=op,
                            cycle=counts[TOT_CYC],
                            is_load=op == Op.LOAD or op == Op.FLOAD,
                            is_store=op == Op.STORE or op == Op.FSTORE,
                            is_fp=Op.FLI <= op <= Op.FCVT,
                            is_branch=Op.JMP <= op <= Op.RET,
                            br_mispred=br_msp,
                            l1d_miss=mem_l1m,
                            l2_miss=mem_l2m,
                            tlb_miss=mem_tlbm,
                            latency=lat[op] + mem_penalty,
                        )
                        n = pmu.deliver_sample(sample)
                        cost = n * pmu.config.interrupt_cost
                        counts[TOT_CYC] += cost
                        counts[Signal.HW_INT] += n
                if pmu.watch_active:
                    n = pmu.check_overflow(pc, counts[TOT_CYC])
                    if n:
                        cost = n * pmu.config.interrupt_cost
                        counts[TOT_CYC] += cost
                        counts[Signal.HW_INT] += n
                if pmu.timer_active:
                    n = pmu.check_timer(counts[TOT_CYC])
                    if n:
                        counts[Signal.HW_INT] += n

        # --- write back architectural state ------------------------------
        self.pc = pc
        self.cur_iline = cur_iline
        return RunResult(reason, executed, counts[TOT_CYC] - cycle0)

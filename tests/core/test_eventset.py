"""Unit tests: EventSet state machine and membership management."""

import pytest

from repro.core import constants as C
from repro.core.errors import (
    ConflictError,
    InvalidArgumentError,
    IsRunningError,
    NoSuchEventError,
    NoSuchEventSetError,
    NotRunningError,
    SubstrateFeatureError,
)
from repro.core.library import Papi
from repro.workloads import dot


def code(papi, name):
    return papi.event_name_to_code(name)


@pytest.fixture
def power_papi(simpower):
    return Papi(simpower)


class TestMembership:
    def test_add_and_list(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_CYC", "PAPI_FP_OPS")
        assert es.event_names == ["PAPI_TOT_CYC", "PAPI_FP_OPS"]
        assert es.num_events == 2

    def test_duplicate_add_rejected(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_CYC")
        with pytest.raises(InvalidArgumentError):
            es.add_named("PAPI_TOT_CYC")

    def test_unavailable_preset_rejected(self, simt3e):
        papi = Papi(simt3e)
        es = papi.create_eventset()
        with pytest.raises(NoSuchEventError):
            es.add_named("PAPI_TLB_DM")

    def test_remove_event(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_CYC", "PAPI_FP_OPS")
        es.remove_event(code(power_papi, "PAPI_TOT_CYC"))
        assert es.event_names == ["PAPI_FP_OPS"]

    def test_remove_absent_rejected(self, power_papi):
        es = power_papi.create_eventset()
        with pytest.raises(NoSuchEventError):
            es.remove_event(code(power_papi, "PAPI_TOT_CYC"))

    def test_cleanup_clears(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_CYC")
        es.cleanup()
        assert es.num_events == 0

    def test_native_events_addable(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PM_FPU_FMA", "PM_CYC")
        assert es.num_events == 2

    def test_derived_preset_pulls_multiple_natives(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        assert set(es.assignment) == {"PM_FPU_INS", "PM_FPU_FMA", "PM_FPU_CVT"}

    def test_shared_natives_deduplicated(self, power_papi):
        """FP_INS and FP_OPS share PM_FPU_INS: one counter, not two."""
        es = power_papi.create_eventset()
        es.add_named("PAPI_FP_INS", "PAPI_FP_OPS")
        assert len(es.assignment) == 3  # FPU_INS, FMA, CVT

    def test_conflict_leaves_eventset_unchanged(self, simx86):
        papi = Papi(simx86)
        es = papi.create_eventset()
        es.add_named("PAPI_L1_DCM")  # counter 0 only
        with pytest.raises(ConflictError):
            es.add_named("PAPI_TLB_DM")  # also counter 0 only
        assert es.event_names == ["PAPI_L1_DCM"]


class TestStateMachine:
    def _loaded(self, papi, n=400):
        wl = dot(n, use_fma=papi.substrate.HAS_FMA)
        papi.substrate.machine.load(wl.program)
        return wl

    def test_initial_state_stopped(self, power_papi):
        es = power_papi.create_eventset()
        assert es.state() & C.PAPI_STOPPED

    def test_running_state(self, power_papi):
        self._loaded(power_papi)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        assert es.state() & C.PAPI_RUNNING
        es.stop()
        assert es.state() & C.PAPI_STOPPED

    def test_start_empty_rejected(self, power_papi):
        es = power_papi.create_eventset()
        with pytest.raises(InvalidArgumentError):
            es.start()

    def test_double_start_rejected(self, power_papi):
        self._loaded(power_papi)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        with pytest.raises(IsRunningError):
            es.start()

    def test_read_stopped_rejected(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        with pytest.raises(NotRunningError):
            es.read()

    def test_stop_stopped_rejected(self, power_papi):
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        with pytest.raises(NotRunningError):
            es.stop()

    def test_add_while_running_rejected(self, power_papi):
        self._loaded(power_papi)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        with pytest.raises(IsRunningError):
            es.add_named("PAPI_TOT_CYC")
        es.stop()

    def test_only_one_eventset_runs_at_a_time(self, power_papi):
        self._loaded(power_papi)
        es1 = power_papi.create_eventset()
        es1.add_named("PAPI_TOT_INS")
        es2 = power_papi.create_eventset()
        es2.add_named("PAPI_TOT_CYC")
        es1.start()
        with pytest.raises(IsRunningError):
            es2.start()
        es1.stop()
        es2.start()  # fine now
        es2.stop()

    def test_destroy_running_rejected(self, power_papi):
        self._loaded(power_papi)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        with pytest.raises(IsRunningError):
            power_papi.destroy_eventset(es)
        es.stop()
        power_papi.destroy_eventset(es)
        with pytest.raises(NoSuchEventSetError):
            power_papi.eventset(es.handle)

    def test_reset_zeroes_counts(self, power_papi):
        self._loaded(power_papi, n=1000)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        power_papi.substrate.machine.run(max_instructions=500)
        assert es.read()[0] >= 500
        es.reset()
        assert es.read()[0] < 50
        es.stop()

    def test_accum_accumulates_and_resets(self, power_papi):
        self._loaded(power_papi, n=1000)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        acc = [0]
        power_papi.substrate.machine.run(max_instructions=300)
        acc = es.accum(acc)
        first = acc[0]
        power_papi.substrate.machine.run(max_instructions=300)
        acc = es.accum(acc)
        assert acc[0] >= first + 300
        es.stop()

    def test_accum_length_checked(self, power_papi):
        self._loaded(power_papi)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        with pytest.raises(InvalidArgumentError):
            es.accum([0, 0])
        es.stop()

    def test_shutdown_stops_everything(self, power_papi):
        self._loaded(power_papi)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        power_papi.shutdown()
        assert not es.running
        assert not power_papi.initialized


class TestMultiplexOptions:
    def test_multiplex_must_be_explicit(self, simx86):
        """More events than counters without set_multiplex -> conflict."""
        papi = Papi(simx86)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS")
        with pytest.raises(ConflictError):
            es.add_named("PAPI_FP_OPS")

    def test_multiplex_allows_more_events(self, simx86):
        papi = Papi(simx86)
        es = papi.create_eventset()
        es.set_multiplex()
        es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS",
                     "PAPI_L1_DCM", "PAPI_BR_MSP")
        assert es.multiplexed
        assert es.num_events == 5

    def test_multiplex_on_sampling_platform_rejected(self, simalpha):
        papi = Papi(simalpha)
        es = papi.create_eventset()
        with pytest.raises(SubstrateFeatureError):
            es.set_multiplex()

    def test_multiplex_while_running_rejected(self, power_papi):
        wl = dot(200, use_fma=True)
        power_papi.substrate.machine.load(wl.program)
        es = power_papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.start()
        with pytest.raises(IsRunningError):
            es.set_multiplex()
        es.stop()

    def test_multiplex_rejects_impossible_event(self, simx86):
        """Multiplexing can't conjure events no counter supports."""
        papi = Papi(simx86)
        es = papi.create_eventset()
        es.set_multiplex()
        es.add_named("PAPI_TOT_CYC")
        # all natives are placeable alone on simX86, so build a fake one
        from repro.platforms.base import NativeEvent
        from repro.hw.events import Signal
        impossible = NativeEvent("IMP", (Signal.TOT_INS,), allowed_counters=())
        with pytest.raises(ConflictError):
            es._check_multiplex_feasible({"IMP": impossible})


class TestSamplingEventSets:
    def test_any_number_of_events(self, simalpha):
        """The sampler sees everything: no allocation limits."""
        papi = Papi(simalpha)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS",
                     "PAPI_LD_INS", "PAPI_SR_INS", "PAPI_L1_DCM",
                     "PAPI_TLB_DM", "PAPI_BR_INS")
        assert es.num_events == 8
        assert es.assignment == {}

    def test_attach_unsupported(self, simalpha):
        papi = Papi(simalpha)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        from repro.simos.thread import Thread
        wl = dot(50, use_fma=True)
        t = Thread.create(1, wl.program)
        with pytest.raises(SubstrateFeatureError):
            es.attach(t)

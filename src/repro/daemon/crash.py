"""Test-only saboteur: deterministically kill or wedge papid workers.

Chaos that cannot be replayed is folklore, not evidence.  Instead of an
external process sending SIGKILL at wall-clock times (unreproducible),
the saboteur rides *inside* the worker and fires after an exact number
of freshly-executed batch ops, with the countdown and failure mode
drawn from :func:`repro.validate.seeds.derive_seed` on the fault plan's
seed and the worker's ``(id, generation)``.  The crash point is then a
pure function of the seed and the (deterministic) op stream, which is
what lets the chaos-soak assert bit-identical fleets across runs.

Only generation 0 of each worker carries a saboteur: respawned workers
(generation ≥ 1) run clean, so a soak with N shards sees exactly N
firings and always terminates.  Dedupe-cache replays do not tick the
countdown — retries forced by *other* shards' crashes must not move
this shard's crash point.

Failure modes:

- ``die``   — ``os._exit(3)`` mid-batch: the parent sees a dead process
  and an EOF on the pipe, with the current batch unacked.
- ``wedge`` — stop answering (sleep forever) while staying alive: only
  the supervisor's heartbeat timeout can tell this from a slow worker.

The inline (in-process) transport cannot ``os._exit`` or sleep forever;
there the saboteur raises :class:`WorkerCrashed`, which the inline
conn translates into the same dead-pipe surface the real transport
shows (``wedge`` degrades to ``die`` inline, since a synchronous hang
would deadlock the test).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan, parse_inject
from repro.validate.seeds import derive_seed


class WorkerCrashed(Exception):
    """Inline-transport stand-in for a worker process dying mid-batch."""

    def __init__(self, mode: str) -> None:
        super().__init__(f"saboteur fired ({mode})")
        self.mode = mode


@dataclass(frozen=True)
class CrashPlan:
    """Per-fleet sabotage schedule derived from one ``seed:profile`` spec."""

    seed: int
    crash_ops: int
    wedge_frac: float

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["CrashPlan"]:
        """Build from an ``--inject`` spec; None when sabotage is off."""
        if not spec:
            return None
        plan: FaultPlan = parse_inject(spec)
        if plan.profile.worker_crash_ops <= 0:
            return None
        return cls(
            seed=plan.seed,
            crash_ops=plan.profile.worker_crash_ops,
            wedge_frac=plan.profile.worker_wedge_frac,
        )

    def to_wire(self) -> Dict[str, Any]:
        return {"seed": self.seed, "crash_ops": self.crash_ops,
                "wedge_frac": self.wedge_frac}

    @classmethod
    def from_wire(cls, wire: Optional[Dict[str, Any]]) -> Optional["CrashPlan"]:
        if wire is None:
            return None
        return cls(**wire)

    def draw(self, worker_id: int, generation: int
             ) -> Optional[Tuple[str, int]]:
        """(mode, countdown) for one worker generation, or None.

        Generation 0 only; countdown is uniform in
        ``[crash_ops//2, crash_ops + crash_ops//2]`` so shard crash
        points interleave instead of firing in lockstep.
        """
        if generation > 0:
            return None
        rng = random.Random(
            derive_seed(self.seed, f"papid:worker:{worker_id}:{generation}")
        )
        half = max(1, self.crash_ops // 2)
        countdown = rng.randint(half, self.crash_ops + half)
        mode = "wedge" if rng.random() < self.wedge_frac else "die"
        return mode, countdown

    def saboteur(self, worker_id: int, generation: int,
                 inline: bool = False) -> Optional["Saboteur"]:
        drawn = self.draw(worker_id, generation)
        if drawn is None:
            return None
        mode, countdown = drawn
        return Saboteur(mode=mode, countdown=countdown, inline=inline)


class Saboteur:
    """Counts fresh ops; fires once when the countdown reaches zero."""

    def __init__(self, mode: str, countdown: int, inline: bool = False
                 ) -> None:
        self.mode = mode
        self.countdown = countdown
        self.inline = inline
        self.fired = False

    def tick(self) -> None:
        """Called once per freshly-executed batch op (not on replays)."""
        if self.fired:
            return
        self.countdown -= 1
        if self.countdown > 0:
            return
        self.fired = True
        if self.inline:
            raise WorkerCrashed(self.mode)
        if self.mode == "wedge":
            import time
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600)
        import os
        os._exit(3)  # pragma: no cover - exits the worker process

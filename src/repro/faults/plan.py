"""Fault plans: what to inject, how often, reproducibly.

A :class:`FaultProfile` is a named bundle of per-kind rates and
parameters; a :class:`FaultPlan` pairs a profile with a seed.  The
injector (:mod:`repro.faults.injector`) consumes the plan and derives
every fault decision from one ``random.Random(seed)`` stream, so the
fault schedule is a pure function of ``(seed, profile, program)`` --
identical across runs, and identical whether the block execution engine
is on or off (the engine is bit-exact, so the substrate op stream the
injector observes is the same either way).

Profiles are addressed by name (``papirun --inject SEED:PROFILE``,
``REPRO_FAULT_PROFILE=SEED:PROFILE``) so a failing chaos run is
reproducible from its one-line description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FaultProfile:
    """Per-kind injection rates and parameters.

    Rates are probabilities per *opportunity*: substrate counter ops for
    ``esys_rate``/``loss_rate``/``corrupt_rate``, due interrupt
    deliveries for ``irq_drop_rate``/``irq_delay_rate``, timer re-arms
    for ``jitter_frac``.
    """

    name: str
    #: transient PAPI_ESYS on gated substrate calls.
    esys_rate: float = 0.0
    #: consecutive failures per triggered transient fault; keep below the
    #: retry policy's max_retries for recoverable profiles.
    esys_burst: int = 1
    #: counter theft (PAPI_ECLOST) per read/stop opportunity.
    loss_rate: float = 0.0
    #: gated substrate ops before a stolen counter is released.
    loss_hold_ops: int = 6
    #: dropped overflow-interrupt deliveries.
    irq_drop_rate: float = 0.0
    #: delayed overflow-interrupt deliveries ...
    irq_delay_rate: float = 0.0
    #: ... by up to this many extra skid instructions.
    irq_delay_max: int = 16
    #: counter-value corruption (wild wrap) per read/stop.
    corrupt_rate: float = 0.0
    #: multiplex-timer jitter as a fraction of the programmed period.
    jitter_frac: float = 0.0
    #: papid saboteur (:mod:`repro.daemon.crash`): mean batch-ops a
    #: first-generation daemon worker survives before its saboteur
    #: fires.  0 disables worker sabotage; the substrate-level injector
    #: ignores these two fields entirely.
    worker_crash_ops: int = 0
    #: fraction of saboteur firings that wedge (hang) the worker rather
    #: than kill it outright; supervision must detect both.
    worker_wedge_frac: float = 0.0

    @property
    def inert(self) -> bool:
        return not any((
            self.esys_rate, self.loss_rate, self.irq_drop_rate,
            self.irq_delay_rate, self.corrupt_rate, self.jitter_frac,
            self.worker_crash_ops,
        ))


PROFILES: Dict[str, FaultProfile] = {
    p.name: p
    for p in (
        FaultProfile("none"),
        FaultProfile("transient", esys_rate=0.05, esys_burst=1),
        FaultProfile("loss", loss_rate=0.03, loss_hold_ops=6),
        FaultProfile("irq", irq_drop_rate=0.10, irq_delay_rate=0.20,
                     irq_delay_max=16),
        FaultProfile("corrupt", corrupt_rate=0.05),
        FaultProfile("jitter", jitter_frac=0.30),
        FaultProfile("chaos", esys_rate=0.03, esys_burst=1,
                     loss_rate=0.02, loss_hold_ops=6,
                     irq_drop_rate=0.05, irq_delay_rate=0.10,
                     irq_delay_max=16, corrupt_rate=0.02,
                     jitter_frac=0.20),
        # daemon-level chaos: worker processes die or wedge mid-batch
        # while their sessions also absorb a light transient-fault load.
        # Consumed by repro.daemon (worker_* fields) and by each
        # session's own injector (esys_* fields).
        FaultProfile("daemon-chaos", esys_rate=0.01, esys_burst=1,
                     worker_crash_ops=40, worker_wedge_frac=0.25),
    )
}


def profile(name: str) -> FaultProfile:
    """Look up a named profile; raises ValueError for unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; known: {sorted(PROFILES)}"
        ) from None


@dataclass(frozen=True)
class FaultPlan:
    """A fully reproducible fault schedule: one seed, one profile."""

    seed: int
    profile: FaultProfile

    @property
    def spec(self) -> str:
        """The ``seed:profile`` string that reproduces this plan."""
        return f"{self.seed}:{self.profile.name}"


def parse_inject(spec: str) -> FaultPlan:
    """Parse a ``seed:profile`` spec (``'2718:chaos'``) into a plan.

    A bare profile name is accepted with a default seed of 0, so
    ``--inject loss`` works for quick experiments; the canonical
    round-trippable form always carries the seed.
    """
    text = spec.strip()
    if not text:
        raise ValueError("empty fault-injection spec")
    seed_part, sep, name_part = text.partition(":")
    if not sep:
        return FaultPlan(seed=0, profile=profile(seed_part))
    try:
        seed = int(seed_part)
    except ValueError:
        raise ValueError(
            f"bad fault-injection seed {seed_part!r} in {spec!r} "
            f"(expected 'seed:profile', e.g. '2718:chaos')"
        ) from None
    return FaultPlan(seed=seed, profile=profile(name_part))

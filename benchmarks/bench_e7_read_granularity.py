"""E7: counter-read overhead vs instrumentation granularity (Section 4).

Paper claim: "the overhead of library calls to read the hardware
counters can be excessive if the routines are called frequently -- for
example, on entry and exit of a small subroutine or basic block within a
tight loop.  Unacceptable overhead has caused some tool developers to
reduce the number of calls through statistical sampling techniques."

Reproduction: a fixed amount of total work is split across functions of
varying size (from tiny 8-iteration bodies to large 512-iteration
bodies), each instrumented at entry/exit with a PAPI probe; overhead is
real-cycle dilation versus the uninstrumented run, per substrate.
"""

from _shared import emit, run_once
from repro.analysis import Table, overhead_pct
from repro.core.library import Papi
from repro.platforms import DIRECT_PLATFORMS, create
from repro.tools.dynaprof import Dynaprof, PapiProbe
from repro.workloads import phased

TOTAL_ITERS = 8192
BODY_SIZES = [8, 32, 128, 512]  # fp iterations per function call
PROBE_EVENTS = ["PAPI_TOT_CYC", "PAPI_TOT_INS"]


def app(body_iters: int):
    calls = TOTAL_ITERS // body_iters
    return phased([("fp", body_iters)], repeats=calls, use_fma=False)


def overhead_for(platform: str, body_iters: int) -> float:
    baseline = create(platform)
    baseline.machine.load(app(body_iters).program)
    baseline.machine.run_to_completion()
    base = baseline.machine.real_cycles

    sub = create(platform)
    papi = Papi(sub)
    dyn = Dynaprof(sub, papi)
    dyn.load(app(body_iters))
    dyn.add_probe(PapiProbe(papi, PROBE_EVENTS))
    dyn.instrument(functions=["phase_0"])
    dyn.run()
    return overhead_pct(sub.machine.real_cycles, base)


def run_experiment():
    return {
        platform: [overhead_for(platform, b) for b in BODY_SIZES]
        for platform in DIRECT_PLATFORMS
    }


def bench_e7_read_granularity(benchmark, capsys):
    results = run_once(benchmark, run_experiment)

    table = Table(
        ["platform"] + [f"{b}-iter body %" for b in BODY_SIZES],
        title=f"E7: entry/exit read overhead vs function size "
              f"({TOTAL_ITERS} total iterations, 2 reads per call)",
    )
    for platform, overheads in results.items():
        table.add_row(platform, *[round(o, 2) for o in overheads])
    emit(capsys, table.render())

    for platform, overheads in results.items():
        # coarser granularity always costs less
        assert overheads == sorted(overheads, reverse=True), platform
    # the syscall substrate at the finest granularity is "excessive"
    assert results["simX86"][0] > 100.0
    # and still expensive at moderate granularity
    assert results["simX86"][1] > 30.0
    # the register substrate is an order of magnitude cheaper than the
    # kernel-patch syscalls at every granularity...
    for x86, t3e in zip(results["simX86"], results["simT3E"]):
        assert t3e * 5 < x86
    # ...and becomes negligible once functions are reasonably sized
    assert results["simT3E"][-1] < 2.0

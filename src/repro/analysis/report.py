"""ASCII table / sparkline rendering shared by benchmarks and tools."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]

_SPARK_CHARS = " .:-=+*#%@"


def format_cell(value: Cell, float_fmt: str = "{:.3g}") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


class Table:
    """Minimal fixed-width ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = "",
                 float_fmt: str = "{:.3g}") -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []
        self.float_fmt = float_fmt

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([format_cell(c, self.float_fmt) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append(fmt_row(["-" * w for w in widths]))
        for row in self.rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render *values* as a one-line ASCII intensity strip."""
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        # average-pool down to the requested width
        pooled = []
        step = len(values) / width
        for i in range(width):
            lo = int(i * step)
            hi = max(lo + 1, int((i + 1) * step))
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    lo, hi = min(values), max(values)
    span = hi - lo
    out = []
    for v in values:
        frac = 0.0 if span == 0 else (v - lo) / span
        idx = min(len(_SPARK_CHARS) - 1, int(frac * (len(_SPARK_CHARS) - 1) + 0.5))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def ascii_plot(
    series: Sequence[float],
    height: int = 8,
    width: int = 64,
    label: str = "",
) -> str:
    """Multi-line ASCII plot of one series (used by perfometer, E9)."""
    if not series:
        return "(empty series)"
    # pool to width
    if len(series) > width:
        pooled = []
        step = len(series) / width
        for i in range(width):
            lo = int(i * step)
            hi = max(lo + 1, int((i + 1) * step))
            chunk = series[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        series = pooled
    lo, hi = min(series), max(series)
    span = hi - lo or 1.0
    grid = [[" "] * len(series) for _ in range(height)]
    for x, v in enumerate(series):
        level = int((v - lo) / span * (height - 1) + 0.5)
        for y in range(level + 1):
            grid[height - 1 - y][x] = "#" if y == level else "|"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"max {hi:.4g}")
    lines.extend("".join(row) for row in grid)
    lines.append(f"min {lo:.4g}")
    return "\n".join(lines)

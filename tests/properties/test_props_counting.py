"""Property-based tests: PAPI counting invariants across random workloads."""

from hypothesis import given, settings, strategies as st

from repro.core.library import Papi
from repro.platforms import create
from repro.workloads import dot, phased


class TestCountingProperties:
    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_fp_ops_linear_in_n(self, n):
        sub = create("simPOWER")
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        sub.machine.load(dot(n, use_fma=True).program)
        es.start()
        sub.machine.run_to_completion()
        assert es.stop() == [2 * n]

    @given(st.integers(min_value=1, max_value=200),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_fp_ops_invariant_under_fma_choice(self, n, use_fma):
        """FP_OPS is codegen-independent: same flops either way."""
        sub = create("simIA64")
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        sub.machine.load(dot(n, use_fma=use_fma).program)
        es.start()
        sub.machine.run_to_completion()
        assert es.stop() == [2 * n]

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_read_monotone_while_running(self, n):
        sub = create("simT3E")
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        sub.machine.load(dot(max(n, 50), use_fma=False).program)
        es.start()
        prev = 0
        while not sub.machine.cpu.halted:
            sub.machine.run(max_instructions=37)
            cur = es.read()[0]
            assert cur >= prev
            prev = cur
        es.stop()

    @given(st.integers(min_value=2, max_value=100),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_accumulate_equals_single_measurement(self, n, pieces):
        """Sum of accum() pieces == one uninterrupted stop() measurement."""
        wl_a = phased([("fp", n)], repeats=pieces)
        sub1 = create("simPOWER")
        papi1 = Papi(sub1)
        es1 = papi1.create_eventset()
        es1.add_named("PAPI_FP_OPS")
        sub1.machine.load(wl_a.program)
        es1.start()
        sub1.machine.run_to_completion()
        single = es1.stop()[0]

        wl_b = phased([("fp", n)], repeats=pieces)
        sub2 = create("simPOWER")
        papi2 = Papi(sub2)
        es2 = papi2.create_eventset()
        es2.add_named("PAPI_FP_OPS")
        sub2.machine.load(wl_b.program)
        es2.start()
        acc = [0]
        while not sub2.machine.cpu.halted:
            sub2.machine.run(max_instructions=53)
            acc = es2.accum(acc)
        final = es2.stop()[0]
        assert acc[0] + final == single

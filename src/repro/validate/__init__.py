"""papi-validate: conformance & accuracy harness for the whole stack.

The paper's central "lessons learned" are about *trusting the numbers*:
per-platform event-semantics drift (the POWER3 rounding-instruction
discrepancy), API overhead and measurement perturbation, multiplexed
estimates that are wrong on short runs, and profiling attribution skid
on out-of-order CPUs.  Real PAPI ships ``papi_cost`` and a validation
suite for exactly this reason; this package is their analogue over the
simulated platforms.

The planes, aggregated into one conformance matrix
(:mod:`repro.validate.matrix`, CLI verb ``validate``):

- **oracle** (:mod:`repro.validate.oracle`,
  :mod:`repro.validate.conformance`): an independent reference
  interpreter derives exact expected counts for every architecturally
  determined signal; hardware counts, preset translations and
  attached/SMP-virtualized reads are checked cell by cell against it;
- **components** (:mod:`repro.validate.components`): mixed
  CPU/uncore/energy EventSets checked clause by clause -- CPU members
  against the oracle, uncore bandwidth against oracle store counts,
  energy parts against their closed forms and their package sum, and
  the uncore bank's within-component rotation / capacity refusal;
- **cost** (:mod:`repro.validate.cost`): the ``papi_cost`` analogue --
  start/read/reset/stop overhead in simulated cycles per substrate,
  checked against each substrate's published
  :class:`~repro.platforms.base.AccessCosts` model, plus the retry
  ladder's billed cycles under fault injection;
- **convergence** (:mod:`repro.validate.convergence`): multiplexed runs
  swept across runtime lengths, per-event relative-error-vs-duration
  curves, flagging the short-run hazard of Section 3;
- **skid** (:mod:`repro.validate.skid`): ``PAPI_profil`` attribution
  accuracy per substrate skid model, contrasting precise sampling
  (simALPHA's ProfileMe) with interrupt-pc profiling on out-of-order
  cores;
- **refute** (:mod:`repro.refute`): the adversarial inversion of the
  oracle plane -- seeded generated micro-programs hunt for
  model/measurement disagreements across substrates, engine tiers and
  CPU counts, shrinking any hit to a minimal reproducer.

Every plane's randomness hangs off one master ``--seed`` through
:func:`repro.validate.seeds.derive_seed` (labels ``plane:<name>``), so
a matrix run is pinned by a single documented integer.
"""

from repro.validate.components import run_components_plane
from repro.validate.conformance import run_oracle_plane, run_virtualization_plane
from repro.validate.convergence import run_convergence_plane
from repro.validate.cost import run_cost_plane
from repro.validate.matrix import ConformanceMatrix, run_all
from repro.validate.seeds import derive_seed
from repro.validate.oracle import (
    ORACLE_SIGNALS,
    OracleError,
    expected_preset_values,
    expected_signal_counts,
)
from repro.validate.skid import run_skid_plane

__all__ = [
    "ORACLE_SIGNALS",
    "OracleError",
    "ConformanceMatrix",
    "derive_seed",
    "expected_preset_values",
    "expected_signal_counts",
    "run_all",
    "run_components_plane",
    "run_convergence_plane",
    "run_cost_plane",
    "run_oracle_plane",
    "run_skid_plane",
    "run_virtualization_plane",
]

"""Shared fixtures and hypothesis profiles for the test suite.

Hypothesis profiles (select with ``HYPOTHESIS_PROFILE=<name>`` or the
``REPRO_PROPERTY_EXAMPLES=<n>`` scale knob):

- ``ci`` (default): fully deterministic -- ``derandomize=True`` plus a
  fixed database-free configuration, so a property failure on one CI
  run reproduces identically on every re-run and on every machine;
- ``thorough``: the same determinism at ``REPRO_PROPERTY_EXAMPLES``
  examples per property (default 500) -- the separate CI property job
  runs this; suites tag their own per-test ``max_examples`` lower
  bounds via ``@settings`` as usual.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.hw import Assembler, Machine
from repro.hw.machine import MachineConfig
from repro.platforms import PLATFORM_NAMES, create

_EXAMPLES = int(os.environ.get("REPRO_PROPERTY_EXAMPLES", "0") or 0)

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile(
    "thorough",
    derandomize=True,
    deadline=None,
    max_examples=_EXAMPLES if _EXAMPLES > 0 else 500,
    print_blob=True,
)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "thorough" if _EXAMPLES > 0 else "ci"
    )
)


@pytest.fixture
def machine() -> Machine:
    """A default machine (generic config, 4 counters, no sampling hw)."""
    return Machine(MachineConfig())


@pytest.fixture
def fma_loop_program():
    """1000-iteration FMA/store loop with exactly known counts."""
    asm = Assembler(name="fma_loop")
    asm.func("main")
    asm.li("r1", 1000)
    asm.li("r2", 0)
    base = asm.reserve_data(2048)
    asm.li("r3", base)
    asm.fli("f1", 1.5)
    asm.fli("f2", 2.0)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f3")
    asm.fstore("f3", "r3", 0)
    asm.addi("r3", "r3", 1)
    asm.addi("r2", "r2", 1)
    asm.blt("r2", "r1", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


def _platform_fixture(name):
    @pytest.fixture(name=name.lower())
    def fixture():
        return create(name)

    return fixture


# one fixture per platform
simt3e = _platform_fixture("simT3E")
simx86 = _platform_fixture("simX86")
simpower = _platform_fixture("simPOWER")
simalpha = _platform_fixture("simALPHA")
simia64 = _platform_fixture("simIA64")
simsparc = _platform_fixture("simSPARC")


@pytest.fixture(params=PLATFORM_NAMES)
def any_platform(request):
    """Parametrized over every platform (fresh substrate each)."""
    return create(request.param)


@pytest.fixture(
    params=["simT3E", "simX86", "simPOWER", "simIA64", "simSPARC"]
)
def direct_platform(request):
    """Parametrized over the direct-counting platforms."""
    return create(request.param)

"""The SMP scheduler: threads, time slices, migration, counter virtualization.

This is the piece that makes PAPI's "per-thread counts" story work (the
paper's Tru64 discussion: the original aggregate interface could not do
per-thread counting; DADD added it).  Counters bound to a thread run
physically only while that thread occupies a CPU; the scheduler
pauses/resumes them around every context switch and charges a context
switch cost to the machine's system clock.

With ``MachineConfig.ncpus > 1`` the scheduler dispatches ready threads
across all CPUs round-robin, preferring each thread's last CPU (affinity
hint) and migrating when a CPU would otherwise idle.  Because every CPU
has a private PMU, a migrated thread's counters are *re-homed*: the
source PMU exports each bound counter (value, programming, overflow
watch with its remaining headroom -- see
:meth:`repro.hw.pmu.PMU.export_counter`) and the destination imports it,
so virtual counts survive any placement history exactly.  On a
single-CPU machine no migration ever happens and scheduling is bit-exact
with the historical round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hw.cpu import RunResult
from repro.hw.isa import Program
from repro.hw.machine import Machine
from repro.simos.signals import SignalRouter
from repro.simos.thread import Thread, ThreadState
from repro.simos.vmem import MemoryAccounting, MemoryInfo


class OSError_(Exception):
    """Raised for scheduler misuse (OS-level errors)."""


@dataclass
class SchedulerStats:
    context_switches: int = 0
    slices: int = 0
    idle_dispatches: int = 0
    #: instructions retired through the CPUs' block engines across all
    #: slices (0 when the engine is disabled); replayed_instructions is
    #: the subset applied as bulk steady-loop replay.
    engine_instructions: int = 0
    engine_replayed: int = 0
    #: the subset of engine_instructions retired inside compiled
    #: multi-block regions (trace tier only; 0 at lower tiers).
    engine_region_instructions: int = 0
    #: dispatches that moved a thread to a different CPU than its last.
    migrations: int = 0
    #: bound counters re-homed between per-CPU PMUs.
    counter_migrations: int = 0
    #: per-CPU slice and busy-cycle tallies (index = CPU index).
    cpu_slices: List[int] = field(default_factory=list)
    cpu_busy_cycles: List[int] = field(default_factory=list)

    @property
    def makespan_cycles(self) -> int:
        """Parallel wall-clock estimate: the busiest CPU's cycle tally.

        The simulator executes slices sequentially, so the SMP wall
        clock is reconstructed as the maximum per-CPU busy time (every
        CPU runs independently between shared-cache interactions).
        """
        return max(self.cpu_busy_cycles, default=0)


class OS:
    """Multiplexes threads onto the CPUs of one :class:`Machine`.

    Typical use::

        os_ = OS(machine, quantum_cycles=20_000)
        t1 = os_.spawn(program_a)
        t2 = os_.spawn(program_b)
        os_.run()          # until every thread halts
    """

    def __init__(
        self,
        machine: Machine,
        quantum_cycles: int = 20_000,
        ctx_switch_cost: int = 400,
        phys_pages: int = 4096,
    ) -> None:
        if quantum_cycles < 1:
            raise OSError_("quantum must be at least one cycle")
        if ctx_switch_cost < 0:
            raise OSError_("context switch cost cannot be negative")
        self.machine = machine
        self.ncpus = machine.config.ncpus
        self.quantum_cycles = quantum_cycles
        self.ctx_switch_cost = ctx_switch_cost
        self.threads: List[Thread] = []
        self.signals = SignalRouter()
        self.vmem = MemoryAccounting(
            page_bytes=machine.hierarchy.config.tlb.page_bytes,
            total_pages=phys_pages,
        )
        self.stats = SchedulerStats(
            cpu_slices=[0] * self.ncpus,
            cpu_busy_cycles=[0] * self.ncpus,
        )
        self._next_tid = 1
        self._current: Optional[Thread] = None
        self._rr_index = 0
        self._cpu_rr = 0

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------

    def spawn(
        self, program: Program, name: Optional[str] = None, heap_words: int = 0
    ) -> Thread:
        thread = Thread.create(self._next_tid, program, name=name, heap_words=heap_words)
        self._next_tid += 1
        self.threads.append(thread)
        return thread

    @property
    def current(self) -> Optional[Thread]:
        return self._current

    def thread_by_tid(self, tid: int) -> Thread:
        for t in self.threads:
            if t.tid == tid:
                return t
        raise OSError_(f"no thread with tid {tid}")

    def ready_threads(self) -> List[Thread]:
        return [t for t in self.threads if t.state is ThreadState.READY]

    def all_finished(self) -> bool:
        return all(t.finished for t in self.threads)

    # ------------------------------------------------------------------
    # counter virtualization (used by the PAPI attach path)
    # ------------------------------------------------------------------

    def _pmu(self, cpu_index: int):
        return self.machine.cpus[cpu_index].pmu

    def _check_cpu(self, cpu: int) -> int:
        if not 0 <= cpu < self.ncpus:
            raise OSError_(
                f"cpu {cpu} out of range (machine has {self.ncpus})"
            )
        return cpu

    def bind_counter(self, thread: Thread, index: int,
                     cpu: int = 0) -> None:
        """Virtualize PMU counter *index* to *thread* (stopped initially).

        A counter index can be bound to at most one thread machine-wide:
        the index names the same register on every per-CPU PMU, and the
        register must be free wherever the thread may be dispatched.
        *cpu* is the counter's initial home -- the PMU whose register
        currently holds its programming (CPU 0 for the classic path).
        """
        for t in self.threads:
            if index in t.bound_counters and t is not thread:
                raise OSError_(
                    f"counter {index} is already bound to thread {t.tid}"
                )
        thread.bind_counter(index, home=self._check_cpu(cpu))

    def unbind_counter(self, thread: Thread, index: int) -> None:
        if thread.bound_counters.get(index) and thread.state is ThreadState.RUNNING:
            self._pmu(thread.counter_home[index]).stop(index)
        thread.unbind_counter(index)

    def force_release_thread_counters(self, thread: Thread) -> None:
        """Best-effort unbind of every counter bound to *thread*.

        The shutdown/emergency path: a misbehaving client (or a faulted
        run) can leave attached counters bound, and releasing them must
        never fail -- physical-stop errors are swallowed and the binding
        dropped regardless, so a second shutdown finds nothing to do.
        """
        for index in list(thread.bound_counters):
            try:
                self.unbind_counter(thread, index)
            except Exception:
                thread.unbind_counter(index)

    def counter_start(self, thread: Thread, index: int) -> None:
        """Logically start a bound counter; physical start if on CPU."""
        if index not in thread.bound_counters:
            raise OSError_(f"counter {index} is not bound to thread {thread.tid}")
        if thread.bound_counters[index]:
            raise OSError_(f"counter {index} is already started")
        thread.bound_counters[index] = True
        if thread.state is ThreadState.RUNNING:
            assert thread.cpu is not None
            self._migrate_counter(thread, index, thread.cpu)
            self._pmu(thread.cpu).start(index)

    def counter_stop(self, thread: Thread, index: int) -> int:
        if not thread.bound_counters.get(index, False):
            raise OSError_(f"counter {index} is not running for thread {thread.tid}")
        thread.bound_counters[index] = False
        home = thread.counter_home[index]
        if thread.state is ThreadState.RUNNING:
            return self._pmu(home).stop(index)
        # descheduled: the counter is already physically stopped on its
        # home PMU; its accumulated value is the thread's virtual count.
        return self._pmu(home).read(index)

    def counter_value(self, thread: Thread, index: int) -> int:
        """Peek a bound counter's current virtual count (no state change)."""
        if index not in thread.bound_counters:
            raise OSError_(f"counter {index} is not bound to thread {thread.tid}")
        return self._pmu(thread.counter_home[index]).read(index)

    def _migrate_counter(self, thread: Thread, index: int,
                         dest: int) -> None:
        """Re-home one bound counter's physical state onto CPU *dest*."""
        home = thread.counter_home[index]
        if home == dest:
            return
        snap = self._pmu(home).export_counter(index)
        self._pmu(dest).import_counter(index, snap)
        thread.counter_home[index] = dest
        self.stats.counter_migrations += 1

    def _migrate_counters(self, thread: Thread, dest: int) -> None:
        for index in thread.bound_counters:
            self._migrate_counter(thread, index, dest)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _dispatch(self, thread: Thread, cpu_index: int) -> None:
        if thread.last_cpu is not None and thread.last_cpu != cpu_index:
            thread.migrations += 1
            self.stats.migrations += 1
        self._migrate_counters(thread, cpu_index)
        cpu = self.machine.cpus[cpu_index]
        cpu.restore_context(thread.context)
        self.signals.current_tid = thread.tid
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu_index
        thread.dispatches += 1
        pmu = cpu.pmu
        for index, running in thread.bound_counters.items():
            if running and not pmu.running(index):
                # plain start (not import) when already home: preserves
                # partial progress toward an armed overflow threshold
                # across the descheduled gap, like real virtualization.
                pmu.start(index)

    def _deschedule(self, thread: Thread, result: RunResult) -> None:
        assert thread.cpu is not None
        cpu = self.machine.cpus[thread.cpu]
        pmu = cpu.pmu
        for index, running in thread.bound_counters.items():
            if running and pmu.running(index):
                pmu.stop(index)
        thread.context = cpu.save_context()
        thread.user_cycles += result.cycles
        thread.last_cpu = thread.cpu
        thread.cpu = None
        thread.state = (
            ThreadState.FINISHED if result.halted else ThreadState.READY
        )
        self.signals.current_tid = None
        self._current = None

    def run_slice(
        self,
        thread: Thread,
        max_cycles: Optional[int] = None,
        cpu: Optional[int] = None,
    ) -> RunResult:
        """Run one time slice of *thread* and context-switch away again.

        *cpu* pins the slice to a CPU; default is the thread's last CPU
        (CPU 0 for a never-run thread) -- the affinity hint.
        """
        if thread.state is not ThreadState.READY:
            raise OSError_(f"thread {thread.tid} is not ready ({thread.state.value})")
        cpu_index = (
            self._check_cpu(cpu) if cpu is not None
            else (thread.last_cpu if thread.last_cpu is not None else 0)
        )
        self._current = thread
        self._dispatch(thread, cpu_index)
        machine_cpu = self.machine.cpus[cpu_index]
        est = machine_cpu.engine_stats()
        fast0 = est.fast_instructions if est is not None else 0
        replay0 = est.replayed_instructions if est is not None else 0
        region0 = est.region_instructions if est is not None else 0
        result = machine_cpu.run(
            max_cycles=max_cycles if max_cycles is not None else self.quantum_cycles
        )
        if est is not None:
            self.stats.engine_instructions += est.fast_instructions - fast0
            self.stats.engine_replayed += est.replayed_instructions - replay0
            self.stats.engine_region_instructions += (
                est.region_instructions - region0
            )
        self._deschedule(thread, result)
        self.machine.charge(self.ctx_switch_cost, cpu=cpu_index)
        self.stats.context_switches += 1
        self.stats.slices += 1
        self.stats.cpu_slices[cpu_index] += 1
        self.stats.cpu_busy_cycles[cpu_index] += result.cycles + self.ctx_switch_cost
        self.vmem.update(self.threads)
        return result

    def _pick_thread(self, ready: List[Thread], cpu_index: int) -> Thread:
        """Round-robin with an affinity preference.

        Starting from the round-robin cursor, the first ready thread
        whose last CPU is *cpu_index* (or that never ran) wins; if every
        ready thread is affine elsewhere, the cursor's thread migrates
        rather than leaving the CPU idle.  On a single-CPU machine the
        affinity test always passes, reducing to the classic round-robin.
        """
        n = len(ready)
        start = self._rr_index % n
        self._rr_index += 1
        for off in range(n):
            t = ready[(start + off) % n]
            if t.last_cpu is None or t.last_cpu == cpu_index:
                return t
        return ready[start]

    def run(
        self,
        max_total_cycles: Optional[int] = None,
        max_slices: Optional[int] = None,
    ) -> SchedulerStats:
        """Dispatch ready threads across all CPUs until everything halts.

        CPUs take turns slice-by-slice (the simulator itself is
        sequential); thread choice per CPU is affinity-preferring
        round-robin, so with one CPU this is exactly the historical
        scheduler.
        """
        start_cycles = self.machine.real_cycles
        slices = 0
        while True:
            ready = self.ready_threads()
            if not ready:
                break
            if max_slices is not None and slices >= max_slices:
                break
            if (
                max_total_cycles is not None
                and self.machine.real_cycles - start_cycles >= max_total_cycles
            ):
                break
            cpu_index = self._cpu_rr % self.ncpus
            self._cpu_rr += 1
            thread = self._pick_thread(ready, cpu_index)
            self.run_slice(thread, cpu=cpu_index)
            slices += 1
        return self.stats

    # ------------------------------------------------------------------
    # time & memory services
    # ------------------------------------------------------------------

    def real_cycles(self) -> int:
        return self.machine.real_cycles

    def virt_cycles(self, thread: Thread) -> int:
        """Thread-virtual cycles, including the live slice if running."""
        if thread.state is ThreadState.RUNNING:
            # context was saved at dispatch time; add the live delta
            return thread.user_cycles  # updated at deschedule; see note
        return thread.user_cycles

    def memory_info(self, thread: Thread) -> MemoryInfo:
        return self.vmem.info(thread, self.threads)

"""Model-mutant catalogue for the sensitivity gate.

"Zero refutations" on the clean substrates is only evidence if the
harness demonstrably *can* refute: these mutants each perturb one
documented-model constant -- an access cost, the L1I line width, a
preset signal vector -- in exactly the way real documentation drifts
(the paper's Section 4 POWER3 ``PM_FPU_INS`` convert-counting
discrepancy was such a drift, found by hand).  The sensitivity tests
(``tests/refute/test_sensitivity.py``) run the engine with each mutant
model against the *unmodified* machine and require a refutation at the
committed seed/budget; a mutant that survives means the harness has a
blind spot and the gate fails.

Mutants are test infrastructure: the engine's ``models`` override hook
accepts them, but no CLI path exposes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.hw.events import Signal
from repro.refute.predictor import SubstrateModel

__all__ = ["MUTANTS", "ModelMutant"]


@dataclass(frozen=True)
class ModelMutant:
    """One deliberate documentation error, as a model transformer."""

    name: str
    platform: str
    #: the generator assumption tag that can expose this mutant; the
    #: sensitivity gate checks the committed corpus exercises it.
    assumption: str
    description: str
    apply: Callable[[SubstrateModel], SubstrateModel]

    def mutate(self, model: SubstrateModel) -> SubstrateModel:
        if model.platform != self.platform:
            raise ValueError(
                f"mutant {self.name} targets {self.platform}, "
                f"got {model.platform}"
            )
        return self.apply(model)


def _t3e_read_cost(model: SubstrateModel) -> SubstrateModel:
    # Claim the register read costs 2 cycles more than it does: the
    # documented AccessCosts disagree with the measured interface deltas.
    return model.with_costs(read=model.costs.read + 2)


def _x86_fetch_line(model: SubstrateModel) -> SubstrateModel:
    # Halve the documented L1I line width (an off-by-one in line_bits):
    # predicted fetch-line transitions now overcount every straight-line
    # run longer than 16 bytes.
    return model.with_line_bytes(model.l1i_line_bytes // 2)


def _power_fpu_drops_cvt(model: SubstrateModel) -> SubstrateModel:
    # Undocument the POWER3 quirk: pretend PM_FPU_INS does NOT count
    # precision converts.  Any program with an fp_cvt refutes this --
    # the exact discrepancy Section 4 reports finding the hard way.
    quirky = model.native_signals["PM_FPU_INS"]
    return model.with_native_signals(
        "PM_FPU_INS",
        tuple(s for s in quirky if s != Signal.FP_CVT),
    )


def _t3e_ld_st_swap(model: SubstrateModel) -> SubstrateModel:
    # Mis-map the load event onto the store signal: refuted by any
    # program whose load and store counts differ.
    return model.with_native_signals("LD_QW", (Signal.SR_INS,))


MUTANTS: Tuple[ModelMutant, ...] = (
    ModelMutant(
        name="t3e-read-cost",
        platform="simT3E",
        assumption="cost-model",
        description="simT3E documented read cost inflated by 2 cycles",
        apply=_t3e_read_cost,
    ),
    ModelMutant(
        name="x86-fetch-line",
        platform="simX86",
        assumption="fetch-geometry",
        description="simX86 documented L1I line width halved (32 -> 16B)",
        apply=_x86_fetch_line,
    ),
    ModelMutant(
        name="power-fpu-drops-cvt",
        platform="simPOWER",
        assumption="preset-mapping",
        description="simPOWER PM_FPU_INS documented without FP_CVT",
        apply=_power_fpu_drops_cvt,
    ),
    ModelMutant(
        name="t3e-ld-st-swap",
        platform="simT3E",
        assumption="preset-mapping",
        description="simT3E LD_QW documented as counting stores",
        apply=_t3e_ld_st_swap,
    ),
)

"""Shared fixtures and hypothesis profiles for the test suite.

Hypothesis profiles (select with ``HYPOTHESIS_PROFILE=<name>`` or the
``REPRO_PROPERTY_EXAMPLES=<n>`` scale knob):

- ``ci`` (default): fully deterministic -- ``derandomize=True`` plus a
  fixed database-free configuration, so a property failure on one CI
  run reproduces identically on every re-run and on every machine;
- ``thorough``: the same determinism at ``REPRO_PROPERTY_EXAMPLES``
  examples per property (default 500) -- the separate CI property job
  runs this; suites tag their own per-test ``max_examples`` lower
  bounds via ``@settings`` as usual.

Fault injection (``REPRO_FAULT_PROFILE=<seed>:<profile>``): every
substrate built through :func:`repro.platforms.create` gets a
deterministic fault injector attached, so the whole suite runs under a
fixed chaos schedule (the CI chaos job sets ``97:transient``).  Unset,
substrates stay on the byte-identical clean path.  ``tests/faults`` and
the fault property machine scrub the knob locally because they seed
their own injectors.

Timeouts: the CI chaos job runs with ``pytest-timeout`` installed and
``--timeout=<s>``; when the plugin is absent (the default local
environment) a SIGALRM-based fallback below honours the same option so
a fault-wedged test still fails instead of hanging.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest
from hypothesis import settings

from repro.hw import Assembler, Machine
from repro.hw.machine import MachineConfig
from repro.platforms import PLATFORM_NAMES, create

_EXAMPLES = int(os.environ.get("REPRO_PROPERTY_EXAMPLES", "0") or 0)

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile(
    "thorough",
    derandomize=True,
    deadline=None,
    max_examples=_EXAMPLES if _EXAMPLES > 0 else 500,
    print_blob=True,
)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "thorough" if _EXAMPLES > 0 else "ci"
    )
)

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addoption(
            "--timeout",
            type=float,
            default=0,
            help="per-test timeout in seconds (SIGALRM fallback; install "
                 "pytest-timeout for the full implementation)",
        )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): per-test timeout override"
    )


@pytest.fixture(autouse=True)
def _sigalrm_timeout(request):
    """Poor man's pytest-timeout: arm SIGALRM around each test.

    Only active when the real plugin is missing, ``--timeout`` was
    given, and we are on the main thread of a platform with SIGALRM.
    """
    seconds = 0.0
    if not _HAVE_PYTEST_TIMEOUT:
        seconds = request.config.getoption("--timeout", default=0) or 0
        marker = request.node.get_closest_marker("timeout")
        if marker and marker.args:
            seconds = float(marker.args[0])
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:g}s timeout (--timeout)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def machine() -> Machine:
    """A default machine (generic config, 4 counters, no sampling hw)."""
    return Machine(MachineConfig())


@pytest.fixture
def fma_loop_program():
    """1000-iteration FMA/store loop with exactly known counts."""
    asm = Assembler(name="fma_loop")
    asm.func("main")
    asm.li("r1", 1000)
    asm.li("r2", 0)
    base = asm.reserve_data(2048)
    asm.li("r3", base)
    asm.fli("f1", 1.5)
    asm.fli("f2", 2.0)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f3")
    asm.fstore("f3", "r3", 0)
    asm.addi("r3", "r3", 1)
    asm.addi("r2", "r2", 1)
    asm.blt("r2", "r1", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


def _platform_fixture(name):
    @pytest.fixture(name=name.lower())
    def fixture():
        return create(name)

    return fixture


# one fixture per platform
simt3e = _platform_fixture("simT3E")
simx86 = _platform_fixture("simX86")
simpower = _platform_fixture("simPOWER")
simalpha = _platform_fixture("simALPHA")
simia64 = _platform_fixture("simIA64")
simsparc = _platform_fixture("simSPARC")


@pytest.fixture(params=PLATFORM_NAMES)
def any_platform(request):
    """Parametrized over every platform (fresh substrate each)."""
    return create(request.param)


@pytest.fixture(
    params=["simT3E", "simX86", "simPOWER", "simIA64", "simSPARC"]
)
def direct_platform(request):
    """Parametrized over the direct-counting platforms."""
    return create(request.param)

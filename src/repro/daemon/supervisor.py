"""papid supervisor: heartbeats, crash detection, recovery driver.

A single daemon thread owns fault *detection*; the *repair* logic lives
in :meth:`PapidServer.recover_shard` so tests can drive it directly.
Detection has two signals:

- **death** — the worker process exited (or the inline conn is marked
  dead).  Visible immediately through ``Shard.alive``; the submit path
  also trips it mid-batch (EOF on the pipe) and wakes the supervisor
  with :meth:`request_check` rather than waiting for the next period.
- **wedge** — the process is alive but stopped answering.  Between
  batches the supervisor sends a ping and allows ``wedge_timeout`` for
  the pong; a shard busy with a batch is skipped (traffic is its own
  heartbeat, and a *wedged* batch is caught by the submit deadline,
  which marks the shard suspect — also a wake-up).

Worst-case detection latency is therefore ``interval + wedge_timeout``
for an idle wedge and one deadline for a mid-batch one; the unit tests
in ``tests/daemon`` pin both bounds with shrunken timeouts.
"""

from __future__ import annotations

import threading


class Supervisor(threading.Thread):
    """Periodic shard health scan with on-demand wake-up."""

    def __init__(self, server, interval: float = 0.25,
                 wedge_timeout: float = 2.0) -> None:
        super().__init__(name="papid-supervisor", daemon=True)
        self.server = server
        self.interval = interval
        self.wedge_timeout = wedge_timeout
        self._wake = threading.Event()
        self._stopped = threading.Event()
        #: scan rounds completed (tests wait on this to bound latency).
        self.scans = 0

    def request_check(self) -> None:
        """Wake the supervisor now (a pipe just died mid-batch)."""
        self._wake.set()

    def stop(self) -> None:
        self._stopped.set()
        self._wake.set()
        if self.is_alive():
            self.join(timeout=10.0)

    def run(self) -> None:
        while not self._stopped.is_set():
            self._wake.wait(self.interval)
            self._wake.clear()
            if self._stopped.is_set():
                return
            self.scan_once()

    def scan_once(self) -> None:
        """One detection round: dead shards first, then wedge pings."""
        server = self.server
        for shard in list(server.shards):
            if self._stopped.is_set():
                return
            if not shard.alive:
                server.recover_shard(shard)
                continue
            if shard.suspect or not server.ping_shard(
                shard, self.wedge_timeout
            ):
                server.recover_shard(shard)
        self.scans += 1

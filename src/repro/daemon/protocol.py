"""papid wire protocol: session specs, ops, results, status codes.

The daemon (:mod:`repro.daemon.server`) and its workers exchange plain
picklable payloads over ``multiprocessing`` pipes; the same shapes are
used verbatim by the inline (in-process) transport, so tests and the
hypothesis stateful machine exercise exactly the wire the real service
speaks.

Status codes extend — without colliding with — the PAPI error space in
:mod:`repro.core.constants`.  Only two distinctions matter to clients:

- **transient** (``PAPID_EAGAIN``, ``PAPID_ESHED``): the op did not run
  (a shard is being recovered, or admission control shed it); re-issuing
  the same op later can succeed.  :func:`raise_for_result` maps these
  onto :class:`~repro.core.errors.SystemError_`, the taxonomy's
  canonical transient, so existing retry machinery applies unchanged.
- **fatal** (``PAPID_EDRAIN``, or a PAPI error code forwarded from the
  worker): retrying is pointless; the mapped exception from
  :func:`~repro.core.errors.error_for_code` is raised instead.

Every state-bearing op (``start``/``read``/``stop``) carries a
client-assigned per-session sequence number.  Delivery to a worker is
at-least-once (crashes and deadline expiries force re-sends); workers
dedupe on ``(sid, seq)`` and replay the cached result, which makes
execution exactly-once per worker generation — the keystone of both the
monotonicity and the bit-identical-replay guarantees (DESIGN.md, "Fleet
daemon & supervision").
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core import constants as C
from repro.core.errors import NotRunningError, SystemError_, error_for_code

# ---------------------------------------------------------------------------
# status codes (disjoint from the PAPI_E* space, which is > -100)
# ---------------------------------------------------------------------------

PAPID_OK = 0
#: transient: shard crashed/wedged/recovering, or the RPC deadline
#: expired before the shard answered.  Retry with backoff.
PAPID_EAGAIN = -100
#: transient: admission control shed this op (lowest-priority first)
#: beyond the high-water mark.  Retry with backoff.
PAPID_ESHED = -101
#: fatal: the daemon is draining or drained; no new work is admitted.
PAPID_EDRAIN = -102
#: fatal: the worker raised; ``err_code`` carries the PAPI error code.
PAPID_EFATAL = -103

TRANSIENT_STATUSES = frozenset({PAPID_EAGAIN, PAPID_ESHED})

STATUS_NAMES = {
    PAPID_OK: "PAPID_OK",
    PAPID_EAGAIN: "PAPID_EAGAIN",
    PAPID_ESHED: "PAPID_ESHED",
    PAPID_EDRAIN: "PAPID_EDRAIN",
    PAPID_EFATAL: "PAPID_EFATAL",
}

#: op kinds a client may submit; ``adopt`` is supervisor-internal.
OP_KINDS = ("create", "start", "read", "stop", "destroy", "adopt")


# ---------------------------------------------------------------------------
# session specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SessionSpec:
    """Everything a worker needs to (re)build one monitoring session."""

    sid: str
    platform: str = "simX86"
    events: Tuple[str, ...] = ("PAPI_TOT_INS", "PAPI_TOT_CYC")
    workload: str = "axpy"
    n: int = 16
    #: instructions the session's machine advances per ``read`` op; the
    #: workload program is reloaded (counters keep accumulating) when it
    #: halts, so a session can be read indefinitely.
    step_instructions: int = 400
    seed: int = 12345
    #: per-session substrate fault spec (``"seed:profile"``), or None.
    inject: Optional[str] = None
    #: admission-control priority: higher survives shedding longer.
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.sid:
            raise ValueError("SessionSpec.sid must be non-empty")
        object.__setattr__(self, "events", tuple(self.events))

    def to_wire(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "platform": self.platform,
            "events": list(self.events),
            "workload": self.workload,
            "n": self.n,
            "step_instructions": self.step_instructions,
            "seed": self.seed,
            "inject": self.inject,
            "priority": self.priority,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "SessionSpec":
        return cls(
            sid=wire["sid"],
            platform=wire["platform"],
            events=tuple(wire["events"]),
            workload=wire["workload"],
            n=wire["n"],
            step_instructions=wire["step_instructions"],
            seed=wire["seed"],
            inject=wire.get("inject"),
            priority=wire.get("priority", 0),
        )


def shard_of(sid: str, nshards: int) -> int:
    """Deterministic session→shard assignment (stable across restarts)."""
    return zlib.crc32(sid.encode("utf-8")) % nshards


# ---------------------------------------------------------------------------
# ops and results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Op:
    """One batched RPC element.

    ``seq`` is the client-assigned per-session idempotency token for
    state-bearing kinds; ``spec`` rides on ``create``, ``restore`` (a
    journal image dict) on supervisor ``adopt`` ops.
    """

    kind: str
    sid: str
    seq: int = 0
    spec: Optional[SessionSpec] = None
    restore: Optional[Dict[str, Any]] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.kind == "create" and self.spec is None:
            raise ValueError("create op requires a spec")

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"kind": self.kind, "sid": self.sid,
                                "seq": self.seq}
        if self.spec is not None:
            wire["spec"] = self.spec.to_wire()
        if self.restore is not None:
            wire["restore"] = self.restore
        return wire


def op_from_wire(wire: Dict[str, Any]) -> Op:
    spec = wire.get("spec")
    return Op(
        kind=wire["kind"],
        sid=wire["sid"],
        seq=wire.get("seq", 0),
        spec=SessionSpec.from_wire(spec) if spec is not None else None,
        restore=wire.get("restore"),
    )


@dataclass
class OpResult:
    """Outcome of one op, as seen by the client."""

    sid: str
    kind: str
    status: int = PAPID_OK
    seq: int = 0
    #: event name -> monotone cumulative count (read/stop/adopt).
    values: Dict[str, int] = field(default_factory=dict)
    #: monotone per-session cycle clock (survives worker respawn).
    cycle: int = 0
    #: total instructions this session has executed (monotone).
    advanced: int = 0
    #: True once the session has been re-homed after a worker crash.
    recovered: bool = False
    #: lost-interval ledger entries (dicts shaped like
    #: ``EventSetHealth.summary()["lost_intervals"]`` items).
    lost: list = field(default_factory=list)
    #: True when this read was served from the server-side snapshot
    #: cache under load instead of touching the worker.
    stale: bool = False
    err_code: Optional[int] = None
    err: str = ""

    @property
    def ok(self) -> bool:
        return self.status == PAPID_OK

    @property
    def transient(self) -> bool:
        return self.status in TRANSIENT_STATUSES

    def to_wire(self) -> Dict[str, Any]:
        return {
            "sid": self.sid, "kind": self.kind, "status": self.status,
            "seq": self.seq, "values": self.values, "cycle": self.cycle,
            "advanced": self.advanced, "recovered": self.recovered,
            "lost": self.lost, "stale": self.stale,
            "err_code": self.err_code, "err": self.err,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "OpResult":
        return cls(**wire)


def raise_for_result(res: OpResult) -> None:
    """Map a non-OK result onto the :mod:`repro.core.errors` taxonomy."""
    if res.status == PAPID_OK:
        return
    name = STATUS_NAMES.get(res.status, str(res.status))
    detail = f"{name} for {res.kind} {res.sid!r}"
    if res.err:
        detail = f"{detail}: {res.err}"
    if res.status in TRANSIENT_STATUSES:
        raise SystemError_(detail)
    if res.status == PAPID_EDRAIN:
        raise NotRunningError(f"papid is draining ({detail})")
    code = res.err_code if res.err_code is not None else C.PAPI_EMISC
    raise error_for_code(code, detail)

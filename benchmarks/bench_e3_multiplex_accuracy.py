"""E3: multiplexing estimation error vs runtime (Section 2).

Paper claim: "Erroneous results can occur when the runtime is
insufficient to permit the estimated counter values to converge to their
expected values" -- the reason multiplexing must be explicitly enabled
in the low-level interface.

Reproduction: five events multiplexed onto simX86's two counters over a
three-phase program; the run length sweeps from one phase cycle (badly
wrong estimates) to many (converged).
"""

from _shared import emit, run_once
from repro.analysis import Table, rel_error_pct
from repro.core.library import Papi
from repro.platforms import create
from repro.workloads import phased

EVENTS = ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_L1_DCM",
          "PAPI_BR_MSP"]
REPEATS = [1, 2, 4, 8, 16, 32]
QUANTUM = 6000


def measure(repeats: int):
    substrate = create("simX86")
    papi = Papi(substrate)
    papi.mpx_quantum_cycles = QUANTUM
    es = papi.create_eventset()
    es.set_multiplex()
    es.add_named(*EVENTS)
    work = phased([("fp", 1500), ("mem", 1500), ("br", 1500)],
                  repeats=repeats, use_fma=False)
    substrate.machine.load(work.program)
    es.start()
    substrate.machine.run_to_completion()
    values = dict(zip(es.event_names, es.stop()))
    true_flops = work.expect.flops
    return values["PAPI_FP_OPS"], true_flops, es


def run_experiment():
    return [(r, *measure(r)[:2]) for r in REPEATS]


def bench_e3_multiplex_accuracy(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)

    table = Table(
        ["phase repeats", "true FLOPs", "multiplexed estimate", "error %"],
        title=f"E3: multiplexed PAPI_FP_OPS error vs runtime "
              f"(5 events on 2 counters, quantum {QUANTUM} cycles)",
    )
    errors = {}
    for repeats, est, true in rows:
        err = rel_error_pct(est, true)
        errors[repeats] = err
        table.add_row(repeats, true, est, round(err, 1))
    emit(capsys, table.render())

    # short runs are unreliable; long runs converge
    assert errors[REPEATS[0]] > 10.0, errors
    assert errors[REPEATS[-1]] < 3.0, errors
    # the error at the longest run beats the error at the shortest by 5x
    assert errors[REPEATS[-1]] * 5 < errors[REPEATS[0]]

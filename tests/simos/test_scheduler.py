"""Unit tests: the simulated OS scheduler and counter virtualization."""

import pytest

from repro.hw import Assembler, Machine
from repro.hw.events import Signal
from repro.simos import OS, OSError_


def counting_program(n, reg_value=1):
    """A loop of n FMAs, plus a marker value left in r7."""
    asm = Assembler()
    asm.func("main")
    asm.li("r7", reg_value)
    asm.li("r1", n)
    asm.li("r2", 0)
    asm.label("loop")
    asm.fma("f1", "f1", "f1", "f1")
    asm.addi("r2", "r2", 1)
    asm.blt("r2", "r1", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


class TestSpawnAndRun:
    def test_single_thread_runs_to_completion(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=5000)
        t = os_.spawn(counting_program(2000))
        os_.run()
        assert t.finished
        assert m.counts[Signal.FP_FMA] == 2000

    def test_two_threads_interleave(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=2000)
        t1 = os_.spawn(counting_program(3000, 1))
        t2 = os_.spawn(counting_program(3000, 2))
        os_.run()
        assert t1.finished and t2.finished
        assert m.counts[Signal.FP_FMA] == 6000
        assert t1.dispatches > 1 and t2.dispatches > 1

    def test_registers_isolated_between_threads(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=1000)
        t1 = os_.spawn(counting_program(2000, reg_value=11))
        t2 = os_.spawn(counting_program(2000, reg_value=22))
        os_.run()
        assert t1.context.iregs[7] == 11
        assert t2.context.iregs[7] == 22

    def test_memory_isolated_between_threads(self):
        asm = Assembler()
        base = asm.reserve_data(4)
        asm.func("main")
        asm.li("r1", base)
        asm.li("r2", 77)
        asm.store("r2", "r1", 0)
        asm.load("r3", "r1", 0)
        asm.halt()
        asm.endfunc()
        prog = asm.build()
        m = Machine()
        os_ = OS(m)
        t1 = os_.spawn(prog)
        t2 = os_.spawn(prog)
        os_.run()
        assert t1.context.memory is not t2.context.memory
        assert t1.context.memory[base] == 77

    def test_virtual_time_accumulates_per_thread(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=1000)
        t1 = os_.spawn(counting_program(4000))
        t2 = os_.spawn(counting_program(1000))
        os_.run()
        assert t1.user_cycles > t2.user_cycles > 0
        # virtual times sum to the machine's user cycles
        assert t1.user_cycles + t2.user_cycles == m.user_cycles

    def test_context_switch_cost_charged(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=500, ctx_switch_cost=400)
        os_.spawn(counting_program(3000))
        stats = os_.run()
        assert m.system_cycles == stats.context_switches * 400

    def test_run_budget_limits(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=500)
        t = os_.spawn(counting_program(100000))
        os_.run(max_slices=3)
        assert not t.finished
        assert os_.stats.slices == 3

    def test_bad_quantum_rejected(self):
        with pytest.raises(OSError_):
            OS(Machine(), quantum_cycles=0)

    def test_thread_lookup(self):
        m = Machine()
        os_ = OS(m)
        t = os_.spawn(counting_program(10), name="worker")
        assert os_.thread_by_tid(t.tid) is t
        with pytest.raises(OSError_):
            os_.thread_by_tid(999)


class TestCounterVirtualization:
    def _setup(self, quantum=1000):
        m = Machine()
        os_ = OS(m, quantum_cycles=quantum)
        t1 = os_.spawn(counting_program(3000))
        t2 = os_.spawn(counting_program(3000))
        return m, os_, t1, t2

    def test_bound_counter_counts_only_its_thread(self):
        m, os_, t1, t2 = self._setup()
        m.pmu.program(0, (Signal.FP_FMA,))
        os_.bind_counter(t1, 0)
        os_.counter_start(t1, 0)
        os_.run()
        value = os_.counter_stop(t1, 0)
        # thread 1 did exactly 3000 FMAs; thread 2's are not counted
        assert value == 3000
        assert m.counts[Signal.FP_FMA] == 6000

    def test_counter_cannot_bind_twice(self):
        m, os_, t1, t2 = self._setup()
        m.pmu.program(0, (Signal.FP_FMA,))
        os_.bind_counter(t1, 0)
        with pytest.raises(OSError_):
            os_.bind_counter(t2, 0)

    def test_start_requires_bind(self):
        m, os_, t1, _ = self._setup()
        with pytest.raises(OSError_):
            os_.counter_start(t1, 0)

    def test_unbound_counter_counts_everything(self):
        m, os_, t1, t2 = self._setup()
        m.pmu.program(1, (Signal.FP_FMA,))
        m.pmu.start(1)
        os_.run()
        assert m.pmu.read(1) == 6000

    def test_stop_while_descheduled(self):
        m, os_, t1, t2 = self._setup(quantum=800)
        m.pmu.program(0, (Signal.FP_FMA,))
        os_.bind_counter(t1, 0)
        os_.counter_start(t1, 0)
        # run a few slices, t1 will end descheduled at some point
        os_.run(max_slices=3)
        value = os_.counter_stop(t1, 0)
        assert 0 < value < 3000

    def test_unbind_while_running(self):
        m, os_, t1, _ = self._setup()
        m.pmu.program(0, (Signal.FP_FMA,))
        os_.bind_counter(t1, 0)
        os_.counter_start(t1, 0)
        os_.run(max_slices=1)
        os_.unbind_counter(t1, 0)
        assert 0 not in t1.bound_counters


class TestSignalsRouting:
    def test_current_tid_follows_dispatch(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=500)
        seen = []
        t1 = os_.spawn(counting_program(1500))
        m.pmu.program(0, (Signal.FP_FMA,))
        os_.bind_counter(t1, 0)
        os_.counter_start(t1, 0)
        m.pmu.set_overflow(0, 100, os_.signals.dispatch)
        os_.signals.register(0, lambda rec: seen.append(rec), tid=t1.tid)
        os_.run()
        assert len(seen) >= 10  # ~15 overflows at threshold 100

    def test_unrouted_overflow_dropped(self):
        m = Machine()
        os_ = OS(m, quantum_cycles=500)
        t1 = os_.spawn(counting_program(1500))
        m.pmu.program(0, (Signal.FP_FMA,))
        os_.bind_counter(t1, 0)
        os_.counter_start(t1, 0)
        m.pmu.set_overflow(0, 100, os_.signals.dispatch)
        os_.run()
        assert os_.signals.dropped > 0
        assert os_.signals.delivered == 0

    def test_duplicate_handler_rejected(self):
        os_ = OS(Machine())
        os_.signals.register(0, lambda r: None)
        with pytest.raises(ValueError):
            os_.signals.register(0, lambda r: None)

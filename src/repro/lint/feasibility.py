"""Static EventSet feasibility: decide allocability without executing.

Counter allocation (Section 5) is a bipartite-matching problem over
platform tables that exist *before any code runs* -- so whether a list
of events can share the hardware is a static question.  This module
answers it from the same tables the runtime allocator uses
(:func:`repro.core.allocation.allocate` over the substrate's native
event table or counter groups), which is what guarantees the verdict
agrees with what ``EventSet.add_event`` will do at runtime (the
property test in ``tests/properties/test_props_lint.py`` pins this).

For an infeasible set the report carries two certificates:

- a **minimal conflicting subset** of the requested events (removing
  any one member makes the rest allocable), found by greedy deletion;
- on constraint platforms, the **Hall-condition violation witness** at
  the native-event level (a set of natives whose combined
  allowed-counter neighbourhood is smaller than the set), from
  :func:`repro.core.allocation.deficiency_witness`.

It also classifies whether multiplexing would rescue the set, and
builds the full cross-platform **portability matrix** (experiment E8's
table, computed statically).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core import constants as C
from repro.core.allocation import allocate, deficiency_witness
from repro.core.allocation.translate import build_problem
from repro.core.presets import PLATFORM_PRESET_TABLES
from repro.platforms import PLATFORM_NAMES, create
from repro.platforms.base import NativeEvent, Substrate


@lru_cache(maxsize=None)
def _substrate(platform: str) -> Substrate:
    """One cached substrate per platform.

    Only its static tables (native events, groups, counter geometry)
    are consulted; the attached machine is never run, so sharing one
    instance across lint invocations is safe and keeps linting fast.
    """
    return create(platform)


@dataclass(frozen=True)
class EventResolution:
    """How one requested event name resolves on one platform."""

    name: str
    #: "direct" | "derived" | "native" | "component" | "unavailable"
    #: | "unknown"
    kind: str
    natives: Tuple[str, ...]

    @property
    def available(self) -> bool:
        return self.kind in ("direct", "derived", "native", "component")


@dataclass(frozen=True)
class FeasibilityReport:
    """The static verdict for one event list on one platform."""

    platform: str
    events: Tuple[str, ...]
    resolutions: Tuple[EventResolution, ...]
    #: True on the sampling substrate, where no allocation happens.
    sampling: bool
    #: all events placeable on physical counters at the same time.
    feasible_direct: bool
    #: native name -> counter index when feasible_direct (constraint
    #: platforms) or the within-group layout (group platforms).
    assignment: Dict[str, int]
    group: Optional[int]
    #: each event placeable alone and the set small enough to rotate --
    #: i.e. set_multiplex would make the set runnable.
    feasible_multiplexed: bool
    #: minimal conflicting subset of requested event names (empty when
    #: feasible); removing any one member makes the rest allocable.
    conflict_witness: Tuple[str, ...]
    #: Hall violator at the native level: (natives, counters) with
    #: len(natives) == len(counters) + 1; None on group platforms.
    hall_witness: Optional[Tuple[Tuple[str, ...], Tuple[int, ...]]]

    @property
    def unknown(self) -> Tuple[str, ...]:
        return tuple(
            r.name for r in self.resolutions if r.kind == "unknown"
        )

    @property
    def unavailable(self) -> Tuple[str, ...]:
        return tuple(
            r.name for r in self.resolutions if r.kind == "unavailable"
        )

    @property
    def ok(self) -> bool:
        """Would ``add_event`` for every event succeed without multiplex?"""
        return (
            not self.unknown
            and not self.unavailable
            and self.feasible_direct
        )

    @property
    def status(self) -> str:
        """One-word verdict used by the portability matrix."""
        if self.unknown:
            return "unknown-event"
        if self.unavailable:
            return "unavailable"
        if self.sampling and self.feasible_direct:
            # an over-full component bank is infeasible even under
            # sampling; fall through to the verdicts below for that.
            return "sampling"
        if self.feasible_direct:
            return "ok"
        if self.feasible_multiplexed:
            return "mpx"
        return "infeasible"


def resolve_event(name: str, platform: str) -> EventResolution:
    """Resolve one preset symbol, native or component event, statically."""
    substrate = _substrate(platform)
    if C.PAPI_COMPONENT_SEPARATOR in name:
        comp_name, short = name.split(C.PAPI_COMPONENT_SEPARATOR, 1)
        if comp_name == "cpu":
            # the CPU component namespace aliases the native table
            if short in substrate.native_events:
                return EventResolution(name, "native", (short,))
            return EventResolution(name, "unknown", ())
        from repro.components import COMPONENT_EVENT_SHORTS

        shorts = COMPONENT_EVENT_SHORTS.get(comp_name)
        if shorts is None or short not in shorts:
            return EventResolution(name, "unknown", ())
        # component banks are unconstrained: no native decomposition,
        # capacity is checked per component in check_events
        return EventResolution(name, "component", ())
    if name.startswith("PAPI_"):
        table = PLATFORM_PRESET_TABLES.get(platform, {})
        terms = table.get(name)
        if terms is None:
            from repro.core.presets import PRESET_BY_SYMBOL

            kind = (
                "unavailable" if name in PRESET_BY_SYMBOL else "unknown"
            )
            return EventResolution(name, kind, ())
        natives = tuple(n for n, _coeff in terms)
        kind = (
            "direct" if len(terms) == 1 and terms[0][1] == 1 else "derived"
        )
        return EventResolution(name, kind, natives)
    if name in substrate.native_events:
        return EventResolution(name, "native", (name,))
    return EventResolution(name, "unknown", ())


def _natives_of(
    resolutions: Tuple[EventResolution, ...], substrate: Substrate
) -> List[NativeEvent]:
    seen: Dict[str, NativeEvent] = {}
    for res in resolutions:
        for native in res.natives:
            seen.setdefault(native, substrate.query_native(native))
    return list(seen.values())


def _direct_feasible(
    event_names: Tuple[str, ...],
    by_name: Dict[str, EventResolution],
    substrate: Substrate,
):
    natives = _natives_of(
        tuple(by_name[n] for n in event_names), substrate
    )
    return allocate(substrate, natives)


def _minimal_conflict(
    event_names: Tuple[str, ...],
    by_name: Dict[str, EventResolution],
    substrate: Substrate,
) -> Tuple[str, ...]:
    """Greedy deletion: shrink to a minimal infeasible event subset."""
    witness = list(event_names)
    for name in list(witness):
        trial = tuple(n for n in witness if n != name)
        if trial and not _direct_feasible(trial, by_name, substrate).complete:
            witness.remove(name)
    return tuple(witness)


def check_events(
    events: Tuple[str, ...] | List[str], platform: str
) -> FeasibilityReport:
    """The static feasibility verdict for *events* on *platform*."""
    events = tuple(events)
    substrate = _substrate(platform)
    resolutions = tuple(resolve_event(name, platform) for name in events)
    by_name = {r.name: r for r in resolutions}
    resolved = tuple(
        r.name for r in resolutions
        if r.available and r.kind != "component"
    )

    # allocation partitions per component: each non-CPU component's
    # members must fit its own bank, independent of the CPU allocator.
    comp_members: Dict[str, List[str]] = {}
    for r in resolutions:
        if r.kind == "component":
            cn = r.name.split(C.PAPI_COMPONENT_SEPARATOR, 1)[0]
            comp_members.setdefault(cn, []).append(r.name)
    comp_assignment: Dict[str, int] = {}
    comp_conflict: Tuple[str, ...] = ()
    comp_fit = True
    comp_mux_ok = True
    for cn in sorted(comp_members):
        comp = substrate.component(cn)
        members = comp_members[cn]
        if len(members) > comp.n_counters:
            comp_fit = False
            if not comp_conflict:
                comp_conflict = tuple(members[:comp.n_counters + 1])
            if not comp.SUPPORTS_MULTIPLEX:
                comp_mux_ok = False
        else:
            from repro.core.allocation import component_assignment

            shorts = [
                m.split(C.PAPI_COMPONENT_SEPARATOR, 1)[1] for m in members
            ]
            packed = component_assignment(shorts, comp.n_counters)
            for m, short in zip(members, shorts):
                comp_assignment[m] = packed[short]

    sampling = substrate.supports_sampling_counts()
    if sampling:
        # the sampler observes every signal at once: no CPU allocation.
        # Component banks still have finite width, and with no cycle
        # timer there is no multiplexing to rescue an over-full one.
        return FeasibilityReport(
            platform, events, resolutions, True,
            feasible_direct=comp_fit,
            assignment=comp_assignment if comp_fit else {}, group=None,
            feasible_multiplexed=False,
            conflict_witness=comp_conflict, hall_witness=None,
        )

    natives = _natives_of(tuple(by_name[n] for n in resolved), substrate)
    result = allocate(substrate, natives)

    feasible_multiplexed = False
    conflict: Tuple[str, ...] = comp_conflict
    hall = None
    if not result.complete:
        conflict = _minimal_conflict(resolved, by_name, substrate)
        if not substrate.uses_groups:
            hall = deficiency_witness(build_problem(substrate, natives))
        each_alone = all(
            allocate(substrate, [native]).complete for native in natives
        )
        feasible_multiplexed = (
            each_alone and len(natives) <= C.PAPI_MAX_MPX_EVENTS
        )
    else:
        feasible_multiplexed = len(natives) <= C.PAPI_MAX_MPX_EVENTS
    feasible_multiplexed = feasible_multiplexed and comp_mux_ok

    feasible = result.complete and comp_fit
    assignment = dict(result.assignment) if feasible else {}
    if feasible:
        assignment.update(comp_assignment)
    return FeasibilityReport(
        platform, events, resolutions, False,
        feasible_direct=feasible,
        assignment=assignment,
        group=result.group,
        feasible_multiplexed=feasible_multiplexed,
        conflict_witness=conflict,
        hall_witness=hall,
    )


def portability_matrix(
    events: Tuple[str, ...] | List[str],
) -> Dict[str, FeasibilityReport]:
    """Experiment E8's portability table, computed statically."""
    return {
        platform: check_events(events, platform)
        for platform in PLATFORM_NAMES
    }

"""Interprocedural function summaries for the flow-sensitive linter.

Instrumentation scripts routinely wrap counter control in helpers::

    def start_counters(es):
        es.start()

    def report(es):
        print(es.read())
        es.stop()

An intraprocedural analysis sees nothing wrong with either the helpers
(the parameter's state is unknown) or the call sites (the calls are
opaque).  This module closes the gap with per-function **summaries**:
for every module-level function and every parameter, the typestate
analysis is re-run three times with the parameter seeded to each
concrete lifecycle state, recording

- which misuse rules fire for that entry state, and
- the set of lifecycle states the parameter can be in on exit.

The caller-side transfer (:mod:`repro.lint.typestate`) then plays a
call as a table lookup: violations become diagnostics at the call site
when at least one of the argument's possible states triggers them, and
the argument's state set is rewritten through the exit-state map.
Functions whose summary cannot be computed (recursion, too many
parameters) degrade soundly: calls to them havoc the argument's state
to fully-unknown, which silences downstream reports instead of
inventing them.

A second, standalone run per function records the lifecycle states of
any locally created EventSet the function returns, so factory helpers
(``def make(): es = papi.create_eventset(); ... ; return es``) hand the
caller a tracked object instead of an untyped value.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import solve
from repro.lint.typestate import (
    ALL_STATES,
    FunctionSummary,
    ParamEffect,
    TypestateAnalysis,
    eval_expr_values,
    is_eventset,
    param_id,
)

#: summaries are skipped above this arity (3 analysis runs per param)
MAX_SUMMARY_PARAMS = 6


def collect_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Module-level plain functions, by name (latest definition wins)."""
    out: Dict[str, ast.FunctionDef] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            out[stmt.name] = stmt
    return out


def _called_names(fn: ast.FunctionDef) -> Set[str]:
    """Names of module-level functions *fn* may call (by bare name)."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


def _topo_order(
    functions: Dict[str, ast.FunctionDef]
) -> Tuple[List[str], Set[str]]:
    """Callee-first ordering; members of call cycles are flagged.

    A function on a cycle gets no summary (calls to it havoc the
    arguments), which is the sound fallback for recursion.
    """
    callees = {
        name: _called_names(fn) & set(functions)
        for name, fn in functions.items()
    }
    order: List[str] = []
    state: Dict[str, int] = {}  # 1 = in progress, 2 = done
    cyclic: Set[str] = set()

    def visit(name: str) -> None:
        if state.get(name) == 2:
            return
        if state.get(name) == 1:
            cyclic.add(name)
            return
        state[name] = 1
        for callee in sorted(callees[name]):
            visit(callee)
        state[name] = 2
        order.append(name)

    for name in sorted(functions):
        visit(name)
    return order, cyclic


def _param_names(fn: ast.FunctionDef) -> List[str]:
    return [a.arg for a in fn.args.args]


def _returns_states(
    fn: ast.FunctionDef,
    cfg,
    summaries: Dict[str, FunctionSummary],
    params: List[str],
) -> Optional[FrozenSet[str]]:
    """Lifecycle states of a locally created EventSet *fn* returns."""
    analysis = TypestateAnalysis(summaries, params)
    ins, _outs = solve(cfg, analysis)
    states: Set[str] = set()
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            continue
        vals, objs = eval_expr_values(analysis, ins[node.id], stmt.value)
        for val in vals:
            if val.startswith("es@") and val in objs:
                states |= objs[val].state_names
    return frozenset(states) if states else None


def _param_effect(
    fn: ast.FunctionDef,
    cfg,
    summaries: Dict[str, FunctionSummary],
    params: List[str],
    index: int,
    entry_state: str,
) -> ParamEffect:
    """Run the analysis with one parameter seeded to *entry_state*."""
    oid = param_id(index)
    analysis = TypestateAnalysis(
        summaries, params, seed_param=(index, entry_state)
    )
    ins, _outs = solve(cfg, analysis)

    violations: List[Tuple[str, str]] = []

    def sink(rule, node, objid, message, hint, method):
        if objid == oid and (rule, method) not in violations:
            violations.append((rule, method))

    analysis.sink = sink
    for node in cfg.stmt_nodes():
        analysis.transfer(node, ins[node.id])
    analysis.sink = None

    exit_fact = ins[cfg.exit].objs_dict().get(oid)
    if exit_fact is not None and exit_fact.states:
        exit_states = exit_fact.state_names
    else:
        # no normal exit keeps the object for this entry state (the
        # function raises or loops on it): the caller's continuation
        # never sees it, so there is nothing to propagate.
        exit_states = frozenset()
    return ParamEffect(
        exit_states=exit_states, violations=tuple(violations)
    )


def compute_summaries(
    functions: Dict[str, ast.FunctionDef]
) -> Dict[str, FunctionSummary]:
    """Summaries for every summarizable module-level function."""
    order, cyclic = _topo_order(functions)
    summaries: Dict[str, FunctionSummary] = {}
    for name in order:
        if name in cyclic:
            continue
        fn = functions[name]
        params = _param_names(fn)
        if len(params) > MAX_SUMMARY_PARAMS:
            continue
        try:
            cfg = build_cfg(fn.body)
        except RecursionError:  # pragma: no cover - pathological nesting
            continue
        summary = FunctionSummary(name=name, params=params)
        summary.returns_states = _returns_states(
            fn, cfg, summaries, params
        )
        interesting = False
        for i in range(len(params)):
            effects = {
                state: _param_effect(fn, cfg, summaries, params, i, state)
                for state in sorted(ALL_STATES)
            }
            # only keep effects that actually constrain the caller:
            # identity transfers with no violations are noise.
            if any(
                e.violations or e.exit_states != frozenset({s})
                for s, e in effects.items()
            ):
                summary.effects[i] = effects
                interesting = True
        if interesting or summary.returns_states is not None:
            summaries[name] = summary
    return summaries

"""dynaprof: dynamic instrumentation with PAPI and wallclock probes.

"The dynaprof tool uses dynamic instrumentation to allow the user to
either load an executable or attach to a running executable and then
dynamically insert instrumentation probes ... The user can list the
internal structure of the application in order to select instrumentation
points ... Dynaprof provides a PAPI probe for collecting hardware
counter data and a wallclock probe for measuring elapsed time, both on a
per-thread basis.  Users may optionally write their own probes."
(Section 2)

Dyninst's binary rewriting becomes VM program rewriting here: PROBE
pseudo-instructions are inserted at function entries and before every
RET/HALT, control flow is relinked automatically (labels are symbolic),
and -- for the attach case -- the paused machine is *migrated* onto the
rewritten program with its pc and call stack remapped.

Probe reads go through the real substrate interface, so instrumentation
dilates the measured program exactly as the paper discusses (and as
experiments E1/E7 quantify).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.hw.cpu import CPU
from repro.hw.isa import Instruction, Op, Program
from repro.platforms.base import Substrate
from repro.workloads.builder import Workload


@dataclass
class FunctionProfile:
    """Accumulated per-function metrics (inclusive and exclusive)."""

    name: str
    calls: int = 0
    inclusive: Dict[str, float] = field(default_factory=dict)
    exclusive: Dict[str, float] = field(default_factory=dict)

    def _add(self, target: Dict[str, float], deltas: Dict[str, float]) -> None:
        for k, v in deltas.items():
            target[k] = target.get(k, 0) + v

    def record(self, inclusive: Dict[str, float],
               exclusive: Dict[str, float]) -> None:
        self.calls += 1
        self._add(self.inclusive, inclusive)
        self._add(self.exclusive, exclusive)


class Probe:
    """Base probe: subclass and override the hooks you need.

    "A probe may use whatever output format is appropriate, for example
    a real-time data feed to a visualization tool or a static data file
    dumped to disk at the end of the run."
    """

    def prepare(self, dynaprof: "Dynaprof") -> None:
        """Called once before instrumentation runs."""

    def on_entry(self, function: str, cpu: CPU) -> None:
        """Called when control enters an instrumented function."""

    def on_exit(self, function: str, cpu: CPU) -> None:
        """Called just before an instrumented function returns/halts."""

    def finish(self) -> None:
        """Called after the run completes."""


class _MetricProbe(Probe):
    """Shared machinery: metric snapshots -> inclusive/exclusive profiles."""

    def __init__(self) -> None:
        self.profiles: Dict[str, FunctionProfile] = {}
        self._stack: List[Tuple[str, Dict[str, float], Dict[str, float]]] = []

    def _snapshot(self) -> Dict[str, float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_entry(self, function: str, cpu: CPU) -> None:
        self._stack.append((function, self._snapshot(), {}))

    def on_exit(self, function: str, cpu: CPU) -> None:
        if not self._stack:
            return  # exit without matching entry (partial instrumentation)
        now = self._snapshot()
        name, entry, children = self._stack.pop()
        if name != function:
            # mismatched nesting can occur when only some functions are
            # instrumented; attribute to the popped frame regardless.
            pass
        inclusive = {k: now[k] - entry[k] for k in now}
        exclusive = {k: inclusive[k] - children.get(k, 0) for k in inclusive}
        prof = self.profiles.setdefault(name, FunctionProfile(name))
        prof.record(inclusive, exclusive)
        if self._stack:
            _pname, _pentry, pchildren = self._stack[-1]
            for k, v in inclusive.items():
                pchildren[k] = pchildren.get(k, 0) + v


class PapiProbe(_MetricProbe):
    """Hardware-counter probe: per-function deltas of PAPI events."""

    def __init__(self, papi: Papi, events: Sequence[str]) -> None:
        super().__init__()
        if not events:
            raise InvalidArgumentError("PapiProbe needs at least one event")
        self.papi = papi
        self.event_names = list(events)
        self.eventset = None

    def prepare(self, dynaprof: "Dynaprof") -> None:
        es = self.papi.create_eventset()
        for name in self.event_names:
            es.add_event(self.papi.event_name_to_code(name))
        self.eventset = es

    def start(self) -> None:
        assert self.eventset is not None
        self.eventset.start()

    def _snapshot(self) -> Dict[str, float]:
        assert self.eventset is not None
        values = self.eventset.read()
        return dict(zip(self.event_names, values))

    def finish(self) -> None:
        if self.eventset is not None and self.eventset.running:
            self.eventset.stop()


class WallclockProbe(_MetricProbe):
    """Elapsed-time probe: per-function real-time deltas (cycles + usec)."""

    def __init__(self, papi: Papi) -> None:
        super().__init__()
        self.papi = papi

    def _snapshot(self) -> Dict[str, float]:
        return {
            "real_cyc": float(self.papi.get_real_cyc()),
            "real_usec": self.papi.get_real_usec(),
        }


class UserProbe(Probe):
    """Wrap user callables: ``UserProbe(entry=fn, exit=fn)``."""

    def __init__(
        self,
        entry: Optional[Callable[[str, CPU], None]] = None,
        exit: Optional[Callable[[str, CPU], None]] = None,
    ) -> None:
        self._entry = entry
        self._exit = exit

    def on_entry(self, function: str, cpu: CPU) -> None:
        if self._entry is not None:
            self._entry(function, cpu)

    def on_exit(self, function: str, cpu: CPU) -> None:
        if self._exit is not None:
            self._exit(function, cpu)


class Dynaprof:
    """The instrumentor: load or attach, list structure, insert probes."""

    #: probe-id space: entry ids are even, exit ids odd.
    _ENTRY, _EXIT = 0, 1

    def __init__(self, substrate: Substrate, papi: Optional[Papi] = None) -> None:
        self.substrate = substrate
        self.machine = substrate.machine
        self.papi = papi or Papi(substrate)
        self.probes: List[Probe] = []
        self._program: Optional[Program] = None
        self._instrumented = False
        self._next_probe_id = 1
        self._probe_functions: Dict[int, Tuple[str, int]] = {}

    # ------------------------------------------------------------------

    def load(self, target: Union[Workload, Program]) -> None:
        """Load an executable (resets the machine's program state)."""
        program = target.program if isinstance(target, Workload) else target
        self._program = program
        self.machine.load(program)
        self._instrumented = False

    def attach(self) -> None:
        """Attach to whatever the machine is currently (pausedly) running."""
        if self.machine.cpu.program is None:
            raise InvalidArgumentError("no program is loaded on the machine")
        self._program = self.machine.cpu.program
        self._instrumented = False

    def list_functions(self) -> List[Tuple[str, int]]:
        """The application's internal structure: (name, size) pairs."""
        if self._program is None:
            raise InvalidArgumentError("load or attach first")
        return [
            (fn.name, fn.size)
            for fn in sorted(
                self._program.functions.values(), key=lambda f: f.start
            )
        ]

    def add_probe(self, probe: Probe) -> Probe:
        self.probes.append(probe)
        probe.prepare(self)
        return probe

    # ------------------------------------------------------------------

    def instrument(self, functions: Optional[Sequence[str]] = None) -> None:
        """Insert entry/exit probes into the selected functions.

        If the machine has already started executing the program (the
        attach case), the live context is migrated onto the rewritten
        code; otherwise the rewritten program is (re)loaded.
        """
        if self._program is None:
            raise InvalidArgumentError("load or attach first")
        if self._instrumented:
            raise InvalidArgumentError("already instrumented")
        table = self._program.functions
        if functions is None:
            selected = list(table.values())
        else:
            missing = [f for f in functions if f not in table]
            if missing:
                raise InvalidArgumentError(f"unknown functions: {missing}")
            selected = [table[f] for f in functions]

        insertions: Dict[int, List[Instruction]] = {}
        instructions = self._program.instructions
        for fn in selected:
            entry_id = self._alloc_probe(fn.name, self._ENTRY)
            insertions.setdefault(fn.start, []).append(
                Instruction(Op.PROBE, entry_id)
            )
            exit_id = self._alloc_probe(fn.name, self._EXIT)
            for pc in range(fn.start, fn.end):
                if instructions[pc].op in (Op.RET, Op.HALT):
                    insertions.setdefault(pc, []).append(
                        Instruction(Op.PROBE, exit_id)
                    )

        new_program, remap = self._program.insert(insertions)
        cpu = self.machine.cpu
        started = (
            cpu.program is self._program
            and not cpu.halted
            and cpu.pc != self._program.label_at(self._program.entry)
        )
        if started:
            cpu.migrate(new_program, remap)
        else:
            self.machine.load(new_program)
        self._program = new_program
        self._register_handlers()
        self._instrumented = True

    def remove_probes(self) -> None:
        """Deinstrument: strip every inserted probe, mid-run if needed.

        The exact inverse of :meth:`instrument`.  A started machine is
        migrated onto the stripped code (pc and return addresses
        remapped; a pc paused at a probe resumes at the instruction the
        probe guarded).  Unregistering the handlers invalidates every
        CPU's compiled code, so regions that specialized on the old
        probe registry can never run against the stripped program.
        """
        if self._program is None:
            raise InvalidArgumentError("load or attach first")
        if not self._instrumented:
            raise InvalidArgumentError("not instrumented")
        probe_pcs = [
            pc
            for pc, ins in enumerate(self._program.instructions)
            if ins.op == Op.PROBE and ins.a in self._probe_functions
        ]
        new_program, remap = self._program.remove(probe_pcs)
        cpu = self.machine.cpu
        started = (
            cpu.program is self._program
            and not cpu.halted
            and cpu.pc != self._program.label_at(self._program.entry)
        )
        if started:
            cpu.migrate(new_program, remap)
        else:
            self.machine.load(new_program)
        self._program = new_program
        for pid in self._probe_functions:
            self.machine.unregister_probe(pid)
        self._probe_functions.clear()
        self._instrumented = False

    def _alloc_probe(self, function: str, kind: int) -> int:
        pid = self._next_probe_id
        self._next_probe_id += 1
        self._probe_functions[pid] = (function, kind)
        return pid

    def _register_handlers(self) -> None:
        for pid, (function, kind) in self._probe_functions.items():
            if kind == self._ENTRY:
                def handler(_pid, cpu, _fn=function):
                    for probe in self.probes:
                        probe.on_entry(_fn, cpu)
            else:
                def handler(_pid, cpu, _fn=function):
                    for probe in self.probes:
                        probe.on_exit(_fn, cpu)
            try:
                self.machine.register_probe(pid, handler)
            except ValueError:
                self.machine.unregister_probe(pid)
                self.machine.register_probe(pid, handler)

    # ------------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None):
        """Run (or continue) the instrumented program.

        Starts any PapiProbe eventsets first, stops them at the end.
        """
        for probe in self.probes:
            if isinstance(probe, PapiProbe) and probe.eventset is not None:
                if not probe.eventset.running:
                    probe.start()
        if max_instructions is None:
            result = self.machine.run_to_completion()
        else:
            result = self.machine.run(max_instructions=max_instructions)
        if result.halted:
            for probe in self.probes:
                probe.finish()
        return result

    def profiles(self) -> Dict[str, FunctionProfile]:
        """Merged per-function profiles from all metric probes."""
        merged: Dict[str, FunctionProfile] = {}
        for probe in self.probes:
            if isinstance(probe, _MetricProbe):
                for name, prof in probe.profiles.items():
                    tgt = merged.setdefault(name, FunctionProfile(name))
                    tgt.calls = max(tgt.calls, prof.calls)
                    tgt._add(tgt.inclusive, prof.inclusive)
                    tgt._add(tgt.exclusive, prof.exclusive)
        return merged

"""The PAPI library: the paper's primary contribution.

Public surface:

- :class:`~repro.core.library.Papi` -- one initialized library per
  platform substrate; create EventSets, query events, read timers;
- :class:`~repro.core.eventset.EventSet` -- the low-level counting unit
  (add events, start/stop/read/accum/reset, multiplex, attach, overflow);
- :class:`~repro.core.highlevel.HighLevel` -- start/read/stop counters
  and the flops/flips/ipc rate calls;
- :class:`~repro.core.lowlevel.LowLevelAPI` -- the C-flavoured facade
  over integer EventSet handles;
- :mod:`~repro.core.allocation` -- counter allocation via bipartite
  matching (Section 5);
- :class:`~repro.core.profile.ProfileBuffer` / PAPI_profil -- SVR4
  statistical profiling;
- :mod:`~repro.core.calibrate` -- the calibrate utility;
- :mod:`~repro.core.memory` -- the PAPI-3 memory utilization extension.
"""

from repro.core import constants
from repro.core.calibrate import (
    CalibrationResult,
    calibrate,
    calibrate_all,
    calibrate_convergence,
)
from repro.core.errors import (
    ConflictError,
    InvalidArgumentError,
    IsRunningError,
    NoSuchEventError,
    NoSuchEventSetError,
    NotEnoughCountersError,
    NotPresetError,
    NotRunningError,
    PapiError,
    SubstrateFeatureError,
    strerror,
)
from repro.core.eventset import EventSet
from repro.core.highlevel import HighLevel, RateReport
from repro.core.library import EventInfo, Papi
from repro.core.lowlevel import LowLevelAPI
from repro.core.multiplex import MultiplexController, partition_natives
from repro.core.overflow import OverflowInfo
from repro.core.presets import (
    NUM_PRESETS,
    PRESETS,
    Preset,
    PresetMapping,
    event_code_to_name,
    event_name_to_code,
    preset_from_code,
    preset_from_symbol,
    reference_count,
)
from repro.core.profile import Profil, ProfileBuffer
from repro.core.sampling import (
    ConvergenceStudy,
    Estimate,
    estimate_count,
    relative_error,
)
from repro.core.timers import TimeRegion, TimerReading, read_timers

__all__ = [
    "CalibrationResult",
    "ConflictError",
    "ConvergenceStudy",
    "Estimate",
    "EventInfo",
    "EventSet",
    "HighLevel",
    "InvalidArgumentError",
    "IsRunningError",
    "LowLevelAPI",
    "MultiplexController",
    "NUM_PRESETS",
    "NoSuchEventError",
    "NoSuchEventSetError",
    "NotEnoughCountersError",
    "NotPresetError",
    "NotRunningError",
    "OverflowInfo",
    "PRESETS",
    "Papi",
    "PapiError",
    "Preset",
    "PresetMapping",
    "Profil",
    "ProfileBuffer",
    "RateReport",
    "SubstrateFeatureError",
    "TimeRegion",
    "TimerReading",
    "calibrate",
    "calibrate_all",
    "calibrate_convergence",
    "constants",
    "estimate_count",
    "event_code_to_name",
    "event_name_to_code",
    "partition_natives",
    "preset_from_code",
    "preset_from_symbol",
    "read_timers",
    "reference_count",
    "relative_error",
    "strerror",
]

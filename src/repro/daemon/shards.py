"""Shard handles and transports for the papid worker pool.

A :class:`Shard` is the server-side handle for one worker: its pipe,
its liveness surface, a lock serializing pipe access between the
submit path and the supervisor, and bookkeeping (generation, batch
sequence, sessions homed here, a discard floor for answers that arrive
after their deadline already expired).

Two transports expose the same surface:

- :class:`ProcessTransport` — real ``multiprocessing`` workers, one
  process per shard (fork where available).  This is what the CLI,
  the load benchmark, and the chaos soak run.
- :class:`InlineTransport` — the worker's :class:`WorkerState` driven
  synchronously in-process behind a pipe-shaped shim.  Crashes are
  simulated faithfully (the saboteur's :class:`WorkerCrashed` makes the
  shim answer like a dead pipe: sends raise ``BrokenPipeError``, recvs
  raise ``EOFError``).  Property tests and the hypothesis stateful
  machine run thousands of daemon lifecycles; process spawning at that
  rate would drown the suite, and the protocol surface is identical.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.daemon.crash import CrashPlan, WorkerCrashed
from repro.daemon.worker import WorkerState, worker_main


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context("spawn")


class InlineConn:
    """Pipe-shaped shim over a synchronous :class:`WorkerState`."""

    def __init__(self, state: WorkerState) -> None:
        self.state = state
        self._replies: List[Tuple[Any, ...]] = []
        self.dead = False
        self.crash_mode: Optional[str] = None

    def send(self, msg: Tuple[Any, ...]) -> None:
        if self.dead:
            raise BrokenPipeError("inline worker has crashed")
        try:
            self._replies.extend(self.state.handle(msg))
        except WorkerCrashed as exc:
            # the worker died mid-batch: no reply for this message, and
            # the conn behaves like a closed pipe from now on.
            self.dead = True
            self.crash_mode = exc.mode
        except Exception:
            self.dead = True
            raise

    def poll(self, timeout: Optional[float] = None) -> bool:
        return bool(self._replies) or self.dead

    def recv(self) -> Tuple[Any, ...]:
        if self._replies:
            return self._replies.pop(0)
        raise EOFError("inline worker has no reply")

    def close(self) -> None:
        self.dead = True


class Shard:
    """Server-side handle for one worker (any transport)."""

    def __init__(self, shard_id: int, conn, proc=None, generation: int = 0
                 ) -> None:
        self.id = shard_id
        self.conn = conn
        self.proc = proc
        self.generation = generation
        self.lock = threading.Lock()
        self.sessions: Set[str] = set()
        #: ops currently admitted but not yet answered (backpressure).
        self.inflight = 0
        #: set when a batch/ping timed out; cleared by recovery.
        self.suspect = False
        self.batch_seq = 0
        #: replies with batch ids at or below this are stale: their
        #: deadline expired and their ops were already EAGAIN'ed.
        self.discard_floor = -1

    @property
    def alive(self) -> bool:
        if self.suspect:
            return False
        if self.proc is not None:
            return self.proc.is_alive()
        return not self.conn.dead

    @property
    def exitcode(self) -> Optional[int]:
        if self.proc is not None:
            return self.proc.exitcode
        return 3 if self.conn.dead else None

    def next_batch_id(self) -> int:
        self.batch_seq += 1
        return self.batch_seq

    def terminate(self) -> None:
        """Hard-kill the worker (wedge recovery / final cleanup)."""
        try:
            self.conn.close()
        except Exception:
            pass
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.kill()
            self.proc.join(timeout=5.0)


class ProcessTransport:
    """One real worker process per shard."""

    name = "process"

    def __init__(self) -> None:
        self._ctx = _mp_context()

    def spawn(self, shard_id: int, generation: int,
              crash_plan: Optional[CrashPlan]) -> Shard:
        parent, child = self._ctx.Pipe()
        wire = crash_plan.to_wire() if crash_plan is not None else None
        proc = self._ctx.Process(
            target=worker_main,
            args=(child, shard_id, generation, wire),
            name=f"papid-worker-{shard_id}.{generation}",
            daemon=True,
        )
        proc.start()
        child.close()
        return Shard(shard_id, parent, proc=proc, generation=generation)


class InlineTransport:
    """Synchronous in-process workers behind pipe-shaped shims."""

    name = "inline"

    def spawn(self, shard_id: int, generation: int,
              crash_plan: Optional[CrashPlan]) -> Shard:
        saboteur = None
        if crash_plan is not None:
            saboteur = crash_plan.saboteur(shard_id, generation, inline=True)
        state = WorkerState(shard_id, generation, saboteur=saboteur)
        return Shard(shard_id, InlineConn(state), proc=None,
                     generation=generation)


TRANSPORTS: Dict[str, Any] = {
    "process": ProcessTransport,
    "inline": InlineTransport,
}


def make_transport(name: str):
    try:
        return TRANSPORTS[name]()
    except KeyError:
        raise ValueError(
            f"unknown papid transport {name!r}; known: {sorted(TRANSPORTS)}"
        ) from None

"""Property-based tests: counter-allocation matching invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    MappingProblem,
    first_fit,
    max_cardinality_matching,
    max_weight_matching,
)

MAX_EVENTS = 6
MAX_COUNTERS = 5


@st.composite
def problems(draw):
    n_events = draw(st.integers(min_value=0, max_value=MAX_EVENTS))
    n_counters = draw(st.integers(min_value=1, max_value=MAX_COUNTERS))
    events = [f"e{i}" for i in range(n_events)]
    allowed = {}
    for ev in events:
        allowed[ev] = frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_counters - 1),
                    max_size=n_counters,
                )
            )
        )
    return MappingProblem(tuple(events), n_counters, allowed)


def brute_force_max(p: MappingProblem) -> int:
    events = list(p.events)

    def recurse(i, used):
        if i == len(events):
            return 0
        best = recurse(i + 1, used)
        for c in p.allowed[events[i]]:
            if c not in used:
                best = max(best, 1 + recurse(i + 1, used | {c}))
        return best

    return recurse(0, frozenset())


class TestMatchingProperties:
    @given(problems())
    @settings(max_examples=150)
    def test_assignment_is_valid(self, p):
        assignment = max_cardinality_matching(p)
        p.validate_assignment(assignment)  # raises on violation

    @given(problems())
    @settings(max_examples=150)
    def test_cardinality_is_optimal(self, p):
        assert len(max_cardinality_matching(p)) == brute_force_max(p)

    @given(problems())
    @settings(max_examples=100)
    def test_weight_solver_matches_cardinality_on_uniform_weights(self, p):
        assert len(max_weight_matching(p)) == brute_force_max(p)

    @given(problems())
    @settings(max_examples=100)
    def test_greedy_never_beats_optimal(self, p):
        greedy = first_fit(p)
        optimal = max_cardinality_matching(p)
        assert len(greedy) <= len(optimal)

    @given(problems())
    @settings(max_examples=100)
    def test_greedy_assignment_also_valid(self, p):
        p.validate_assignment(first_fit(p))

    @given(problems())
    @settings(max_examples=60)
    def test_matching_is_deterministic(self, p):
        assert max_cardinality_matching(p) == max_cardinality_matching(p)

    @given(problems())
    @settings(max_examples=60)
    def test_upper_bound_respected(self, p):
        assert len(max_cardinality_matching(p)) <= p.feasible_upper_bound()

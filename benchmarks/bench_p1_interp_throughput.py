"""P1: simulator throughput -- interpreter vs the block execution engine.

Not a paper experiment: this guards the engine that makes the paper
experiments affordable.  Three workload shapes stress the three engine
paths:

- ``loop_heavy``  -- a steady counted loop, O(1) bulk replay;
- ``branchy``     -- data-dependent branches, compiled blocks only;
- ``probed``      -- a probe in the hot loop, forced slow-path crossings.

The headline metrics are *speedup ratios* (engine time vs interpreter
time on the same host), which are stable across machines; absolute
instructions/second are reported for context only.  The committed
baseline in ``BENCH_p1_interp_throughput.json`` stores the expected
ratios; ``--check`` fails when a ratio regresses by more than 20%,
``--update-baseline`` rewrites it and appends to the trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _shared import emit, run_once
from repro.analysis import Table
from repro.hw import Assembler, Machine, MachineConfig

BASELINE_PATH = Path(__file__).parent / "BENCH_p1_interp_throughput.json"

#: a regression worse than this factor vs the baseline ratio fails --check.
REGRESSION_TOLERANCE = 0.20

#: baseline ratios below this are noise-dominated (the workload runs
#: mostly on the slow path, so engine and interpreter times are nearly
#: equal); they are reported and tracked but not regression-gated.
GATE_MIN_BASELINE = 1.5

#: floor asserted regardless of baseline: the whole point of the engine.
MIN_LOOP_HEAVY_SPEEDUP = 5.0


def loop_heavy(n=120_000):
    """Steady counted loop: invariant FP recomputation + affine counters.

    This is the replay-eligible shape (an accumulating ``f3 = f3*s + c``
    would rightly be rejected -- its value changes every iteration)."""
    asm = Assembler(name="loop_heavy")
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.fli("f1", 1.0001)
    asm.fli("f2", 0.75)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f1")
    asm.fmul("f4", "f1", "f2")
    asm.addi("r4", "r4", 3)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


def branchy(n=40_000):
    """Alternates branch direction on a data-dependent parity test."""
    asm = Assembler(name="branchy")
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.li("r5", 2)
    asm.label("loop")
    asm.div("r3", "r1", "r5")
    asm.muli("r4", "r3", 2)
    asm.sub("r6", "r1", "r4")
    asm.beq("r6", "r0", "even")
    asm.addi("r7", "r7", 1)
    asm.jmp("join")
    asm.label("even")
    asm.addi("r8", "r8", 1)
    asm.label("join")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


def probed(n=30_000):
    asm = Assembler(name="probed")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.label("loop")
    asm.probe(1)
    asm.addi("r4", "r4", 7)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


WORKLOADS = [("loop_heavy", loop_heavy), ("branchy", branchy),
             ("probed", probed)]


def _time_run(prog, block_engine: bool):
    m = Machine(MachineConfig(block_engine=block_engine))
    m.load(prog)
    if prog.name == "probed":
        m.register_probe(1, lambda pid, cpu: None)
    t0 = time.perf_counter()
    result = m.run_to_completion()
    elapsed = time.perf_counter() - t0
    return elapsed, result.instructions, list(m.counts)


def run_experiment():
    rows = []
    for name, build in WORKLOADS:
        prog = build()
        t_interp, n_interp, c_interp = _time_run(prog, block_engine=False)
        t_engine, n_engine, c_engine = _time_run(prog, block_engine=True)
        assert n_interp == n_engine and c_interp == c_engine, name
        rows.append({
            "workload": name,
            "instructions": n_interp,
            "interp_seconds": t_interp,
            "engine_seconds": t_engine,
            "interp_ips": n_interp / t_interp,
            "engine_ips": n_engine / t_engine,
            "speedup": t_interp / t_engine,
        })
    return rows


def render(rows) -> str:
    table = Table(
        ["workload", "instructions", "interp ins/s", "engine ins/s",
         "speedup"],
        title="P1: interpreter vs block-engine throughput (bit-exact paths)",
    )
    for r in rows:
        table.add_row(
            r["workload"], r["instructions"],
            f"{r['interp_ips']:,.0f}", f"{r['engine_ips']:,.0f}",
            f"{r['speedup']:.1f}x",
        )
    return table.render()


def load_baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def check_against_baseline(rows, baseline) -> list:
    """Regression messages ([] = pass): ratio drops >20% vs baseline."""
    problems = []
    expected = baseline["speedups"]
    for r in rows:
        name = r["workload"]
        if name not in expected or expected[name] < GATE_MIN_BASELINE:
            continue
        floor = expected[name] * (1.0 - REGRESSION_TOLERANCE)
        if r["speedup"] < floor:
            problems.append(
                f"{name}: speedup {r['speedup']:.1f}x below "
                f"{floor:.1f}x (baseline {expected[name]:.1f}x - 20%)"
            )
    return problems


def update_baseline(rows) -> None:
    baseline = load_baseline() or {"speedups": {}, "trajectory": []}
    baseline["speedups"] = {r["workload"]: round(r["speedup"], 1)
                            for r in rows}
    baseline["trajectory"].append({
        r["workload"]: round(r["speedup"], 1) for r in rows
    })
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")


def bench_p1_interp_throughput(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)
    emit(capsys, render(rows))
    by_name = {r["workload"]: r for r in rows}
    # the tentpole acceptance: >= 5x on the loop-heavy workload
    assert by_name["loop_heavy"]["speedup"] >= MIN_LOOP_HEAVY_SPEEDUP
    # compiled blocks beat the interpreter even without replay
    assert by_name["branchy"]["speedup"] > 1.0
    baseline = load_baseline()
    if baseline is not None:
        problems = check_against_baseline(rows, baseline)
        assert not problems, problems


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail on >20%% speedup regression vs baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline ratios")
    args = parser.parse_args(argv)

    rows = run_experiment()
    print(render(rows))
    by_name = {r["workload"]: r for r in rows}
    if by_name["loop_heavy"]["speedup"] < MIN_LOOP_HEAVY_SPEEDUP:
        print(f"FAIL: loop_heavy speedup "
              f"{by_name['loop_heavy']['speedup']:.1f}x < "
              f"{MIN_LOOP_HEAVY_SPEEDUP:.0f}x floor")
        return 1
    if args.update_baseline:
        update_baseline(rows)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if args.check:
        baseline = load_baseline()
        if baseline is None:
            print(f"no baseline at {BASELINE_PATH}; "
                  f"run with --update-baseline first")
            return 1
        problems = check_against_baseline(rows, baseline)
        for p in problems:
            print("FAIL:", p)
        if problems:
            return 1
        print("ok: all speedups within 20% of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

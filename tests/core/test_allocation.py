"""Unit tests: counter allocation (graph model, matching, greedy, translate)."""

import pytest

from repro.core.allocation import (
    AllocationResult,
    MappingProblem,
    allocate,
    allocate_greedy,
    first_fit,
    max_cardinality_matching,
    max_weight_matching,
)
from repro.platforms import create


def problem(events, n, allowed, weights=None):
    return MappingProblem.build(events, n, allowed, weights)


class TestMappingProblem:
    def test_none_means_any_counter(self):
        p = problem(["a"], 3, {"a": None})
        assert p.allowed["a"] == frozenset({0, 1, 2})

    def test_duplicate_events_rejected(self):
        with pytest.raises(ValueError):
            MappingProblem(("a", "a"), 2, {"a": frozenset({0})})

    def test_out_of_range_counter_rejected(self):
        with pytest.raises(ValueError):
            problem(["a"], 2, {"a": [5]})

    def test_validate_assignment_catches_reuse(self):
        p = problem(["a", "b"], 2, {"a": None, "b": None})
        with pytest.raises(ValueError):
            p.validate_assignment({"a": 0, "b": 0})

    def test_validate_assignment_catches_disallowed(self):
        p = problem(["a"], 2, {"a": [1]})
        with pytest.raises(ValueError):
            p.validate_assignment({"a": 0})


class TestMaxCardinality:
    def test_simple_full_matching(self):
        p = problem(["a", "b"], 2, {"a": None, "b": None})
        m = max_cardinality_matching(p)
        assert len(m) == 2

    def test_classic_augmenting_case(self):
        """a fits both counters, b only counter 0: optimal places both."""
        p = problem(["a", "b"], 2, {"a": [0, 1], "b": [0]})
        m = max_cardinality_matching(p)
        assert m == {"a": 1, "b": 0}

    def test_first_fit_fails_where_optimal_succeeds(self):
        p = problem(["a", "b"], 2, {"a": [0, 1], "b": [0]})
        greedy = first_fit(p)
        assert len(greedy) == 1  # a grabs counter 0, b is stranded
        assert len(max_cardinality_matching(p)) == 2

    def test_overcommitted_partial(self):
        p = problem(["a", "b", "c"], 2, {"a": None, "b": None, "c": None})
        m = max_cardinality_matching(p)
        assert len(m) == 2

    def test_infeasible_event_left_out(self):
        p = problem(["a", "b"], 2, {"a": [], "b": [1]})
        m = max_cardinality_matching(p)
        assert m == {"b": 1}

    def test_chain_augmentation(self):
        """Three events with nested constraints force chained reassignment."""
        p = problem(
            ["a", "b", "c"], 3,
            {"a": [0, 1, 2], "b": [0, 1], "c": [0]},
        )
        m = max_cardinality_matching(p)
        assert m == {"a": 2, "b": 1, "c": 0}

    def test_empty_problem(self):
        p = problem([], 4, {})
        assert max_cardinality_matching(p) == {}


class TestMaxWeight:
    def test_prefers_high_weight_event(self):
        p = problem(
            ["low", "high"], 1,
            {"low": [0], "high": [0]},
            weights={"low": 1.0, "high": 5.0},
        )
        m = max_weight_matching(p)
        assert m == {"high": 0}

    def test_uniform_weights_match_cardinality(self):
        p = problem(
            ["a", "b", "c"], 3,
            {"a": [0, 1], "b": [1, 2], "c": [0]},
        )
        mc = max_cardinality_matching(p)
        mw = max_weight_matching(p)
        assert len(mw) == len(mc) == 3

    def test_weight_beats_cardinality_when_told_to(self):
        # one heavy event that blocks two light ones
        p = problem(
            ["heavy", "l1", "l2"], 2,
            {"heavy": [0], "l1": [0], "l2": [0]},
            weights={"heavy": 10.0, "l1": 1.0, "l2": 1.0},
        )
        m = max_weight_matching(p)
        assert "heavy" in m

    def test_empty(self):
        assert max_weight_matching(problem([], 2, {})) == {}


class TestBruteForceParity:
    """Optimal matcher vs exhaustive search on all small instances."""

    def _brute_force_max(self, p: MappingProblem) -> int:
        events = list(p.events)

        def recurse(i, used):
            if i == len(events):
                return 0
            best = recurse(i + 1, used)
            for c in p.allowed[events[i]]:
                if c not in used:
                    best = max(best, 1 + recurse(i + 1, used | {c}))
            return best

        return recurse(0, frozenset())

    def test_parity_on_enumerated_instances(self):
        import itertools

        n_counters = 3
        counter_subsets = [
            frozenset(s)
            for r in range(n_counters + 1)
            for s in itertools.combinations(range(n_counters), r)
        ]
        # all 3-event problems over subsets of 3 counters (sampled grid)
        for sa in counter_subsets:
            for sb in counter_subsets[::2]:
                for sc in counter_subsets[::3]:
                    p = MappingProblem(
                        ("a", "b", "c"), n_counters,
                        {"a": sa, "b": sb, "c": sc},
                    )
                    got = len(max_cardinality_matching(p))
                    want = self._brute_force_max(p)
                    assert got == want, (sa, sb, sc)


class TestTranslate:
    def test_constraint_platform_roundtrip(self):
        sub = create("simX86")
        events = [sub.query_native(n) for n in ("CPU_CLK_UNHALTED", "FLOPS")]
        result = allocate(sub, events)
        assert result.complete
        assert result.assignment["FLOPS"] == 0  # its only legal home

    def test_greedy_vs_optimal_on_simx86(self):
        sub = create("simX86")
        # add order matters for first-fit: the clock grabs counter 0 first
        events = [sub.query_native(n) for n in ("DTLB_MISS", "DCU_LINES_IN")]
        # both are counter-0-only: nobody can map both
        assert not allocate(sub, events).complete
        events2 = [sub.query_native(n) for n in ("CPU_CLK_UNHALTED", "FLOPS")]
        greedy = allocate_greedy(sub, events2)
        optimal = allocate(sub, events2)
        assert optimal.complete
        assert not greedy.complete  # clock took counter 0, FLOPS stranded

    def test_group_platform_single_group(self):
        sub = create("simPOWER")
        names = ["PM_CYC", "PM_FPU_INS", "PM_FPU_FMA", "PM_FPU_CVT"]
        events = [sub.query_native(n) for n in names]
        result = allocate(sub, events)
        assert result.complete
        assert result.group == 1  # the floating point study group
        sub2 = create("simPOWER")
        # events from different groups cannot coexist
        events2 = [sub2.query_native(n) for n in ("PM_DTLB_MISS", "PM_BR_MPRED")]
        result2 = allocate(sub2, events2)
        assert not result2.complete

    def test_group_greedy_locks_first_group(self):
        sub = create("simPOWER")
        # PM_CYC appears in group 0 first; PM_FPU_CVT only in group 1
        events = [sub.query_native(n) for n in ("PM_CYC", "PM_FPU_CVT")]
        greedy = allocate_greedy(sub, events)
        optimal = allocate(sub, events)
        assert not greedy.complete      # locked onto group 0
        assert optimal.complete         # found group 1

    def test_duplicate_events_rejected(self):
        sub = create("simT3E")
        ev = sub.query_native("CYC_CNT")
        with pytest.raises(ValueError):
            allocate(sub, [ev, ev])

    def test_free_platform_always_fits_up_to_n(self):
        sub = create("simT3E")
        events = list(sub.native_events.values())[:4]
        result = allocate(sub, events)
        assert result.complete
        greedy = allocate_greedy(sub, events)
        assert greedy.complete  # no constraints: greedy == optimal

    def test_result_accessors(self):
        result = AllocationResult({"a": 0}, None, ("b",))
        assert not result.complete
        assert result.n_placed == 1

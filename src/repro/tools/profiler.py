"""A TAU/VProf-style multi-metric profiler built on dynaprof + PAPI.

Section 3: "If TAU is configured with the multiple counters option, then
up to 25 metrics may be specified and a separate profile generated for
each.  These profiles for the same run can then be compared to see
important correlations, such as for example the correlation of time with
operation counts and cache or TLB misses."

Metrics are measured in *batches*: each batch is a set of presets that
the platform's counters can host simultaneously (found with the real
allocator); every batch is a separate run on a fresh machine, and
because the simulator is deterministic the runs are identical -- which
is exactly the property tool developers rely on when they merge profiles
from repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import Table
from repro.analysis.stats import pearson, rank_by
from repro.core import constants as C
from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.platforms import create
from repro.tools.dynaprof import Dynaprof, PapiProbe
from repro.workloads.builder import Workload


@dataclass
class ProfileReport:
    """Per-function, per-metric exclusive and inclusive totals."""

    platform: str
    metrics: List[str]
    functions: List[str]
    exclusive: Dict[str, Dict[str, float]] = field(default_factory=dict)
    inclusive: Dict[str, Dict[str, float]] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)

    def metric_by_function(self, metric: str,
                           inclusive: bool = False) -> Dict[str, float]:
        table = self.inclusive if inclusive else self.exclusive
        return {fn: table.get(fn, {}).get(metric, 0.0) for fn in self.functions}

    def hottest(self, metric: str) -> str:
        """Function with the largest exclusive share of *metric*."""
        ranked = rank_by(self.metric_by_function(metric))
        return ranked[0][0]

    def correlation(self, metric_a: str, metric_b: str) -> float:
        """Cross-function correlation of two metrics (Section 3)."""
        xs = [self.exclusive.get(fn, {}).get(metric_a, 0.0)
              for fn in self.functions]
        ys = [self.exclusive.get(fn, {}).get(metric_b, 0.0)
              for fn in self.functions]
        return pearson(xs, ys)

    def derived_ratio(self, numerator: str, denominator: str
                      ) -> Dict[str, float]:
        """Event-based ratios per function (e.g. misses per instruction)."""
        num = self.metric_by_function(numerator)
        den = self.metric_by_function(denominator)
        return {
            fn: (num[fn] / den[fn] if den[fn] else 0.0)
            for fn in self.functions
        }

    def to_text(self, inclusive: bool = False) -> str:
        kind = "inclusive" if inclusive else "exclusive"
        table = Table(
            ["function", "calls"] + self.metrics,
            title=f"profile [{self.platform}] ({kind})",
        )
        source = self.inclusive if inclusive else self.exclusive
        for fn in self.functions:
            row = source.get(fn, {})
            table.add_row(
                fn, self.calls.get(fn, 0),
                *[row.get(m, 0.0) for m in self.metrics],
            )
        return table.render()


class Profiler:
    """Multi-metric function profiler for one platform."""

    def __init__(self, platform_name: str, metrics: Sequence[str],
                 seed: int = 12345) -> None:
        if not metrics:
            raise InvalidArgumentError("need at least one metric")
        if len(metrics) > C.PAPI_MAX_TOOL_METRICS:
            raise InvalidArgumentError(
                f"at most {C.PAPI_MAX_TOOL_METRICS} metrics are supported "
                f"(the TAU limit)"
            )
        self.platform_name = platform_name
        self.metrics = list(metrics)
        self.seed = seed

    # ------------------------------------------------------------------

    def _batches(self) -> List[List[str]]:
        """Split metrics into counter-feasible batches using a probe
        EventSet on a scratch substrate (the allocator does the work)."""
        scratch = create(self.platform_name, seed=self.seed)
        papi = Papi(scratch)
        batches: List[List[str]] = []
        remaining = list(self.metrics)
        while remaining:
            es = papi.create_eventset()
            batch: List[str] = []
            rest: List[str] = []
            for name in remaining:
                try:
                    es.add_event(papi.event_name_to_code(name))
                    batch.append(name)
                except Exception:
                    rest.append(name)
            papi.destroy_eventset(es)
            if not batch:
                raise InvalidArgumentError(
                    f"metrics {rest} cannot be counted on {self.platform_name}"
                )
            batches.append(batch)
            remaining = rest
        return batches

    def profile(self, make_workload, functions: Optional[Sequence[str]] = None
                ) -> ProfileReport:
        """Profile the workload produced by *make_workload()*.

        *make_workload* is a zero-argument factory so each batch gets an
        identical fresh program (determinism across batch runs).
        """
        batches = self._batches()
        merged_excl: Dict[str, Dict[str, float]] = {}
        merged_incl: Dict[str, Dict[str, float]] = {}
        calls: Dict[str, int] = {}
        fn_order: List[str] = []

        for batch in batches:
            substrate = create(self.platform_name, seed=self.seed)
            papi = Papi(substrate)
            dyn = Dynaprof(substrate, papi)
            workload = make_workload()
            program = (
                workload.program if isinstance(workload, Workload) else workload
            )
            dyn.load(program)
            probe = dyn.add_probe(PapiProbe(papi, batch))
            dyn.instrument(functions)
            dyn.run()
            for name, prof in probe.profiles.items():
                if name not in fn_order:
                    fn_order.append(name)
                merged_excl.setdefault(name, {}).update(prof.exclusive)
                merged_incl.setdefault(name, {}).update(prof.inclusive)
                calls[name] = prof.calls

        return ProfileReport(
            platform=self.platform_name,
            metrics=self.metrics,
            functions=fn_order,
            exclusive=merged_excl,
            inclusive=merged_incl,
            calls=calls,
        )

"""Greedy genome shrinking: refutations become minimal reproducers.

A raw refuting program is usually hundreds of dynamic instructions of
mostly-irrelevant structure; what a bug report needs is the smallest
program that still disagrees with the model.  Because the generator
works from a JSON-serializable :class:`~repro.refute.generator.Genome`,
shrinking is structural -- drop whole segments, drop body ops, collapse
trip counts, drop unused leaves -- rather than token-level, so every
candidate is by construction a valid, terminating program.

The predicate the engine passes in re-runs the *full* check (predict,
measure, compare) on the candidate, so a shrink step is kept only when
the disagreement survives.  Greedy passes repeat to a fixed point; the
result is 1-minimal with respect to the shrink moves (no single move
preserves the refutation), which in practice lands well under the
30-instruction reproducer ceiling the acceptance criteria demand.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.refute.generator import Genome, Segment

__all__ = ["shrink_genome"]

#: Trip counts tried when collapsing a segment, smallest first.
_TRIP_LADDER = (1, 2)


def _with_segments(genome: Genome, segments: List[Segment]) -> Genome:
    return Genome(seed=genome.seed, segments=tuple(segments),
                  leaves=genome.leaves)


def _drop_unused_leaves(genome: Genome) -> Genome:
    """Remove leaves no calls-segment references (renumbering is handled
    by the generator, which indexes leaves modulo the live count)."""
    if not genome.leaves:
        return genome
    if any(s.kind == "calls" for s in genome.segments):
        return genome
    return Genome(seed=genome.seed, segments=genome.segments, leaves=())


def shrink_genome(
    genome: Genome,
    still_refutes: Callable[[Genome], bool],
    max_checks: int = 200,
) -> Genome:
    """Greedily shrink *genome* while ``still_refutes`` holds.

    ``still_refutes`` must be deterministic and must hold for *genome*
    itself (the engine only shrinks confirmed refutations).  At most
    *max_checks* candidate evaluations are spent; the best genome found
    so far is returned when the budget runs out, so shrinking is always
    safe to call even with an expensive predicate.
    """
    best = genome
    checks = 0

    def try_candidate(cand: Genome) -> bool:
        nonlocal best, checks
        if checks >= max_checks:
            return False
        if not cand.segments:
            return False
        checks += 1
        if still_refutes(cand):
            best = cand
            return True
        return False

    progress = True
    while progress and checks < max_checks:
        progress = False

        # Pass 1: drop whole segments (largest structural win first).
        i = 0
        while i < len(best.segments):
            if len(best.segments) == 1:
                break
            segs = list(best.segments)
            del segs[i]
            if try_candidate(_drop_unused_leaves(_with_segments(best, segs))):
                progress = True
            else:
                i += 1

        # Pass 2: collapse trip counts toward 1.
        for i, seg in enumerate(best.segments):
            for trips in _TRIP_LADDER:
                if seg.trips <= trips:
                    break
                segs = list(best.segments)
                segs[i] = Segment(kind=seg.kind, trips=trips, ops=seg.ops,
                                  stride=seg.stride)
                if try_candidate(_with_segments(best, segs)):
                    progress = True
                    break

        # Pass 3: drop body ops one at a time.
        for i in range(len(best.segments)):
            j = 0
            while j < len(best.segments[i].ops):
                seg = best.segments[i]
                ops = seg.ops[:j] + seg.ops[j + 1:]
                segs = list(best.segments)
                segs[i] = Segment(kind=seg.kind, trips=seg.trips, ops=ops,
                                  stride=seg.stride)
                if try_candidate(_with_segments(best, segs)):
                    progress = True
                else:
                    j += 1

        # Pass 4: simplify segment kinds to a plain loop (cheapest shape).
        for i, seg in enumerate(best.segments):
            if seg.kind == "loop":
                continue
            segs = list(best.segments)
            segs[i] = Segment(kind="loop", trips=seg.trips, ops=seg.ops)
            if try_candidate(_drop_unused_leaves(_with_segments(best, segs))):
                progress = True

        # Pass 5: shorten leaf bodies, then drop leaves entirely.
        for li in range(len(best.leaves)):
            leaf = best.leaves[li]
            if len(leaf) > 1:
                leaves = list(best.leaves)
                leaves[li] = leaf[:1]
                cand = Genome(seed=best.seed, segments=best.segments,
                              leaves=tuple(leaves))
                if try_candidate(cand):
                    progress = True
        cand = _drop_unused_leaves(best)
        if cand is not best and cand.leaves != best.leaves:
            if try_candidate(cand):
                progress = True

    return best

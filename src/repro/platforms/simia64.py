"""simIA64: an Itanium2-like platform with Event Address Registers.

The paper: "A similar capability exists on the Itanium and Itanium2
platforms, where Event Address Registers (EARs) accurately identify the
instruction and data addresses for some events."  This platform counts
directly (perfmon-style syscalls of moderate cost), has four counters
with light constraints, an in-order core (tiny skid) and EAR hardware
that experiment E5 uses for precise miss attribution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hw.cache import CacheConfig, HierarchyConfig, TLBConfig
from repro.hw.cpu import CPUConfig
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig
from repro.platforms.base import AccessCosts, CounterGroup, NativeEvent, Substrate


class SimIA64(Substrate):
    NAME = "simIA64"
    STYLE = "syscall"
    COUNTING = "direct"
    DESCRIPTION = "Itanium2-like: perfmon syscalls, 4 counters, EAR hardware"
    COSTS = AccessCosts(
        read=1100,
        read_per_counter=90,
        start=1400,
        stop=1300,
        program=1500,
        reset=900,
        pollute_lines=4,
    )
    HAS_FMA = True
    #: near-precise interrupts (EPIC), plus EARs for exact miss pcs.
    PROFILING = "overflow"

    def _machine_config(self, seed: int) -> MachineConfig:
        return MachineConfig(
            name=self.NAME,
            cpu=CPUConfig(predictor="gshare", branch_penalty=6),
            hierarchy=HierarchyConfig(
                l1d=CacheConfig("L1D", size_bytes=8192, line_bytes=64, assoc=4),
                l1i=CacheConfig("L1I", size_bytes=8192, line_bytes=64, assoc=4),
                l2=CacheConfig("L2", size_bytes=131072, line_bytes=128, assoc=8),
                tlb=TLBConfig(entries=128, page_bytes=8192),
                l2_latency=6,
                mem_latency=50,
                tlb_walk_latency=25,
            ),
            # In-order EPIC core: interrupts are nearly precise even
            # without the EARs.
            pmu=PMUConfig(
                n_counters=4, skid_max=2, has_ear=True, interrupt_cost=100
            ),
            mhz=900,
            seed=seed,
        )

    def _native_events(self) -> Sequence[NativeEvent]:
        return [
            NativeEvent("CPU_CYCLES", (Signal.TOT_CYC,), "CPU cycles"),
            NativeEvent("IA64_INST_RETIRED", (Signal.TOT_INS,), "instructions"),
            NativeEvent(
                "FP_OPS_RETIRED",
                (
                    Signal.FP_ADD,
                    Signal.FP_MUL,
                    Signal.FP_DIV,
                    Signal.FP_SQRT,
                    Signal.FP_FMA,
                ),
                "FP operations retired (FMA counts once)",
            ),
            NativeEvent("FP_FMA_RETIRED", (Signal.FP_FMA,), "FMA retired"),
            NativeEvent("LOADS_RETIRED", (Signal.LD_INS,), "loads retired"),
            NativeEvent("STORES_RETIRED", (Signal.SR_INS,), "stores retired"),
            NativeEvent(
                "L1D_READ_MISSES",
                (Signal.L1D_MISS,),
                "L1D misses",
                allowed_counters=(2, 3),  # EAR-adjacent counters only
            ),
            NativeEvent("L1I_MISSES", (Signal.L1I_MISS,), "L1I misses"),
            NativeEvent(
                "L2_MISSES",
                (Signal.L2_MISS,),
                "L2 misses",
                allowed_counters=(2, 3),
            ),
            NativeEvent(
                "DTLB_MISSES",
                (Signal.TLB_DM,),
                "DTLB misses",
                allowed_counters=(2, 3),
            ),
            NativeEvent("BR_RETIRED", (Signal.BR_INS,), "branches retired"),
            NativeEvent("BR_MISPRED", (Signal.BR_MSP,), "branch mispredicts"),
            NativeEvent("BACK_END_STALLS", (Signal.STL_CYC,), "stall cycles"),
            NativeEvent("MEM_STALLS", (Signal.MEM_RCY,), "memory stall cycles"),
        ]

    def _groups(self) -> Optional[List[CounterGroup]]:
        return None

    def _uncore_counters(self) -> int:
        # perfmon exposes the chipset (bus unit) counter bank in full.
        return 4

    # -- EAR access (used by precise profiling, E5) -------------------------

    def add_ear(self, period: int, event: str = "l1d_miss"):
        """Arm an event address register; returns the EAR object."""
        self._charge(self.COSTS.program)
        return self.machine.pmu.add_ear(period, event)

    def remove_ear(self, ear) -> None:
        self.machine.pmu.remove_ear(ear)

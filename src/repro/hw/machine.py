"""The simulated machine: CPU + memory hierarchy + PMU + clocks.

A :class:`Machine` is what a platform substrate (see
:mod:`repro.platforms`) wraps.  It owns two clocks:

- **user cycles** -- ``counts[TOT_CYC]`` -- advanced by program execution
  (including interrupt delivery costs, which delay the program);
- **system cycles** -- advanced by :meth:`Machine.charge`, which is how
  counter-interface code (reads, starts, syscalls into the kernel
  substrate) bills its cost to the machine.

``real_cycles`` (their sum) is the wall clock; the overhead experiments
(E1/E7) compare real_cycles between instrumented and uninstrumented runs,
exactly as the paper measured wall-clock dilation.  :meth:`Machine.charge`
can also *pollute* the data cache with the interface's working set,
modelling the perturbation discussed in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hw.cache import HierarchyConfig, MemoryHierarchy, default_hierarchy
from repro.hw.cpu import CPU, CPUConfig, MachineFault, RunResult
from repro.hw.events import Signal, fresh_counts
from repro.hw.isa import Program
from repro.hw.pmu import PMU, PMUConfig


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of one simulated machine."""

    name: str = "sim"
    cpu: CPUConfig = field(default_factory=CPUConfig)
    hierarchy: HierarchyConfig = field(default_factory=default_hierarchy)
    pmu: PMUConfig = field(default_factory=PMUConfig)
    #: simulated core clock, cycles per microsecond (500 => 500 MHz).
    mhz: int = 500
    seed: int = 12345
    #: basic-block execution engine switch (see repro/hw/blockcache.py).
    #: The engine is bit-exact with the interpreter -- identical counts,
    #: cache state and interrupt delivery -- so this only trades
    #: simulation speed against the pure-interpreter reference path.
    block_engine: bool = True
    #: engine tier: "off" (pure interpreter), "block" (per-block
    #: compilation + steady-loop replay) or "trace" (block tier plus
    #: superblock traces and compiled multi-block regions).  ``None``
    #: derives the tier from ``block_engine`` ("trace" when True, the
    #: default).  All tiers are bit-exact with each other.
    engine: Optional[str] = None
    #: number of CPUs.  Each CPU gets its own signal-counts array, PMU
    #: and block engine (private decode caches); the memory hierarchy is
    #: shared.  ``ncpus=1`` is bit-exact with the historical single-CPU
    #: machine.
    ncpus: int = 1

    def __post_init__(self) -> None:
        if self.mhz < 1:
            raise ValueError("clock rate must be at least 1 MHz")
        if self.ncpus < 1:
            raise ValueError("a machine needs at least one CPU")
        if self.engine is not None and self.engine not in ("off", "block", "trace"):
            raise ValueError(
                f"unknown engine tier {self.engine!r}; "
                "expected 'off', 'block' or 'trace'"
            )

    @property
    def engine_tier(self) -> str:
        """Resolved engine tier: explicit ``engine`` wins, else the
        legacy ``block_engine`` flag selects trace/off."""
        if self.engine is not None:
            return self.engine
        return "trace" if self.block_engine else "off"


class Machine:
    """One simulated computer (possibly SMP).

    Each CPU owns a private signal-counts array shared by reference with
    its private PMU (which reads it), so counter reads are just integer
    subtraction -- the same cheap register-delta model as real hardware.
    The memory hierarchy (caches, TLB, predictor-free parts) is shared by
    every CPU, as on a simple shared-cache SMP.

    For backwards compatibility ``machine.cpu``, ``machine.pmu`` and
    ``machine.counts`` refer to CPU 0; single-CPU code keeps working
    unchanged and is bit-exact with the historical machine.
    """

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.system_cycles = 0
        self._probes: Dict[int, Callable[[int, CPU], None]] = {}
        self.cpus: List[CPU] = []
        for i in range(self.config.ncpus):
            counts = fresh_counts()
            # CPU 0 keeps the machine seed exactly (bit-exact with the
            # single-CPU machine); siblings get derived streams so their
            # skid/sampling jitter is independent.
            pmu = PMU(self.config.pmu, counts,
                      seed=self.config.seed + 7919 * i)
            cpu = CPU(
                self.config.cpu,
                hierarchy=self.hierarchy,
                pmu=pmu,
                counts=counts,
                block_engine=self.config.block_engine,
                engine_tier=self.config.engine_tier,
            )
            cpu.cpu_index = i
            cpu.probe_dispatch = self._dispatch_probe
            cpu.probe_resolver = self._probes.get
            self.cpus.append(cpu)
        #: scratch addresses the counter interface touches when polluting;
        #: chosen high so they collide with application lines by indexing.
        self._pollution_base = 1 << 30

    # -- CPU-0 compatibility aliases -----------------------------------

    @property
    def cpu(self) -> CPU:
        return self.cpus[0]

    @property
    def pmu(self) -> PMU:
        return self.cpus[0].pmu

    @property
    def counts(self) -> List[int]:
        return self.cpus[0].counts

    @property
    def ncpus(self) -> int:
        return self.config.ncpus

    # ------------------------------------------------------------------
    # clocks
    # ------------------------------------------------------------------

    @property
    def user_cycles(self) -> int:
        """Execution cycles summed over every CPU."""
        if len(self.cpus) == 1:
            return self.cpus[0].counts[Signal.TOT_CYC]
        return sum(c.counts[Signal.TOT_CYC] for c in self.cpus)

    @property
    def real_cycles(self) -> int:
        return self.user_cycles + self.system_cycles

    @property
    def real_usec(self) -> float:
        return self.real_cycles / self.config.mhz

    def charge(self, cycles: int, pollute_lines: int = 0,
               cpu: int = 0) -> None:
        """Bill *cycles* of counter-interface work to the machine.

        When *pollute_lines* > 0, that many distinct cache lines are
        touched as data accesses (without counting as application events),
        evicting application state -- the paper's cache-pollution effect.
        *cpu* selects which CPU's kernel-cycle signal the work is billed
        to (the CPU the interface call executed on).
        """
        if cycles < 0 or pollute_lines < 0:
            raise ValueError("cannot charge negative work")
        self.system_cycles += cycles
        # kernel-domain cycles are also a signal, so DOM_ALL counters on
        # the cycle event can include interface work (PAPI_set_domain).
        self.cpus[cpu].counts[Signal.SYS_CYC] += cycles
        if pollute_lines:
            line = self.hierarchy.config.l1d.line_bytes
            base = self._pollution_base
            self.hierarchy.pollute(
                base + i * line for i in range(pollute_lines)
            )
        # external state changed behind the CPUs' backs (the hierarchy is
        # shared): flush every block engine and re-arm their steady-loop
        # trials against the new cache contents.
        for c in self.cpus:
            c.engine_barrier()

    # ------------------------------------------------------------------
    # program control
    # ------------------------------------------------------------------

    def load(self, program: Program, heap_words: Optional[int] = None) -> None:
        self.cpu.load(program, heap_words=heap_words)

    @property
    def program(self) -> Optional[Program]:
        return self.cpu.program

    def run(
        self,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> RunResult:
        return self.cpu.run(max_instructions=max_instructions, max_cycles=max_cycles)

    def run_to_completion(self, budget_instructions: int = 50_000_000) -> RunResult:
        """Run until HALT; raises if the budget is exhausted (runaway guard)."""
        result = self.cpu.run(max_instructions=budget_instructions)
        if not result.halted:
            raise MachineFault(
                f"program did not halt within {budget_instructions} instructions"
            )
        return result

    # ------------------------------------------------------------------
    # probes (instrumentation hook used by dynaprof / the PAPI library)
    # ------------------------------------------------------------------

    def register_probe(self, probe_id: int, handler: Callable[[int, CPU], None]) -> None:
        if probe_id in self._probes:
            raise ValueError(f"probe id {probe_id} already registered")
        self._probes[probe_id] = handler
        self._invalidate_engines()

    def unregister_probe(self, probe_id: int) -> None:
        if self._probes.pop(probe_id, None) is not None:
            self._invalidate_engines()

    def clear_probes(self) -> None:
        if self._probes:
            self._probes.clear()
            self._invalidate_engines()

    def _invalidate_engines(self) -> None:
        """Drop compiled code on every CPU after a probe-registry change.

        Compiled regions pre-resolve probe handlers (and compile
        handler-less probes down to bare counts), so any registration
        change makes cached regions stale; recompilation re-resolves
        against the updated registry.
        """
        for c in self.cpus:
            if c.engine is not None:
                c.engine.invalidate()

    def _dispatch_probe(self, probe_id: int, cpu: CPU) -> None:
        handler = self._probes.get(probe_id)
        if handler is not None:
            handler(probe_id, cpu)

    # ------------------------------------------------------------------
    # signal access / reset
    # ------------------------------------------------------------------

    def signal_total(self, signal: int) -> int:
        """Raw machine-lifetime total of one event signal (all CPUs)."""
        if len(self.cpus) == 1:
            return self.cpus[0].counts[signal]
        return sum(c.counts[signal] for c in self.cpus)

    def socket_activity(self) -> Dict[str, int]:
        """Socket-scoped raw activity totals for non-CPU components.

        Uncore and energy counters are free-running at the socket level:
        each entry sums a per-CPU signal over every CPU (or reports shared
        hierarchy geometry), so the totals are invariant under thread
        placement and migration -- the per-CPU split changes, the socket
        sums do not.  Interface charges bill ``SYS_CYC`` only (see
        :meth:`charge`), so none of these totals move when the counter
        interface itself runs.
        """
        return {
            "instructions": self.signal_total(Signal.TOT_INS),
            "cycles": self.signal_total(Signal.TOT_CYC),
            "stores": self.signal_total(Signal.SR_INS),
            "l2_lines_in": self.signal_total(Signal.L2_MISS),
            "tlb_walks": self.signal_total(Signal.TLB_DM),
            "l2_line_bytes": self.hierarchy.l2_line_bytes,
        }

    def engine_stats(self):
        """CPU 0's block-engine counters, or None when the engine is off."""
        return self.cpu.engine_stats()

    def reset(self) -> None:
        """Power-cycle: zero all signals, flush caches, reset the PMUs.

        The loaded program (if any) must be re-loaded afterwards.
        """
        self.system_cycles = 0
        self.hierarchy.flush()
        self.hierarchy.reset_stats()
        for cpu in self.cpus:
            for i in range(len(cpu.counts)):
                cpu.counts[i] = 0
            cpu.pmu.reset()
            cpu.predictor.reset()
            cpu.halted = True
            cpu.program = None
            cpu.code = []
            if cpu.engine is not None:
                cpu.engine.invalidate()
                # pmu.reset() does not clear the flush hook; keep the
                # barrier installed for the machine's lifetime.
                cpu.pmu.set_flush_hook(cpu.engine.flush)
                cpu.pmu.unquiet_hook = cpu.engine.unbind
        self._probes.clear()

"""Unit tests: statistical call sampling for probes."""

import pytest

from repro.core.errors import InvalidArgumentError
from repro.core.library import Papi
from repro.platforms import create
from repro.tools.dynaprof import Dynaprof, PapiProbe
from repro.tools.sampling_probe import SamplingPapiProbe
from repro.workloads import phased


def instrumented_run(platform, probe_cls, k=None, repeats=40):
    substrate = create(platform)
    papi = Papi(substrate)
    dyn = Dynaprof(substrate, papi)
    dyn.load(phased([("fp", 300)], repeats=repeats, names=("work",)))
    if k is None:
        probe = dyn.add_probe(probe_cls(papi, ["PAPI_TOT_CYC"]))
    else:
        probe = dyn.add_probe(probe_cls(papi, ["PAPI_TOT_CYC"], k))
    dyn.instrument(functions=["work"])
    dyn.run()
    return substrate, probe


class TestSamplingProbe:
    def test_k1_matches_full_probe(self):
        _, full = instrumented_run("simPOWER", PapiProbe)
        _, sampled = instrumented_run("simPOWER", SamplingPapiProbe, k=1)
        f = full.profiles["work"]
        s = sampled.profiles["work"]
        assert s.calls == f.calls
        assert s.inclusive["PAPI_TOT_CYC"] == pytest.approx(
            f.inclusive["PAPI_TOT_CYC"], rel=0.02
        )

    def test_all_calls_counted_even_when_skipped(self):
        _, probe = instrumented_run("simPOWER", SamplingPapiProbe, k=8,
                                    repeats=40)
        assert probe.profiles["work"].calls == 40
        assert probe.measured_calls == 5
        assert probe.skipped_calls == 35

    def test_scaled_estimate_close_on_uniform_calls(self):
        """Identical call bodies: the scaled estimate is near exact."""
        _, full = instrumented_run("simPOWER", PapiProbe)
        _, sampled = instrumented_run("simPOWER", SamplingPapiProbe, k=8)
        f = full.profiles["work"].inclusive["PAPI_TOT_CYC"]
        s = sampled.profiles["work"].inclusive["PAPI_TOT_CYC"]
        assert s == pytest.approx(f, rel=0.15)

    def test_sampling_reduces_overhead(self):
        """The whole point: fewer reads, less real-time dilation."""
        sub_full, _ = instrumented_run("simX86", PapiProbe)
        sub_sampled, _ = instrumented_run("simX86", SamplingPapiProbe, k=16)
        assert (
            sub_sampled.machine.system_cycles
            < sub_full.machine.system_cycles / 4
        )

    def test_error_bound_shrinks_with_measured_calls(self):
        _, p8 = instrumented_run("simPOWER", SamplingPapiProbe, k=8,
                                 repeats=64)
        _, p2 = instrumented_run("simPOWER", SamplingPapiProbe, k=2,
                                 repeats=64)
        assert p2.estimate_error_bound("work") < p8.estimate_error_bound("work")

    def test_unknown_function_bound_infinite(self):
        _, probe = instrumented_run("simPOWER", SamplingPapiProbe, k=4)
        assert probe.estimate_error_bound("nope") == float("inf")

    def test_bad_k_rejected(self):
        papi = Papi(create("simPOWER"))
        with pytest.raises(InvalidArgumentError):
            SamplingPapiProbe(papi, ["PAPI_TOT_CYC"], 0)

"""Capture the seed experiment goldens for the differential suite.

Run from the repo root::

    PYTHONPATH=src python -m tests.differential.capture_goldens

(the legacy direct-path invocation
``PYTHONPATH=src python tests/differential/capture_goldens.py``
also still works).

Writes ``goldens_seed.json`` with every E1--E10/A1--A4 canonical table,
block engine on and off.  This was run once against the single-CPU seed
tree (commit c6f6f44) before the SMP layer landed; the committed file
is the frozen reference and should not be regenerated unless the seed
semantics themselves are deliberately revised.  See DESIGN.md
("Regenerating the differential goldens") for the policy.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    from tests.differential.tables import (
        EXPERIMENTS,
        GOLDENS_PATH,
        build_table,
    )
except ImportError:  # direct-path invocation: tables.py sits next to us
    sys.path.insert(0, str(Path(__file__).parent))
    from tables import EXPERIMENTS, GOLDENS_PATH, build_table  # noqa: E402


def main() -> int:
    goldens = {}
    for key in EXPERIMENTS:
        entry = {}
        for mode, engine in (("engine_on", "trace"), ("engine_off", "off")):
            print(f"capturing {key} ({mode}) ...", flush=True)
            entry[mode] = build_table(key, engine)
        goldens[key] = entry
    GOLDENS_PATH.write_text(json.dumps(goldens, indent=1, sort_keys=True)
                            + "\n")
    print(f"wrote {GOLDENS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

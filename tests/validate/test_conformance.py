"""Oracle + virtualization planes: measured counts vs ground truth."""

import pytest

from repro.validate.conformance import (
    SAMPLING_TOLERANCE,
    run_oracle_plane,
    run_virtualization_plane,
)


@pytest.fixture(scope="module")
def direct_cells():
    return run_oracle_plane(["simT3E", "simX86", "simPOWER"])


@pytest.fixture(scope="module")
def sampling_cells():
    return run_oracle_plane(["simALPHA"])


class TestOraclePlane:
    def test_no_failures_on_clean_path(self, direct_cells):
        assert [c for c in direct_cells if c.status == "fail"] == []

    def test_exact_equality_on_direct_substrates(self, direct_cells):
        scored = [c for c in direct_cells if c.status == "pass"]
        assert scored
        assert all(c.actual == c.expected for c in scored)
        assert all(c.error == 0 for c in scored)

    def test_power_drift_cell_flagged(self, direct_cells):
        fp = [c for c in direct_cells
              if c.platform == "simPOWER" and c.name == "PAPI_FP_INS"]
        assert len(fp) == 1 and fp[0].drift
        assert fp[0].status == "pass"      # drift is not a failure
        assert "drift" in fp[0].detail

    def test_skips_carry_reasons(self, direct_cells):
        skips = [c for c in direct_cells if c.status == "skip"]
        assert skips
        assert all(c.detail for c in skips)

    def test_sampling_within_tolerance(self, sampling_cells):
        scored = [c for c in sampling_cells if c.status != "skip"]
        assert scored
        assert all(c.status == "pass" for c in scored)
        assert all(c.error <= SAMPLING_TOLERANCE for c in scored)


class TestVirtualizationPlane:
    def test_attached_counts_exact_up_and_smp(self):
        cells = run_virtualization_plane(["simX86"])
        assert {c.name for c in cells} == {
            "PAPI_TOT_INS@ncpus=1", "PAPI_TOT_INS@ncpus=4",
        }
        for c in cells:
            assert c.status == "pass"
            assert c.actual == c.expected

    def test_sampling_substrate_skips(self):
        cells = run_virtualization_plane(["simALPHA"])
        assert cells and all(c.status == "skip" for c in cells)
        assert all("attach" in c.detail for c in cells)

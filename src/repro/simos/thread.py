"""Threads: execution contexts with virtualized counter state.

A thread owns a full architectural context (registers, pc, call stack,
its own program and memory image -- processes in Unix terms, but the
paper and PAPI both say "thread" for the unit counters are virtualized
to, so we keep that name) plus the bookkeeping the scheduler needs:
accumulated virtual time and the set of PMU counters bound to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.hw.cpu import CPUContext
from repro.hw.isa import DATA_SEGMENT_BASE, NUM_FREGS, NUM_IREGS, Program

#: bytes of address space reserved per thread (keeps threads' pages and
#: cache lines from aliasing, like distinct physical allocations).
THREAD_ADDRESS_STRIDE = 1 << 24


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


def _fresh_context(program: Program, heap_words: int, tid: int) -> CPUContext:
    """Build the boot-time context for *program* without touching the CPU."""
    memory: List[float] = [0] * (program.data_size + heap_words)
    for addr, value in program.data_init:
        memory[addr] = value
    return CPUContext(
        pc=program.label_at(program.entry),
        data_base=DATA_SEGMENT_BASE + tid * THREAD_ADDRESS_STRIDE,
        iregs=[0] * NUM_IREGS,
        fregs=[0.0] * NUM_FREGS,
        call_stack=[],
        halted=False,
        cur_iline=-1,
        code=program.resolve(),
        memory=memory,
        program=program,
        touched_pages=set(),
    )


@dataclass
class Thread:
    """One schedulable execution context."""

    tid: int
    name: str
    context: CPUContext
    state: ThreadState = ThreadState.READY
    #: cycles of CPU time this thread has consumed (virtual time).
    user_cycles: int = 0
    #: cycles of interface/system work billed to this thread.
    system_cycles: int = 0
    #: PMU counter indices virtualized to this thread, mapped to whether
    #: they are *logically* running (they physically run only while the
    #: thread is on a CPU).
    bound_counters: Dict[int, bool] = field(default_factory=dict)
    #: number of times this thread was dispatched.
    dispatches: int = 0
    #: peak resident set in pages, maintained by MemoryAccounting.
    hwm_pages: int = 0
    #: CPU index this thread last ran on (affinity hint; None = never ran).
    last_cpu: Optional[int] = None
    #: CPU index this thread is running on right now (None when off-CPU).
    cpu: Optional[int] = None
    #: per bound counter, the CPU index whose PMU holds its physical
    #: state (accum value, programming, armed overflow watch).  Counters
    #: are lazily migrated to the dispatch CPU; off-CPU reads route here.
    counter_home: Dict[int, int] = field(default_factory=dict)
    #: number of times this thread was dispatched on a different CPU than
    #: its previous one (cross-CPU migrations).
    migrations: int = 0

    @classmethod
    def create(
        cls, tid: int, program: Program, name: Optional[str] = None, heap_words: int = 0
    ) -> "Thread":
        return cls(
            tid=tid,
            name=name or f"{program.name}#{tid}",
            context=_fresh_context(program, heap_words, tid),
        )

    @property
    def finished(self) -> bool:
        return self.state is ThreadState.FINISHED

    @property
    def program(self) -> Program:
        assert self.context.program is not None
        return self.context.program

    def touched_pages(self) -> Set[int]:
        return self.context.touched_pages

    def bind_counter(self, index: int, home: int = 0) -> None:
        if index in self.bound_counters:
            raise ValueError(f"counter {index} already bound to thread {self.tid}")
        self.bound_counters[index] = False
        self.counter_home[index] = home

    def unbind_counter(self, index: int) -> None:
        self.bound_counters.pop(index, None)
        self.counter_home.pop(index, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.tid} {self.name!r} {self.state.value} "
            f"vcyc={self.user_cycles}>"
        )

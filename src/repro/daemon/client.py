"""PapidClient: the in-process client for the papid daemon.

The client owns three things the server deliberately does not:

- **retry with jittered backoff** — transient results (``PAPID_EAGAIN``
  / ``PAPID_ESHED``) are retried under a
  :class:`~repro.core.resilience.RetryPolicy` whose jitter is drawn
  from a per-client seeded RNG; every wait is appended to
  ``backoff_log``, the determinism witness (two clients with the same
  seed and the same fate produce the same log, the same way
  ``faults/`` logs its injected schedule);
- **deadlines** — every RPC carries one; when the overall per-call
  deadline expires with ops still transient, the client raises the
  taxonomy's canonical transient (:class:`~repro.core.errors.SystemError_`)
  rather than spinning;
- **sequence numbers** — the per-session idempotency tokens that make
  retried deliveries exactly-once on the worker (protocol docstring).

Sessions created through a client are *owned* by it: ``close()`` (or
the context manager, which papi-lint rule PL018 checks for) stops and
destroys any still-live owned sessions so a departing client never
leaks daemon-side state.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.errors import SystemError_
from repro.core.resilience import LostInterval, RetryPolicy
from repro.daemon.protocol import (
    Op,
    OpResult,
    SessionSpec,
    raise_for_result,
)
from repro.validate.seeds import derive_seed

#: the daemon-side ladder: more patient than the EventSet default (a
#: crashed shard takes a respawn round-trip to come back), with jitter
#: so a thousand retrying clients do not stampede in lockstep.
DAEMON_RETRY_POLICY = RetryPolicy(
    max_retries=12, backoff_cycles=2000, backoff_multiplier=2,
    jitter_frac=0.25,
)

#: seconds per billed backoff cycle when converting waits to sleeps.
CYCLE_SECONDS = 1e-6


@dataclass
class ReadResult:
    """One session's counts as returned to client code."""

    sid: str
    values: Dict[str, int]
    cycle: int
    advanced: int
    stale: bool = False
    recovered: bool = False
    lost: List[LostInterval] = field(default_factory=list)

    @classmethod
    def from_op_result(cls, res: OpResult) -> "ReadResult":
        return cls(
            sid=res.sid,
            values=dict(res.values),
            cycle=res.cycle,
            advanced=res.advanced,
            stale=res.stale,
            recovered=res.recovered,
            lost=[
                LostInterval(
                    start_cycle=iv["start_cycle"],
                    end_cycle=iv["end_cycle"],
                    natives=tuple(iv["natives"]),
                    reason=iv["reason"],
                    recovered=iv.get("recovered", False),
                )
                for iv in res.lost
            ],
        )


class PapidClient:
    """Retrying, deadline-carrying, session-owning daemon client."""

    def __init__(self, server, seed: int = 0,
                 policy: RetryPolicy = DAEMON_RETRY_POLICY,
                 deadline: float = 30.0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.server = server
        self.policy = policy
        self.deadline = deadline
        self._sleep = sleep
        self._rng = random.Random(derive_seed(seed, "papid:client"))
        #: determinism witness: every backoff wait, in billed cycles.
        self.backoff_log: List[int] = []
        self._seq: Dict[str, int] = {}
        self._owned: Dict[str, str] = {}  # sid -> created|running|stopped
        self._closed = False

    # ------------------------------------------------------------------
    # batched core
    # ------------------------------------------------------------------

    def call(self, ops: Sequence[Op],
             deadline: Optional[float] = None) -> List[OpResult]:
        """Submit *ops*, retrying transient results until the deadline.

        Returns results aligned with *ops*; fatal results are returned,
        not raised (single-op helpers raise).  Raises ``SystemError_``
        when the deadline expires or the retry budget is exhausted with
        ops still transient.
        """
        if self._closed:
            raise SystemError_("PapidClient is closed")
        budget = deadline if deadline is not None else self.deadline
        deadline_at = time.monotonic() + budget
        results: List[Optional[OpResult]] = [None] * len(ops)
        pending = list(enumerate(ops))
        attempt = 0
        while True:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise SystemError_(
                    f"papid RPC deadline ({budget:.3f}s) expired with "
                    f"{len(pending)} op(s) still transient"
                )
            batch = self.server.submit(
                [op for _, op in pending], timeout=remaining
            )
            still = []
            for (idx, op), res in zip(pending, batch):
                if res.transient:
                    still.append((idx, op))
                else:
                    results[idx] = res
            if not still:
                # pending is empty, so every slot has been filled.
                return [r for r in results if r is not None]
            if attempt >= self.policy.max_retries:
                raise SystemError_(
                    f"papid retry budget exhausted after {attempt} "
                    f"attempts with {len(still)} op(s) still transient "
                    f"({still[0][1].kind} {still[0][1].sid!r}: "
                    f"{batch[0].err})"
                )
            wait = self.policy.backoff(attempt, rng=self._rng)
            self.backoff_log.append(wait)
            self._sleep(min(wait * CYCLE_SECONDS, max(0.0, remaining)))
            attempt += 1
            pending = still

    def _next_seq(self, sid: str) -> int:
        nxt = self._seq.get(sid, 0) + 1
        self._seq[sid] = nxt
        return nxt

    def _one(self, op: Op, deadline: Optional[float] = None) -> OpResult:
        res = self.call([op], deadline=deadline)[0]
        raise_for_result(res)
        return res

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------

    def create(self, spec: SessionSpec,
               deadline: Optional[float] = None) -> str:
        self._one(Op(kind="create", sid=spec.sid, spec=spec,
                     priority=spec.priority), deadline)
        self._owned[spec.sid] = "created"
        return spec.sid

    def create_fleet(self, specs: Sequence[SessionSpec],
                     deadline: Optional[float] = None) -> List[OpResult]:
        """Batched create; per-spec results (fatal embedded, not raised)."""
        results = self.call(
            [Op(kind="create", sid=s.sid, spec=s, priority=s.priority)
             for s in specs],
            deadline=deadline,
        )
        for spec, res in zip(specs, results):
            if res.ok:
                self._owned[spec.sid] = "created"
        return results

    def start(self, sid: str, deadline: Optional[float] = None) -> None:
        self._one(Op(kind="start", sid=sid, seq=self._next_seq(sid)),
                  deadline)
        if sid in self._owned:
            self._owned[sid] = "running"

    def start_many(self, sids: Sequence[str],
                   deadline: Optional[float] = None) -> List[OpResult]:
        results = self.call(
            [Op(kind="start", sid=sid, seq=self._next_seq(sid))
             for sid in sids],
            deadline=deadline,
        )
        for sid, res in zip(sids, results):
            if res.ok and sid in self._owned:
                self._owned[sid] = "running"
        return results

    def read(self, sid: str,
             deadline: Optional[float] = None) -> ReadResult:
        res = self._one(Op(kind="read", sid=sid, seq=self._next_seq(sid)),
                        deadline)
        return ReadResult.from_op_result(res)

    def read_many(self, sids: Sequence[str],
                  deadline: Optional[float] = None) -> List[OpResult]:
        """Batched read; transient retries inside, fatals embedded."""
        return self.call(
            [Op(kind="read", sid=sid, seq=self._next_seq(sid))
             for sid in sids],
            deadline=deadline,
        )

    def stop(self, sid: str,
             deadline: Optional[float] = None) -> ReadResult:
        res = self._one(Op(kind="stop", sid=sid, seq=self._next_seq(sid)),
                        deadline)
        if sid in self._owned:
            self._owned[sid] = "stopped"
        return ReadResult.from_op_result(res)

    def stop_many(self, sids: Sequence[str],
                  deadline: Optional[float] = None) -> List[OpResult]:
        results = self.call(
            [Op(kind="stop", sid=sid, seq=self._next_seq(sid))
             for sid in sids],
            deadline=deadline,
        )
        for sid, res in zip(sids, results):
            if res.ok and sid in self._owned:
                self._owned[sid] = "stopped"
        return results

    def destroy(self, sid: str, deadline: Optional[float] = None) -> None:
        self._one(Op(kind="destroy", sid=sid), deadline)
        self._owned.pop(sid, None)
        self._seq.pop(sid, None)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop and destroy every still-owned session; idempotent.

        Best-effort: a draining or crashed daemon cannot leak what it
        no longer runs, so errors here are absorbed — the point is that
        a *healthy* daemon is left with nothing owned by this client.
        """
        if self._closed:
            return
        self._closed = False  # keep call() usable for the teardown ops
        try:
            running = [s for s, st in self._owned.items() if st == "running"]
            if running:
                try:
                    self.stop_many(running)
                except Exception:
                    pass
            for sid in list(self._owned):
                try:
                    self.destroy(sid)
                except Exception:
                    pass
        finally:
            self._owned.clear()
            self._closed = True

    def __enter__(self) -> "PapidClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PapidClient {len(self._owned)} owned sessions, "
            f"{len(self.backoff_log)} backoffs>"
        )

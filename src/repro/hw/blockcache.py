"""Basic-block execution engine for the simulated CPU.

The interpreter in :mod:`repro.hw.cpu` dispatches one instruction at a
time; every experiment in the repo bottoms out in that loop.  This module
adds a *block cache* in front of it:

- a loaded program's resolved code is partitioned into **basic blocks**
  (maximal straight-line runs ending at a control transfer, cut before
  PROBE/SYSCALL/HALT, which always take the precise path);
- each block is compiled, once, into a Python function that replays the
  interpreter's exact effect sequence -- signal counts, cache/TLB
  accesses, EAR callbacks, fault messages, register/memory writes -- with
  all per-instruction constants (latencies, signal indices, byte
  addresses, line boundaries) baked in as literals;
- self-loop blocks whose body is *steady* (invariant memory addresses,
  affine loop counter, all-hit cache behaviour, saturated predictor) are
  **replayed in O(1)**: one trial iteration through the compiled body
  proves steadiness, then the remaining iterations are applied as a
  single bulk update of the counts array, cache hit statistics and the
  affine registers.

Correctness contract: a run with the engine enabled is **bit-exact**
with the interpreter -- identical ``counts[]``, cache/TLB state and
statistics, RNG stream, architectural state, fault behaviour and
interrupt delivery points.  The engine guarantees this by computing a
*deadline* before every fast step: the number of instructions/cycles
until the next PMU overflow threshold, ProfileMe sample, cycle-timer
tick, or instruction/cycle budget boundary.  If the block could cross
any deadline, the engine declines and the interpreter executes it one
instruction at a time, so interrupts and samples fire at exactly the
same instruction boundary (and draw from the RNG at exactly the same
point) as an engine-off run.  PROBE instructions are never compiled, so
dynaprof probes likewise always fire from the precise path.

Invalidation rules (see DESIGN.md): block tables are keyed by the
identity of the resolved code list, so ``migrate`` (dynaprof probe
insertion) retires the old program's table; context restores rebind the
active table; :meth:`Machine.charge` cache pollution bumps the engine
epoch, which re-arms replay trials for blocks previously blacklisted as
unsteady.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hw.events import Signal
from repro.hw.isa import (
    BLOCK_BREAK_OPS,
    BRANCH_OPS,
    INS_BYTES,
    WORD_BYTES,
    Op,
)

#: longest straight-line run compiled into one block; bounds both the
#: generated-code size and the worst-case deadline a block can consume.
MAX_BLOCK_LEN = 64

#: most code tables kept alive at once (one per resolved program).
MAX_TABLES = 16

#: upper bound on iterations applied by a single bulk replay step.
REPLAY_CHUNK = 1 << 20

#: consecutive unsteady trials before a loop block stops being trialled
#: (until the next engine epoch re-arms it).
REPLAY_FAIL_LIMIT = 12

_S = Signal

#: ALU-ish opcodes with no fault, memory or control behaviour; their
#: count updates can be merged into one segment of the compiled body.
_SIMPLE_EFFECTS: Dict[int, Tuple[Tuple[int, ...], str]] = {
    Op.NOP: ((), ""),
    Op.LI: ((_S.INT_INS,), "iregs[{a}] = {d}"),
    Op.MOV: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}]"),
    Op.ADD: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] + iregs[{c}]"),
    Op.SUB: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] - iregs[{c}]"),
    Op.MUL: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] * iregs[{c}]"),
    Op.ADDI: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] + {d}"),
    Op.MULI: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] * {d}"),
    Op.FLI: ((_S.FP_MOV,), "fregs[{a}] = {d}"),
    Op.FMOV: ((_S.FP_MOV,), "fregs[{a}] = fregs[{b}]"),
    Op.FADD: ((_S.FP_ADD,), "fregs[{a}] = fregs[{b}] + fregs[{c}]"),
    Op.FSUB: ((_S.FP_ADD,), "fregs[{a}] = fregs[{b}] - fregs[{c}]"),
    Op.FMUL: ((_S.FP_MUL,), "fregs[{a}] = fregs[{b}] * fregs[{c}]"),
    Op.FMA: ((_S.FP_FMA,), "fregs[{a}] = fregs[{b}] * fregs[{c}] + fregs[{d}]"),
    Op.FCVT: ((_S.FP_CVT,), "fregs[{a}] = _round_to_single(fregs[{b}])"),
}


@dataclass
class LoopInfo:
    """Static shape of a replay-eligible self-loop block."""

    #: pc of the closing conditional branch.
    branch_pc: int
    #: branch opcode (one of BRANCH_OPS).
    branch_op: int
    #: normalized predicate kind on the counter value: lt/le/gt/ge/eq/ne.
    kind: str
    #: the affine counter register, or -1 when both operands are invariant.
    counter: int
    #: the invariant bound register.
    bound: int
    #: affine stride: ("imm", value) or ("reg", reg, sign).
    stride: Tuple
    #: every affine register with its stride spec (bulk update targets).
    affine: List[Tuple[int, Tuple]]
    #: steady-state instruction fetches per iteration (entered from the
    #: loop's own back edge); the trial must match this exactly.
    steady_fetches: int


@dataclass
class BasicBlock:
    """One compiled basic block."""

    start: int
    n_ins: int
    #: compiled executor; returns ``(next_pc, cur_iline)``.
    fn: object
    #: literal instruction-cache line of the last instruction.
    il_last: int
    #: worst-case cycles one execution can add (every access missing).
    max_cyc: int
    #: worst-case per-signal deltas of one execution (deadline headroom).
    max_deltas: List[int]
    loop: Optional[LoopInfo] = None
    #: ends without a control transfer (next block starts at start+n_ins).
    falls_through: bool = False
    #: consecutive unsteady trials; replay is suspended past the limit.
    fails: int = 0
    fail_epoch: int = -1


@dataclass
class EngineStats:
    """Cumulative work accounting (exposed via ``Machine.engine_stats``)."""

    #: block executions through compiled code (including replay trials).
    blocks_executed: int = 0
    #: instructions retired through the engine (compiled + replayed).
    fast_instructions: int = 0
    #: bulk replay engagements.
    replays: int = 0
    #: instructions retired as bulk loop replay.
    replayed_instructions: int = 0
    #: distinct blocks compiled.
    blocks_compiled: int = 0
    #: flush-barrier invocations (PMU reads / Machine.charge).
    flushes: int = 0


@dataclass
class _CodeTable:
    """Per-program decode cache: compiled blocks keyed by entry pc."""

    code: List[tuple]
    leaders: Set[int]
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    denied: Set[int] = field(default_factory=set)


def _compute_leaders(code: List[tuple]) -> Set[int]:
    """Basic-block leaders: entry, control targets, post-break pcs."""
    leaders = {0}
    for pc, ins in enumerate(code):
        op = ins[0]
        if op in BRANCH_OPS:
            leaders.add(ins[3])
            leaders.add(pc + 1)
        elif op == Op.JMP or op == Op.CALL:
            leaders.add(ins[1])
            leaders.add(pc + 1)
        elif op in BLOCK_BREAK_OPS or op == Op.RET:
            leaders.add(pc + 1)
    return leaders


def _count_consecutive_takens(kind: str, c: int, s: int, bound: int, cap: int) -> int:
    """Future consecutive taken iterations of the loop branch.

    The counter's branch-time value in future iteration ``j`` (j >= 1)
    is ``c + j*s`` where ``c`` is its post-trial value.  Returns how many
    leading ``j`` satisfy the (normalized) predicate, capped at *cap*.
    """
    v1 = c + s
    if kind == "lt":
        if not v1 < bound:
            return 0
        if s <= 0:
            return cap
        return min(cap, (bound - 1 - c) // s)
    if kind == "le":
        if not v1 <= bound:
            return 0
        if s <= 0:
            return cap
        return min(cap, (bound - c) // s)
    if kind == "gt":
        if not v1 > bound:
            return 0
        if s >= 0:
            return cap
        return min(cap, (c - bound - 1) // (-s))
    if kind == "ge":
        if not v1 >= bound:
            return 0
        if s >= 0:
            return cap
        return min(cap, (c - bound) // (-s))
    if kind == "eq":
        if v1 != bound:
            return 0
        return cap if s == 0 else 1
    # "ne"
    if v1 == bound:
        return 0
    if s != 0 and (bound - c) % s == 0:
        j0 = (bound - c) // s
        if j0 >= 1:
            return min(cap, j0 - 1)
    return cap


class BlockCompiler:
    """Generates the per-block executor functions.

    The generated source replicates the interpreter's effect ordering
    instruction for instruction.  Count updates of consecutive simple ALU
    instructions are merged into a single segment; every observable point
    (memory access, fault check, EAR callback, branch resolution) flushes
    the pending segment first, so ``counts[]`` is exact whenever foreign
    code can run or an exception can propagate.
    """

    def __init__(self, cpu) -> None:
        config = cpu.config
        hcfg = cpu.hierarchy.config
        self._lat = config.latencies
        self._branch_penalty = config.branch_penalty
        self._iline_shift = hcfg.l1i.line_bits
        self._page_shift = hcfg.tlb.page_bits
        #: worst-case extra cycles for one data access / one fetch.
        self._mem_worst = hcfg.tlb_walk_latency + hcfg.l2_latency + hcfg.mem_latency
        self._fetch_worst = hcfg.l2_latency + hcfg.mem_latency
        self._globals = {
            "MachineFault": _machine_fault_class(),
            "_round_to_single": _round_to_single_fn(),
        }

    # -- partitioning ---------------------------------------------------

    def scan_block(self, code: List[tuple], start: int) -> List[tuple]:
        """Instructions of the block headed at *start* (may be empty)."""
        instrs: List[tuple] = []
        pc = start
        end = len(code)
        while pc < end and len(instrs) < MAX_BLOCK_LEN:
            ins = code[pc]
            op = ins[0]
            if op in BLOCK_BREAK_OPS:
                break
            instrs.append(ins)
            if op in BRANCH_OPS or op in (Op.JMP, Op.CALL, Op.RET):
                break
            pc += 1
        return instrs

    # -- code generation ------------------------------------------------

    def compile_block(self, code: List[tuple], start: int) -> Optional[BasicBlock]:
        instrs = self.scan_block(code, start)
        if not instrs:
            return None
        last_op = instrs[-1][0]
        if last_op not in BRANCH_OPS and last_op not in (Op.JMP, Op.CALL, Op.RET):
            # fall-through block (next pc may be past the end; the slow
            # path then raises the same "pc out of range" fault).
            pass

        lines: List[str] = []
        pending: Dict[int, int] = {}
        md = [0] * Signal.N_SIGNALS
        max_cyc = 0
        n_fetches = 0

        def emit(text: str) -> None:
            lines.append("    " + text)

        def add_pending(sig: int, n: int = 1) -> None:
            pending[sig] = pending.get(sig, 0) + n

        def flush_pending() -> None:
            for sig, n in pending.items():
                emit(f"counts[{sig}] += {n}")
            pending.clear()

        def emit_fetch(pc: int, conditional: bool) -> None:
            nonlocal max_cyc, n_fetches
            il = (pc * INS_BYTES) >> self._iline_shift
            pad = ""
            if conditional:
                emit(f"if cur_iline != {il}:")
                pad = "    "
            emit(f"{pad}_fl, _i1m, _il2m = inst_fetch({pc * INS_BYTES})")
            emit(f"{pad}counts[{_S.L1I_ACC}] += 1")
            emit(f"{pad}if _i1m:")
            emit(f"{pad}    counts[{_S.L1I_MISS}] += 1")
            emit(f"{pad}    counts[{_S.L2_ACC}] += 1")
            emit(f"{pad}    if _il2m:")
            emit(f"{pad}        counts[{_S.L2_MISS}] += 1")
            emit(f"{pad}if _fl:")
            emit(f"{pad}    counts[{_S.TOT_CYC}] += _fl")
            emit(f"{pad}    counts[{_S.STL_CYC}] += _fl")
            n_fetches += 1
            md[_S.L1I_ACC] += 1
            md[_S.L1I_MISS] += 1
            md[_S.L2_ACC] += 1
            md[_S.L2_MISS] += 1
            md[_S.TOT_CYC] += self._fetch_worst
            md[_S.STL_CYC] += self._fetch_worst
            max_cyc += self._fetch_worst

        lat = self._lat
        il_prev = None
        il_start = (start * INS_BYTES) >> self._iline_shift
        for i, ins in enumerate(instrs):
            pc = start + i
            op, a, b, c, d = ins
            il = (pc * INS_BYTES) >> self._iline_shift
            if i == 0:
                emit_fetch(pc, conditional=True)
            elif il != il_prev:
                flush_pending()
                emit_fetch(pc, conditional=False)
            il_prev = il

            md[_S.TOT_INS] += 1
            md[_S.TOT_CYC] += lat[op]
            max_cyc += lat[op]

            simple = _SIMPLE_EFFECTS.get(op)
            if simple is not None:
                sigs, template = simple
                add_pending(_S.TOT_INS)
                add_pending(_S.TOT_CYC, lat[op])
                for sig in sigs:
                    add_pending(sig)
                    md[sig] += 1
                if template:
                    emit(template.format(a=a, b=b, c=c, d=repr(d)))
                continue

            # every remaining opcode is an observable point: apply its
            # retirement counts in interpreter order, before any fault
            # check or hierarchy access.
            add_pending(_S.TOT_INS)
            add_pending(_S.TOT_CYC, lat[op])
            if op in (Op.LOAD, Op.FLOAD, Op.STORE, Op.FSTORE):
                flush_pending()
                self._emit_memory(emit, pc, op, a, b, d)
                md[_S.LD_INS if op in (Op.LOAD, Op.FLOAD) else _S.SR_INS] += 1
                md[_S.L1D_ACC] += 1
                md[_S.L1D_MISS] += 1
                md[_S.L2_ACC] += 1
                md[_S.L2_MISS] += 1
                md[_S.TLB_DM] += 1
                md[_S.TOT_CYC] += self._mem_worst
                md[_S.STL_CYC] += self._mem_worst
                md[_S.MEM_RCY] += self._mem_worst
                max_cyc += self._mem_worst
            elif op == Op.DIV:
                add_pending(_S.INT_INS)
                md[_S.INT_INS] += 1
                flush_pending()
                emit(f"if iregs[{c}] == 0:")
                emit(f'    raise MachineFault("pc {pc}: integer divide by zero")')
                emit(f"_q = abs(iregs[{b}]) // abs(iregs[{c}])")
                emit(
                    f"iregs[{a}] = _q if (iregs[{b}] < 0) == (iregs[{c}] < 0) else -_q"
                )
            elif op == Op.FDIV:
                add_pending(_S.FP_DIV)
                md[_S.FP_DIV] += 1
                flush_pending()
                emit(f"if fregs[{c}] == 0.0:")
                emit(f'    raise MachineFault("pc {pc}: float divide by zero")')
                emit(f"fregs[{a}] = fregs[{b}] / fregs[{c}]")
            elif op == Op.FSQRT:
                add_pending(_S.FP_SQRT)
                md[_S.FP_SQRT] += 1
                flush_pending()
                emit(f"if fregs[{b}] < 0.0:")
                emit(f'    raise MachineFault("pc {pc}: sqrt of negative value")')
                emit(f"fregs[{a}] = fregs[{b}] ** 0.5")
            elif op in BRANCH_OPS:
                add_pending(_S.BR_INS)
                add_pending(_S.BR_CN)
                md[_S.BR_INS] += 1
                md[_S.BR_CN] += 1
                md[_S.BR_TKN] += 1
                md[_S.BR_NTK] += 1
                md[_S.BR_MSP] += 1
                md[_S.TOT_CYC] += self._branch_penalty
                md[_S.STL_CYC] += self._branch_penalty
                max_cyc += self._branch_penalty
                flush_pending()
                cmp_op = {Op.BLT: "<", Op.BGE: ">=", Op.BEQ: "==", Op.BNE: "!="}[op]
                emit(f"_t = iregs[{a}] {cmp_op} iregs[{b}]")
                emit(f"_p = predict({pc})")
                emit(f"pred_update({pc}, _t)")
                emit("if _t:")
                emit(f"    counts[{_S.BR_TKN}] += 1")
                emit("else:")
                emit(f"    counts[{_S.BR_NTK}] += 1")
                emit("if _p != _t:")
                emit(f"    counts[{_S.BR_MSP}] += 1")
                emit(f"    counts[{_S.TOT_CYC}] += {self._branch_penalty}")
                emit(f"    counts[{_S.STL_CYC}] += {self._branch_penalty}")
                emit(f"return ({c} if _t else {pc + 1}), {il}")
            elif op == Op.JMP:
                add_pending(_S.BR_INS)
                md[_S.BR_INS] += 1
                flush_pending()
                emit(f"return {a}, {il}")
            elif op == Op.CALL:
                add_pending(_S.BR_INS)
                add_pending(_S.CALL_INS)
                md[_S.BR_INS] += 1
                md[_S.CALL_INS] += 1
                flush_pending()
                emit(f"call_stack.append({pc + 1})")
                emit(f"return {a}, {il}")
            elif op == Op.RET:
                add_pending(_S.BR_INS)
                add_pending(_S.RET_INS)
                md[_S.BR_INS] += 1
                md[_S.RET_INS] += 1
                flush_pending()
                emit("if not call_stack:")
                emit(f'    raise MachineFault("pc {pc}: RET with empty call stack")')
                emit(f"return call_stack.pop(), {il}")
            else:  # pragma: no cover - BLOCK_BREAK_OPS never reach here
                return None

        last_pc = start + len(instrs) - 1
        il_last = (last_pc * INS_BYTES) >> self._iline_shift
        last_op = instrs[-1][0]
        falls_through = last_op not in BRANCH_OPS and last_op not in (
            Op.JMP, Op.CALL, Op.RET
        )
        if falls_through:
            flush_pending()
            emit(f"return {last_pc + 1}, {il_last}")

        src = (
            "def _block(counts, iregs, fregs, memory, mem_len, call_stack,\n"
            "           data_access, inst_fetch, predict, pred_update, pmu,\n"
            "           touched, data_base, cur_iline):\n"
            + "\n".join(lines)
            + "\n"
        )
        ns: Dict[str, object] = {}
        exec(compile(src, f"<block@{start}>", "exec"), dict(self._globals), ns)
        fn = ns["_block"]

        block = BasicBlock(
            start=start,
            n_ins=len(instrs),
            fn=fn,
            il_last=il_last,
            max_cyc=max_cyc,
            max_deltas=md,
            falls_through=falls_through,
        )
        block.loop = self._analyze_loop(instrs, start, n_fetches, il_start, il_last)
        return block

    def _emit_memory(self, emit, pc: int, op: int, a: int, b: int, d: int) -> None:
        is_load = op in (Op.LOAD, Op.FLOAD)
        word = "load" if is_load else "store"
        emit(f"_ad = iregs[{b}] + {d}")
        emit("if not 0 <= _ad < mem_len:")
        emit(
            "    raise MachineFault("
            f"f\"pc {pc}: {word} address {{_ad}} out of range\")"
        )
        emit(f"_ba = _ad * {WORD_BYTES} + data_base")
        emit("_pen, _l1m, _l2m, _tlbm = data_access(_ba)")
        emit(f"counts[{_S.LD_INS if is_load else _S.SR_INS}] += 1")
        emit(f"counts[{_S.L1D_ACC}] += 1")
        emit("if _l1m:")
        emit(f"    counts[{_S.L1D_MISS}] += 1")
        emit(f"    counts[{_S.L2_ACC}] += 1")
        emit("    if _l2m:")
        emit(f"        counts[{_S.L2_MISS}] += 1")
        emit("    if pmu is not None and pmu.ear_active:")
        emit(f"        pmu.ear_miss({pc}, _ba, counts[{_S.TOT_CYC}], \"l1d_miss\")")
        emit("if _tlbm:")
        emit(f"    counts[{_S.TLB_DM}] += 1")
        emit(f"    touched.add(_ba >> {self._page_shift})")
        emit("    if pmu is not None and pmu.ear_active:")
        emit(f"        pmu.ear_miss({pc}, _ba, counts[{_S.TOT_CYC}], \"tlb_miss\")")
        emit("if _pen:")
        emit(f"    counts[{_S.TOT_CYC}] += _pen")
        emit(f"    counts[{_S.STL_CYC}] += _pen")
        emit(f"    counts[{_S.MEM_RCY}] += _pen")
        if op == Op.LOAD:
            emit(f"iregs[{a}] = int(memory[_ad])")
        elif op == Op.FLOAD:
            emit(f"fregs[{a}] = float(memory[_ad])")
        elif op == Op.STORE:
            emit(f"memory[_ad] = iregs[{a}]")
        else:
            emit(f"memory[_ad] = fregs[{a}]")

    # -- static loop analysis -------------------------------------------

    def _analyze_loop(
        self,
        instrs: List[tuple],
        start: int,
        n_fetches: int,
        il_start: int,
        il_last: int,
    ) -> Optional[LoopInfo]:
        """Classify a self-loop block for O(1) replay, or return None.

        Eligibility: the closing branch targets the block head, every
        written integer register is either iteration-invariant or affine
        (a single self-increment by a loop-invariant stride), every
        written float register is iteration-invariant, memory addresses
        and store values are invariant, fault operands are invariant, and
        the branch compares the affine counter against an invariant bound
        (or two invariants).  Under those conditions -- plus the dynamic
        all-hit / saturated-predictor trial -- every future iteration is
        an exact copy of the trial, so its effects can be multiplied.
        """
        term = instrs[-1]
        if term[0] not in BRANCH_OPS or term[3] != start:
            return None
        body = instrs[:-1]
        has_store = any(ins[0] in (Op.STORE, Op.FSTORE) for ins in body)
        has_load = any(ins[0] in (Op.LOAD, Op.FLOAD) for ins in body)
        if has_store and has_load:
            # a load could observe an in-loop store; values would then
            # depend on the iteration.  Keep the analysis simple: such
            # loops run through the compiled path only.
            return None

        # single-write affine candidates: r op= invariant stride.
        iwrites: Dict[int, List[tuple]] = {}
        fwrites: Dict[int, int] = {}
        for ins in body:
            op, a = ins[0], ins[1]
            if op in (Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV,
                      Op.ADDI, Op.MULI, Op.LOAD):
                iwrites.setdefault(a, []).append(ins)
            elif op in (Op.FLI, Op.FMOV, Op.FADD, Op.FSUB, Op.FMUL,
                        Op.FDIV, Op.FSQRT, Op.FMA, Op.FCVT, Op.FLOAD):
                fwrites[a] = fwrites.get(a, 0) + 1

        affine: Dict[int, Tuple] = {}
        for reg, writes in iwrites.items():
            if len(writes) != 1:
                continue
            op, a, b, c, d = writes[0]
            if op == Op.ADDI and b == reg:
                affine[reg] = ("imm", d)
            elif op == Op.ADD and b == reg and c not in iwrites:
                affine[reg] = ("reg", c, 1)
            elif op == Op.ADD and c == reg and b not in iwrites:
                affine[reg] = ("reg", b, 1)
            elif op == Op.SUB and b == reg and c not in iwrites:
                affine[reg] = ("reg", c, -1)

        # abstract interpretation over one iteration.  Start state is
        # pessimistic for written registers (VAR, or AFF for the matched
        # affine updates): a value carried across the back edge through a
        # written register cannot be assumed invariant, or self-increment
        # chains and write cycles (swaps) would wrongly classify as
        # invariant.  A written register only becomes INV flow-sensitively,
        # at a write that recomputes it from invariant inputs (LI, LOAD
        # from invariant memory, ALU over INV sources).
        INV, AFF, VAR = 0, 1, 2
        iabs = [INV] * 32
        fabs = [INV] * 32
        for reg in iwrites:
            iabs[reg] = AFF if reg in affine else VAR
        for reg in fwrites:
            fabs[reg] = VAR

        def ival(reg: int) -> int:
            return iabs[reg]

        for ins in body:
            op, a, b, c, d = ins
            if op in (Op.LOAD, Op.FLOAD, Op.STORE, Op.FSTORE):
                if ival(b) != INV:
                    return None  # striding address: lines change per iter
                if op == Op.STORE and ival(a) != INV:
                    return None  # stored value must be invariant
                if op == Op.FSTORE and fabs[a] != INV:
                    return None
                if op == Op.LOAD:
                    # no stores in the body (checked above), so memory is
                    # iteration-invariant and so is the loaded value.
                    if has_store:
                        return None
                    iabs[a] = INV
                elif op == Op.FLOAD:
                    if has_store:
                        return None
                    fabs[a] = INV
                continue
            if op == Op.DIV and ival(c) != INV:
                return None  # divisor could hit zero in a later iteration
            if op == Op.FDIV and fabs[c] != INV:
                return None
            if op == Op.FSQRT and fabs[b] != INV:
                return None
            if a in affine and op == affine_op(affine[a]):
                # the affine self-update keeps the register affine.
                continue
            if op in (Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.ADDI, Op.MULI):
                srcs = _int_sources(op, b, c)
                out = INV
                for s in srcs:
                    if ival(s) != INV:
                        out = VAR
                iabs[a] = out if op != Op.LI else INV
            elif op == Op.LI:
                iabs[a] = INV
            elif op == Op.FLI:
                fabs[a] = INV
            elif op in (Op.FMOV, Op.FCVT, Op.FSQRT):
                fabs[a] = fabs[b]
            elif op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV):
                fabs[a] = max(fabs[b], fabs[c])
            elif op == Op.FMA:
                fabs[a] = max(fabs[b], fabs[c], fabs[d])
            elif op == Op.NOP:
                pass
            else:  # pragma: no cover - body ops are exhaustive above
                return None

        # every written register must end reproducible: INV (no-op under
        # replay) or AFF (bulk += stride * k).
        for reg in iwrites:
            if iabs[reg] == VAR:
                return None
        for reg in fwrites:
            if fabs[reg] != INV:
                return None

        op, ra, rb, _tgt, _ = term
        va, vb = iabs[ra], iabs[rb]
        if va == AFF and vb == INV:
            counter, bound, counter_is_a = ra, rb, True
        elif va == INV and vb == AFF:
            counter, bound, counter_is_a = rb, ra, False
        elif va == INV and vb == INV:
            counter, bound, counter_is_a = -1, rb, True
        else:
            return None
        if op == Op.BLT:
            kind = "lt" if counter_is_a else "gt"
        elif op == Op.BGE:
            kind = "ge" if counter_is_a else "le"
        elif op == Op.BEQ:
            kind = "eq"
        else:
            kind = "ne"

        steady = (n_fetches - 1) + (1 if il_start != il_last else 0)
        return LoopInfo(
            branch_pc=start + len(instrs) - 1,
            branch_op=op,
            kind=kind,
            counter=counter,
            bound=bound,
            stride=affine.get(counter, ("imm", 0)),
            affine=sorted(affine.items()),
            steady_fetches=steady,
        )


def affine_op(spec: Tuple) -> int:
    """The opcode that realizes an affine stride spec (for write matching)."""
    if spec[0] == "imm":
        return Op.ADDI
    return Op.ADD if spec[2] > 0 else Op.SUB


def _int_sources(op: int, b: int, c: int) -> Tuple[int, ...]:
    if op in (Op.MOV, Op.ADDI, Op.MULI):
        return (b,)
    return (b, c)


def _machine_fault_class():
    from repro.hw.cpu import MachineFault

    return MachineFault


def _round_to_single_fn():
    from repro.hw.cpu import _round_to_single

    return _round_to_single


class BlockEngine:
    """The block cache + replay engine bound to one CPU.

    ``CPU.run`` calls :meth:`begin` once per slice and :meth:`execute`
    whenever the pc heads a (potential) block; everything else -- table
    management, deadline math, replay -- lives here.
    """

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.compiler = BlockCompiler(cpu)
        self.stats = EngineStats()
        self._tables: Dict[int, _CodeTable] = {}
        self._table: Optional[_CodeTable] = None
        self._epoch = 0
        self._ctx: Optional[tuple] = None

    # -- lifecycle ------------------------------------------------------

    def begin(self) -> Tuple[Dict[int, BasicBlock], Set[int]]:
        """Bind the engine to the CPU's current code; called per run()."""
        cpu = self.cpu
        code = cpu.code
        key = id(code)
        table = self._tables.get(key)
        if table is None or table.code is not code:
            table = _CodeTable(code, _compute_leaders(code))
            while len(self._tables) >= MAX_TABLES:
                self._tables.pop(next(iter(self._tables)))
            self._tables[key] = table
        # a slice can resume mid-block (quantum expiry); treat the resume
        # pc as a leader so the hot path re-enters compiled code there.
        entry = cpu.pc
        if entry not in table.leaders:
            table.leaders.add(entry)
            table.denied.discard(entry)
        self._table = table
        self._ctx = (
            cpu.counts, cpu.iregs, cpu.fregs, cpu.memory, len(cpu.memory),
            cpu.call_stack, cpu.hierarchy.data_access, cpu.hierarchy.inst_fetch,
            cpu.predictor.predict, cpu.predictor.update, cpu.pmu,
            cpu.touched_pages, cpu.data_base,
        )
        return table.blocks, table.denied

    def invalidate(self) -> None:
        """Drop every code table (machine reset)."""
        self._tables.clear()
        self._table = None
        self._ctx = None

    def retire(self, code: List[tuple]) -> None:
        """Drop the table of one program (dynaprof migrate/reload)."""
        self._tables.pop(id(code), None)
        if self._table is not None and self._table.code is code:
            self.unbind()

    def unbind(self) -> None:
        """Forget the active binding (context restore); tables survive."""
        self._table = None
        self._ctx = None

    def barrier(self) -> None:
        """External machine-state change (e.g. cache pollution).

        Bumps the epoch so replay blacklists are re-armed: a block that
        looked unsteady before the change may be steady after it (and
        vice versa -- the next trial re-proves steadiness either way).
        """
        self._epoch += 1
        self.flush()

    def flush(self) -> None:
        """Flush-before-read barrier (installed as the PMU flush hook).

        The engine applies all effects synchronously inside
        :meth:`execute` -- compiled bodies write ``counts[]`` directly and
        bulk replay commits before returning -- so there is never deferred
        state to write back; this hook is the enforcement point that keeps
        it that way (any future staging must drain here) and the
        observability counter for the read-barrier tests.
        """
        self.stats.flushes += 1

    # -- execution ------------------------------------------------------

    def execute(
        self, pc: int, cur_iline: int, rem_ins: int, cyc_budget: int
    ) -> Optional[Tuple[int, int, int]]:
        """Run the block headed at *pc* fast, or return None to decline.

        *rem_ins* is the remaining instruction budget (-1 = unlimited);
        *cyc_budget* the absolute TOT_CYC stop line (-1 = unlimited).
        Returns ``(next_pc, cur_iline, instructions_retired)``.
        """
        table = self._table
        block = table.blocks.get(pc)
        if block is None:
            if pc not in table.leaders:
                table.denied.add(pc)
                return None
            block = self.compiler.compile_block(table.code, pc)
            if block is None:
                table.denied.add(pc)
                return None
            table.blocks[pc] = block
            self.stats.blocks_compiled += 1
            if block.falls_through:
                # a MAX_BLOCK_LEN split: let the hot path continue into
                # the rest of the straight-line run.
                nxt = block.start + block.n_ins
                table.leaders.add(nxt)
                table.denied.discard(nxt)

        n_ins = block.n_ins
        if 0 <= rem_ins < n_ins:
            return None
        cpu = self.cpu
        counts = cpu.counts
        if cyc_budget >= 0 and counts[_S.TOT_CYC] + block.max_cyc >= cyc_budget:
            return None

        # -- PMU deadlines: decline if the block could cross one --------
        pmu = cpu.pmu
        sampler_on = False
        if pmu is not None:
            if pmu.sampler is not None:
                if pmu.sample_countdown <= n_ins:
                    return None
                sampler_on = True
            if pmu.watch_active:
                if pmu.has_pending():
                    return None
                md = block.max_deltas
                for headroom, signals in pmu.watch_constraints():
                    worst = 0
                    for s in signals:
                        worst += md[s]
                    if headroom <= worst:
                        return None
            if pmu.timer_active and pmu.cycles_to_timer(counts[_S.TOT_CYC]) <= block.max_cyc:
                return None

        loop = block.loop
        if (
            loop is not None
            and block.fail_epoch == self._epoch
            and block.fails >= REPLAY_FAIL_LIMIT
        ):
            loop = None

        total = n_ins
        if loop is None:
            next_pc, cur_iline = block.fn(*self._ctx, cur_iline)
        else:
            snap = counts.copy()
            hsnap = cpu.hierarchy.hit_snapshot()
            next_pc, cur_iline = block.fn(*self._ctx, cur_iline)
            if next_pc == block.start:
                k = self._try_replay(
                    block, loop, snap, hsnap, rem_ins, cyc_budget, sampler_on
                )
                total += k * n_ins
        if sampler_on:
            pmu.sample_countdown -= total
        self.stats.blocks_executed += 1
        self.stats.fast_instructions += total
        return next_pc, cur_iline, total

    def _try_replay(
        self,
        block: BasicBlock,
        loop: LoopInfo,
        snap: List[int],
        hsnap: Tuple[int, int, int, int],
        rem_ins: int,
        cyc_budget: int,
        sampler_on: bool,
    ) -> int:
        """After a taken trial iteration, bulk-apply up to *n* more."""
        cpu = self.cpu
        counts = cpu.counts
        iregs = cpu.iregs
        d = [counts[i] - snap[i] for i in range(Signal.N_SIGNALS)]

        # steady-state trial? all accesses hit, branch predicted, fetch
        # footprint equal to the back-edge steady state.
        if (
            d[_S.L1D_MISS] or d[_S.L1I_MISS] or d[_S.L2_MISS]
            or d[_S.TLB_DM] or d[_S.BR_MSP]
            or d[_S.L1I_ACC] != loop.steady_fetches
        ):
            if block.fail_epoch != self._epoch:
                block.fail_epoch = self._epoch
                block.fails = 0
            block.fails += 1
            return 0
        if not cpu.predictor.steady_taken(loop.branch_pc):
            return 0

        # exact remaining taken count from the affine counter.
        if loop.counter < 0:
            # both operands invariant: the branch repeats its trial
            # outcome (taken) forever; replay in chunks.
            n = REPLAY_CHUNK
        else:
            spec = loop.stride
            stride = spec[1] if spec[0] == "imm" else iregs[spec[1]] * spec[2]
            n = _count_consecutive_takens(
                loop.kind, iregs[loop.counter], stride, iregs[loop.bound],
                REPLAY_CHUNK,
            )
        if n <= 0:
            return 0

        # deadline caps: never cross a budget, sample tick, overflow
        # threshold or timer inside the bulk step.
        n_ins = block.n_ins
        k = n
        if rem_ins >= 0:
            k = min(k, rem_ins // n_ins - 1)
        d_cyc = d[_S.TOT_CYC]
        if cyc_budget >= 0 and d_cyc > 0:
            k = min(k, (cyc_budget - counts[_S.TOT_CYC] - 1) // d_cyc)
        pmu = cpu.pmu
        if pmu is not None:
            if sampler_on:
                k = min(k, (pmu.sample_countdown - n_ins - 1) // n_ins)
            if pmu.watch_active:
                for headroom, signals in pmu.watch_constraints():
                    dw = 0
                    for s in signals:
                        dw += d[s]
                    if dw > 0:
                        k = min(k, (headroom - 1) // dw)
            if pmu.timer_active and d_cyc > 0:
                k = min(k, (pmu.cycles_to_timer(counts[_S.TOT_CYC]) - 1) // d_cyc)
        if k <= 0:
            return 0

        # -- commit: k identical iterations as one bulk update ----------
        for i in range(Signal.N_SIGNALS):
            di = d[i]
            if di:
                counts[i] += di * k
        h = cpu.hierarchy
        cur = h.hit_snapshot()
        h.replay_hits(
            (cur[0] - hsnap[0]) * k,
            (cur[1] - hsnap[1]) * k,
            (cur[2] - hsnap[2]) * k,
            (cur[3] - hsnap[3]) * k,
        )
        for reg, spec in loop.affine:
            if spec[0] == "imm":
                iregs[reg] += spec[1] * k
            else:
                iregs[reg] += iregs[spec[1]] * spec[2] * k
        block.fails = 0
        self.stats.replays += 1
        self.stats.replayed_instructions += k * n_ins
        return k

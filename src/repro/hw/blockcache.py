"""Basic-block execution engine for the simulated CPU.

The interpreter in :mod:`repro.hw.cpu` dispatches one instruction at a
time; every experiment in the repo bottoms out in that loop.  This module
adds a *block cache* in front of it:

- a loaded program's resolved code is partitioned into **basic blocks**
  (maximal straight-line runs ending at a control transfer, cut before
  PROBE/SYSCALL/HALT, which always take the precise path);
- each block is compiled, once, into a Python function that replays the
  interpreter's exact effect sequence -- signal counts, cache/TLB
  accesses, EAR callbacks, fault messages, register/memory writes -- with
  all per-instruction constants (latencies, signal indices, byte
  addresses, line boundaries) baked in as literals;
- self-loop blocks whose body is *steady* (invariant memory addresses,
  affine loop counter, all-hit cache behaviour, saturated predictor) are
  **replayed in O(1)**: one trial iteration through the compiled body
  proves steadiness, then the remaining iterations are applied as a
  single bulk update of the counts array, cache hit statistics and the
  affine registers.

On top of the block layer sits the **trace tier** (engine tier
``"trace"``, the default): hot multi-block loop heads -- detected by
back-edge counters on block exits -- are promoted to one of two region
forms:

- a **superblock trace**: when the cycle through the head is a unique
  static path (fall-throughs, JMP/CALL with matched RET) closed by a
  single conditional branch, the whole path is compiled into one
  single-iteration function and the affine/invariant loop analysis runs
  over the *entire trace*, so multi-block loop bodies (calls included)
  get the same O(1) bulk replay as self-loop blocks;
- a **compiled region**: when the cycle is multi-path (data-dependent
  diamonds, probes), the member blocks are stitched into one generated
  state-machine function that transfers control internally and only
  returns on region exit or *fuel* exhaustion.  Fuel is the number of
  whole block steps that provably cannot cross any deadline; dynaprof
  PROBE instructions compile into regions as constant-cost prologue
  segments that dispatch the probe handler and side-exit if the handler
  perturbed the machine (stop flag, PMU arming, program rewrite).

Correctness contract: a run with the engine enabled is **bit-exact**
with the interpreter -- identical ``counts[]``, cache/TLB state and
statistics, RNG stream, architectural state, fault behaviour and
interrupt delivery points.  The engine guarantees this by computing a
*deadline* before every fast step: the number of instructions/cycles
until the next PMU overflow threshold, ProfileMe sample, cycle-timer
tick, or instruction/cycle budget boundary.  If the block (or region
fuel) could cross any deadline, the engine declines and the interpreter
executes one instruction at a time, so interrupts and samples fire at
exactly the same instruction boundary (and draw from the RNG at exactly
the same point) as an engine-off run.  PROBE instructions are never
compiled into plain blocks; inside regions they run only while the PMU
is completely quiet, so deadline/flush crossings always take the
precise path.

Invalidation rules (see DESIGN.md): block tables are keyed by the
identity of the resolved code list, so ``migrate`` (dynaprof probe
insertion/removal) retires the old program's table -- regions and
traces die with it; context restores rebind the active table;
:meth:`Machine.charge` cache pollution bumps the engine epoch, which
re-arms replay trials for blocks and traces previously blacklisted as
unsteady.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hw.events import Signal
from repro.hw.isa import (
    BLOCK_BREAK_OPS,
    BRANCH_OPS,
    INS_BYTES,
    WORD_BYTES,
    Op,
)

#: longest straight-line run compiled into one block; bounds both the
#: generated-code size and the worst-case deadline a block can consume.
MAX_BLOCK_LEN = 64

#: most code tables kept alive at once (one per resolved program).
MAX_TABLES = 16

#: upper bound on iterations applied by a single bulk replay step.
REPLAY_CHUNK = 1 << 20

#: consecutive unsteady trials before a loop block stops being trialled
#: (until the next engine epoch re-arms it).
REPLAY_FAIL_LIMIT = 12

#: back-edge arrivals at a loop head before it is promoted to a
#: superblock trace or compiled region (trace tier only).
REGION_HOT = 16

#: most member blocks stitched into one compiled region.
MAX_REGION_BLOCKS = 16

#: longest instruction path compiled into one superblock trace.
TRACE_MAX_INS = 256

#: largest join block tail-duplicated into each predecessor path during
#: region compilation (classic superblock formation); bigger joins keep
#: a dispatch arm of their own.
REGION_DUP_MAX_INS = 32

#: total instruction-emission budget per region unit; bounds the code
#: blowup tail duplication can cause on diamond chains.
REGION_UNIT_EMIT_MAX = 512

#: hard cap on block steps per region entry; bounds the time between
#: deadline re-checks (and stop_flag polls) when no budgets are armed.
REGION_FUEL_MAX = 1 << 16

_S = Signal

#: ALU-ish opcodes with no fault, memory or control behaviour; their
#: count updates can be merged into one segment of the compiled body.
_SIMPLE_EFFECTS: Dict[int, Tuple[Tuple[int, ...], str]] = {
    Op.NOP: ((), ""),
    Op.LI: ((_S.INT_INS,), "iregs[{a}] = {d}"),
    Op.MOV: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}]"),
    Op.ADD: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] + iregs[{c}]"),
    Op.SUB: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] - iregs[{c}]"),
    Op.MUL: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] * iregs[{c}]"),
    Op.ADDI: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] + {d}"),
    Op.MULI: ((_S.INT_INS,), "iregs[{a}] = iregs[{b}] * {d}"),
    Op.FLI: ((_S.FP_MOV,), "fregs[{a}] = {d}"),
    Op.FMOV: ((_S.FP_MOV,), "fregs[{a}] = fregs[{b}]"),
    Op.FADD: ((_S.FP_ADD,), "fregs[{a}] = fregs[{b}] + fregs[{c}]"),
    Op.FSUB: ((_S.FP_ADD,), "fregs[{a}] = fregs[{b}] - fregs[{c}]"),
    Op.FMUL: ((_S.FP_MUL,), "fregs[{a}] = fregs[{b}] * fregs[{c}]"),
    Op.FMA: ((_S.FP_FMA,), "fregs[{a}] = fregs[{b}] * fregs[{c}] + fregs[{d}]"),
    Op.FCVT: ((_S.FP_CVT,), "fregs[{a}] = _round_to_single(fregs[{b}])"),
}


@dataclass
class LoopInfo:
    """Static shape of a replay-eligible self-loop block."""

    #: pc of the closing conditional branch.
    branch_pc: int
    #: branch opcode (one of BRANCH_OPS).
    branch_op: int
    #: normalized predicate kind on the counter value: lt/le/gt/ge/eq/ne.
    kind: str
    #: the affine counter register, or -1 when both operands are invariant.
    counter: int
    #: the invariant bound register.
    bound: int
    #: affine stride: ("imm", value) or ("reg", reg, sign).
    stride: Tuple
    #: every affine register with its stride spec (bulk update targets).
    affine: List[Tuple[int, Tuple]]
    #: steady-state instruction fetches per iteration (entered from the
    #: loop's own back edge); the trial must match this exactly.
    steady_fetches: int


@dataclass
class BasicBlock:
    """One compiled basic block."""

    start: int
    n_ins: int
    #: compiled executor; returns ``(next_pc, cur_iline)``.
    fn: object
    #: literal instruction-cache line of the last instruction.
    il_last: int
    #: worst-case cycles one execution can add (every access missing).
    max_cyc: int
    #: worst-case per-signal deltas of one execution (deadline headroom).
    max_deltas: List[int]
    loop: Optional[LoopInfo] = None
    #: ends without a control transfer (next block starts at start+n_ins).
    falls_through: bool = False
    #: consecutive unsteady trials; replay is suspended past the limit.
    fails: int = 0
    fail_epoch: int = -1


@dataclass
class Region:
    """One compiled multi-block region (trace tier).

    The generated function is a pc state machine over the member blocks:
    control transfers between members stay inside the function, and it
    returns ``(next_pc, cur_iline, n_retired)`` on a region exit or when
    the entry *fuel* (whole block steps proven deadline-safe) runs out.
    """

    head: int
    fn: object
    members: Tuple[int, ...]
    n_blocks: int
    #: worst-case instructions one block step retires.
    max_nb: int
    #: worst-case cycles one block step can add.
    max_cyc: int
    #: worst-case per-signal deltas of one block step.
    max_deltas: List[int]
    #: contains *active* dynaprof probe segments (entry requires a quiet
    #: PMU); probes with no registered handler compile to bare counts.
    has_probe: bool
    #: predictor whose state is open-coded into the region (or None when
    #: branches go through the predict/update calls).
    predictor: object = None
    #: touches data memory: entry declines while an EAR is armed because
    #: deferred cycle counts would skew EAR timestamps.
    has_mem: bool = False


@dataclass
class EngineStats:
    """Cumulative work accounting (exposed via ``Machine.engine_stats``)."""

    #: block executions through compiled code (including replay trials).
    blocks_executed: int = 0
    #: instructions retired through the engine (compiled + replayed).
    fast_instructions: int = 0
    #: bulk replay engagements.
    replays: int = 0
    #: instructions retired as bulk loop replay.
    replayed_instructions: int = 0
    #: distinct blocks compiled.
    blocks_compiled: int = 0
    #: flush-barrier invocations (PMU reads / Machine.charge).
    flushes: int = 0
    #: distinct compiled regions / region entries / in-region retires.
    regions_compiled: int = 0
    region_entries: int = 0
    region_instructions: int = 0
    #: distinct superblock traces and replay engagements through them.
    traces_compiled: int = 0
    trace_replays: int = 0


@dataclass
class _CodeTable:
    """Per-program decode cache: compiled blocks keyed by entry pc."""

    code: List[tuple]
    leaders: Set[int]
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    denied: Set[int] = field(default_factory=set)
    #: trace tier: compiled regions / superblock traces keyed by head pc.
    regions: Dict[int, Region] = field(default_factory=dict)
    traces: Dict[int, BasicBlock] = field(default_factory=dict)
    #: back-edge arrival counters feeding the REGION_HOT promotion.
    heat: Dict[int, int] = field(default_factory=dict)
    #: heads where trace/region promotion already failed.
    region_denied: Set[int] = field(default_factory=set)
    #: pcs that cannot block-compile but must stay engine-dispatchable
    #: because a region or trace is keyed there (probe heads).
    nocompile: Set[int] = field(default_factory=set)


def _compute_leaders(code: List[tuple]) -> Set[int]:
    """Basic-block leaders: entry, control targets, post-break pcs."""
    leaders = {0}
    for pc, ins in enumerate(code):
        op = ins[0]
        if op in BRANCH_OPS:
            leaders.add(ins[3])
            leaders.add(pc + 1)
        elif op == Op.JMP or op == Op.CALL:
            leaders.add(ins[1])
            leaders.add(pc + 1)
        elif op in BLOCK_BREAK_OPS or op == Op.RET:
            leaders.add(pc + 1)
    return leaders


def _count_consecutive_takens(kind: str, c: int, s: int, bound: int, cap: int) -> int:
    """Future consecutive taken iterations of the loop branch.

    The counter's branch-time value in future iteration ``j`` (j >= 1)
    is ``c + j*s`` where ``c`` is its post-trial value.  Returns how many
    leading ``j`` satisfy the (normalized) predicate, capped at *cap*.
    """
    v1 = c + s
    if kind == "lt":
        if not v1 < bound:
            return 0
        if s <= 0:
            return cap
        return min(cap, (bound - 1 - c) // s)
    if kind == "le":
        if not v1 <= bound:
            return 0
        if s <= 0:
            return cap
        return min(cap, (bound - c) // s)
    if kind == "gt":
        if not v1 > bound:
            return 0
        if s >= 0:
            return cap
        return min(cap, (c - bound - 1) // (-s))
    if kind == "ge":
        if not v1 >= bound:
            return 0
        if s >= 0:
            return cap
        return min(cap, (c - bound) // (-s))
    if kind == "eq":
        if v1 != bound:
            return 0
        return cap if s == 0 else 1
    # "ne"
    if v1 == bound:
        return 0
    if s != 0 and (bound - c) % s == 0:
        j0 = (bound - c) // s
        if j0 >= 1:
            return min(cap, j0 - 1)
    return cap


class _EmitUnsupported(Exception):
    """An opcode the shared emitter cannot compile (SYSCALL/HALT)."""


class _Emitter:
    """Shared straight-line emitter for trace/region code generation.

    Replicates the effect ordering of :meth:`BlockCompiler.compile_block`
    -- fetch, retirement counts, then the op effect, with pending count
    merging flushed before every observable point -- so traces and
    regions stay bit-exact with blocks and the interpreter.
    """

    def __init__(
        self,
        compiler: "BlockCompiler",
        depth: int = 1,
        il_var: str = "cur_iline",
        track_il: bool = False,
        defer: bool = False,
    ) -> None:
        self.c = compiler
        self.depth = depth
        #: name of the current-iline variable in the generated scope.
        self.il_var = il_var
        #: regions keep ``il`` as a live local across blocks, so fetches
        #: must assign it; traces return literal ilines like blocks do.
        self.track_il = track_il
        #: deferred-count mode: static retirement counts are not written
        #: per pass but accumulated into per-member vectors the region's
        #: exit flush applies as batched multiply-adds.  Fault raises
        #: get a cold inline flush (see :meth:`emit_fault_guard`).
        self.defer = defer
        #: extra indent applied by :meth:`emit` on top of ``depth``;
        #: region codegen bumps this while inlining branch arms.
        self.extra = 0
        self.lines: List[str] = []
        self.pending: Dict[int, int] = {}
        #: pending snapshots at fault raises (defer mode); markers in
        #: the emitted lines are expanded once the exit flush is known.
        self.fault_sites: List[Dict[int, int]] = []
        #: globals the warm-fetch fast path binds (per-set ways lists);
        #: merged into the generated function's namespace by the caller.
        self.fetch_globals: Dict[str, object] = {}
        self.md = [0] * Signal.N_SIGNALS
        self.max_cyc = 0
        self.n_fetches = 0
        self.il_prev: Optional[int] = None
        self.il_first: Optional[int] = None

    def emit(self, text: str, extra: int = 0) -> None:
        self.lines.append("    " * (self.depth + self.extra + extra) + text)

    def add_pending(self, sig: int, n: int = 1) -> None:
        self.pending[sig] = self.pending.get(sig, 0) + n

    def flush_pending(self) -> None:
        if self.defer:
            return  # folded into the member vector by the region emitter
        for sig, n in self.pending.items():
            self.emit(f"counts[{sig}] += {n}")
        self.pending.clear()

    def emit_fault_guard(self, cond: str, raise_stmt: str) -> None:
        """Emit a fault check whose raise leaves counts exact.

        Direct mode flushes pendings before the check (they cover only
        retired instructions).  Defer mode leaves a marker inside the
        cold branch; the region assembler expands it into a full
        deferred flush plus the pending snapshot once every member's
        vector is known.
        """
        if not self.defer:
            self.flush_pending()
            self.emit(cond)
            self.emit("    " + raise_stmt)
            return
        self.emit(cond)
        idx = len(self.fault_sites)
        self.fault_sites.append(dict(self.pending))
        self.emit(f"    \x00F{idx}\x00")
        self.emit("    " + raise_stmt)

    def emit_memory(self, pc: int, op: int, a: int, b: int, d: int) -> None:
        """Memory access mirroring ``BlockCompiler._emit_memory``.

        The dynamic parts (miss paths, penalties) are always written
        directly -- they commute with deferred static adds because
        nothing inside a region reads counts (EAR-armed runs decline
        region entry; see ``_run_region``).  Only the bounds fault
        needs the defer-aware cold flush.
        """
        c = self.c
        emit = self.emit
        is_load = op in (Op.LOAD, Op.FLOAD)
        word = "load" if is_load else "store"
        emit(f"_ad = iregs[{b}] + {d}")
        self.emit_fault_guard(
            "if not 0 <= _ad < mem_len:",
            "raise MachineFault("
            f"f\"pc {pc}: {word} address {{_ad}} out of range\")",
        )
        emit(f"_ba = _ad * {WORD_BYTES} + data_base")
        emit("_pen, _l1m, _l2m, _tlbm = data_access(_ba)")
        emit(f"counts[{_S.LD_INS if is_load else _S.SR_INS}] += 1")
        emit(f"counts[{_S.L1D_ACC}] += 1")
        emit("if _l1m:")
        emit(f"    counts[{_S.L1D_MISS}] += 1")
        emit(f"    counts[{_S.L2_ACC}] += 1")
        emit("    if _l2m:")
        emit(f"        counts[{_S.L2_MISS}] += 1")
        emit("    if pmu is not None and pmu.ear_active:")
        emit(f"        pmu.ear_miss({pc}, _ba, counts[{_S.TOT_CYC}], \"l1d_miss\")")
        emit("if _tlbm:")
        emit(f"    counts[{_S.TLB_DM}] += 1")
        emit(f"    touched.add(_ba >> {c._page_shift})")
        emit("    if pmu is not None and pmu.ear_active:")
        emit(f"        pmu.ear_miss({pc}, _ba, counts[{_S.TOT_CYC}], \"tlb_miss\")")
        emit("if _pen:")
        emit(f"    counts[{_S.TOT_CYC}] += _pen")
        emit(f"    counts[{_S.STL_CYC}] += _pen")
        emit(f"    counts[{_S.MEM_RCY}] += _pen")
        if op == Op.LOAD:
            emit(f"iregs[{a}] = int(memory[_ad])")
        elif op == Op.FLOAD:
            emit(f"fregs[{a}] = float(memory[_ad])")
        elif op == Op.STORE:
            emit(f"memory[_ad] = iregs[{a}]")
        else:
            emit(f"memory[_ad] = fregs[{a}]")

    def emit_fetch(self, pc: int, conditional: bool) -> None:
        c = self.c
        il = (pc * INS_BYTES) >> c._iline_shift
        pad = ""
        if conditional:
            self.emit(f"if {self.il_var} != {il}:")
            pad = "    "
        if self.track_il:
            self.emit(f"{pad}il = {il}")
        # warm-fetch fast path: the line index equals il (both are the
        # byte address >> L1I line bits), so the target set is known at
        # compile time and its ways list can be bound as a global.  When
        # the line is already the MRU way, ``Cache.access`` reduces to
        # ``hits += 1`` with no reordering -- open-code exactly that and
        # fall back to the real ``inst_fetch`` otherwise (cold lines,
        # non-MRU hits, evictions by pollution).
        w = f"_iw{il}"
        self.fetch_globals[w] = c._l1i._sets[il & c._l1i._set_mask]
        self.fetch_globals["_l1i"] = c._l1i
        # an unconditional fetch runs exactly once per pass, so its
        # L1I_ACC signal count is static: it joins the batched per-pass
        # vector (defer mode) or the pending batch (direct mode).  A
        # conditional (entry) fetch may be skipped and stays direct.
        static_acc = not conditional
        if static_acc:
            self.add_pending(_S.L1I_ACC)
        self.emit(f"{pad}if {w} and {w}[-1] == {il}:")
        self.emit(f"{pad}    _l1i.hits += 1")
        if not static_acc:
            self.emit(f"{pad}    counts[{_S.L1I_ACC}] += 1")
        self.emit(f"{pad}else:")
        pad += "    "
        self.emit(f"{pad}_fl, _i1m, _il2m = inst_fetch({pc * INS_BYTES})")
        if not static_acc:
            self.emit(f"{pad}counts[{_S.L1I_ACC}] += 1")
        self.emit(f"{pad}if _i1m:")
        self.emit(f"{pad}    counts[{_S.L1I_MISS}] += 1")
        self.emit(f"{pad}    counts[{_S.L2_ACC}] += 1")
        self.emit(f"{pad}    if _il2m:")
        self.emit(f"{pad}        counts[{_S.L2_MISS}] += 1")
        self.emit(f"{pad}if _fl:")
        self.emit(f"{pad}    counts[{_S.TOT_CYC}] += _fl")
        self.emit(f"{pad}    counts[{_S.STL_CYC}] += _fl")
        self.n_fetches += 1
        md = self.md
        md[_S.L1I_ACC] += 1
        md[_S.L1I_MISS] += 1
        md[_S.L2_ACC] += 1
        md[_S.L2_MISS] += 1
        md[_S.TOT_CYC] += c._fetch_worst
        md[_S.STL_CYC] += c._fetch_worst
        self.max_cyc += c._fetch_worst

    def emit_ins(self, pc: int, ins: tuple, first: bool) -> None:
        """Emit one instruction's effects (control transfer excluded).

        For BRANCH/JMP/CALL/RET/PROBE this applies the fetch and the
        retirement/class counts; the caller emits the transfer (and, for
        branches, calls :meth:`emit_branch_calls` /
        :meth:`emit_branch_inline` for the resolution).
        """
        c = self.c
        op, a, b, cc, d = ins
        il = (pc * INS_BYTES) >> c._iline_shift
        if first:
            self.il_first = il
            self.emit_fetch(pc, conditional=True)
        elif il != self.il_prev:
            # no flush: the fetch observes cache state, never counts[],
            # and its dynamic stall adds commute with pending statics --
            # batches stay pending until a real observation point
            # (probe, branch resolution, memory fault guard, exit).
            self.emit_fetch(pc, conditional=False)
        self.il_prev = il

        lat = c._lat
        md = self.md
        md[_S.TOT_INS] += 1
        md[_S.TOT_CYC] += lat[op]
        self.max_cyc += lat[op]
        self.add_pending(_S.TOT_INS)
        self.add_pending(_S.TOT_CYC, lat[op])

        simple = _SIMPLE_EFFECTS.get(op)
        if simple is not None:
            sigs, template = simple
            for sig in sigs:
                self.add_pending(sig)
                md[sig] += 1
            if template:
                self.emit(template.format(a=a, b=b, c=cc, d=repr(d)))
            return
        if op in (Op.LOAD, Op.FLOAD, Op.STORE, Op.FSTORE):
            self.flush_pending()
            self.emit_memory(pc, op, a, b, d)
            md[_S.LD_INS if op in (Op.LOAD, Op.FLOAD) else _S.SR_INS] += 1
            md[_S.L1D_ACC] += 1
            md[_S.L1D_MISS] += 1
            md[_S.L2_ACC] += 1
            md[_S.L2_MISS] += 1
            md[_S.TLB_DM] += 1
            md[_S.TOT_CYC] += c._mem_worst
            md[_S.STL_CYC] += c._mem_worst
            md[_S.MEM_RCY] += c._mem_worst
            self.max_cyc += c._mem_worst
        elif op == Op.DIV:
            self.add_pending(_S.INT_INS)
            md[_S.INT_INS] += 1
            self.emit_fault_guard(
                f"if iregs[{cc}] == 0:",
                f'raise MachineFault("pc {pc}: integer divide by zero")',
            )
            self.emit(f"_q = abs(iregs[{b}]) // abs(iregs[{cc}])")
            self.emit(
                f"iregs[{a}] = _q if (iregs[{b}] < 0) == (iregs[{cc}] < 0) else -_q"
            )
        elif op == Op.FDIV:
            self.add_pending(_S.FP_DIV)
            md[_S.FP_DIV] += 1
            self.emit_fault_guard(
                f"if fregs[{cc}] == 0.0:",
                f'raise MachineFault("pc {pc}: float divide by zero")',
            )
            self.emit(f"fregs[{a}] = fregs[{b}] / fregs[{cc}]")
        elif op == Op.FSQRT:
            self.add_pending(_S.FP_SQRT)
            md[_S.FP_SQRT] += 1
            self.emit_fault_guard(
                f"if fregs[{b}] < 0.0:",
                f'raise MachineFault("pc {pc}: sqrt of negative value")',
            )
            self.emit(f"fregs[{a}] = fregs[{b}] ** 0.5")
        elif op in BRANCH_OPS:
            self.add_pending(_S.BR_INS)
            self.add_pending(_S.BR_CN)
            md[_S.BR_INS] += 1
            md[_S.BR_CN] += 1
            md[_S.BR_TKN] += 1
            md[_S.BR_NTK] += 1
            md[_S.BR_MSP] += 1
            md[_S.TOT_CYC] += c._branch_penalty
            md[_S.STL_CYC] += c._branch_penalty
            self.max_cyc += c._branch_penalty
        elif op == Op.JMP:
            self.add_pending(_S.BR_INS)
            md[_S.BR_INS] += 1
        elif op == Op.CALL:
            self.add_pending(_S.BR_INS)
            self.add_pending(_S.CALL_INS)
            md[_S.BR_INS] += 1
            md[_S.CALL_INS] += 1
        elif op == Op.RET:
            self.add_pending(_S.BR_INS)
            self.add_pending(_S.RET_INS)
            md[_S.BR_INS] += 1
            md[_S.RET_INS] += 1
        elif op == Op.PROBE:
            self.add_pending(_S.PRB_INS)
            md[_S.PRB_INS] += 1
        else:
            raise _EmitUnsupported(op)

    # -- branch resolution (counts + predictor; transfer is the caller's)

    _CMP = {Op.BLT: "<", Op.BGE: ">=", Op.BEQ: "==", Op.BNE: "!="}

    def emit_branch_calls(self, pc: int, op: int, a: int, b: int) -> None:
        """Resolve a branch through the predict/update calls."""
        bp = self.c._branch_penalty
        self.flush_pending()
        self.emit(f"_t = iregs[{a}] {self._CMP[op]} iregs[{b}]")
        self.emit(f"_p = predict({pc})")
        self.emit(f"pred_update({pc}, _t)")
        self.emit("if _t:")
        self.emit(f"    counts[{_S.BR_TKN}] += 1")
        self.emit("else:")
        self.emit(f"    counts[{_S.BR_NTK}] += 1")
        self.emit("if _p != _t:")
        self.emit(f"    counts[{_S.BR_MSP}] += 1")
        self.emit(f"    counts[{_S.TOT_CYC}] += {bp}")
        self.emit(f"    counts[{_S.STL_CYC}] += {bp}")

    def emit_branch_inline(
        self, pc: int, op: int, a: int, b: int, spec: tuple
    ) -> None:
        """Resolve a branch with the predictor open-coded (regions).

        *spec* comes from ``BranchPredictor.inline_spec``; the emitted
        code reproduces predict()+update() exactly, including table
        aliasing through ``pc & mask``.
        """
        kind, _state, mask = spec
        bp = self.c._branch_penalty
        self.flush_pending()
        self.emit(f"_t = iregs[{a}] {self._CMP[op]} iregs[{b}]")
        if kind == "static":
            # always predicts taken: mispredict exactly when not taken.
            self.emit("if _t:")
            self.emit(f"    counts[{_S.BR_TKN}] += 1")
            self.emit("else:")
            self.emit(f"    counts[{_S.BR_NTK}] += 1")
            self.emit(f"    counts[{_S.BR_MSP}] += 1")
            self.emit(f"    counts[{_S.TOT_CYC}] += {bp}")
            self.emit(f"    counts[{_S.STL_CYC}] += {bp}")
        else:  # twobit
            idx = pc & mask
            self.emit(f"_s = _bt[{idx}]")
            self.emit("if _t:")
            self.emit(f"    counts[{_S.BR_TKN}] += 1")
            self.emit("    if _s < 3:")
            self.emit(f"        _bt[{idx}] = _s + 1")
            self.emit("    if _s < 2:")
            self.emit(f"        counts[{_S.BR_MSP}] += 1")
            self.emit(f"        counts[{_S.TOT_CYC}] += {bp}")
            self.emit(f"        counts[{_S.STL_CYC}] += {bp}")
            self.emit("else:")
            self.emit(f"    counts[{_S.BR_NTK}] += 1")
            self.emit("    if _s > 0:")
            self.emit(f"        _bt[{idx}] = _s - 1")
            self.emit("    if _s >= 2:")
            self.emit(f"        counts[{_S.BR_MSP}] += 1")
            self.emit(f"        counts[{_S.TOT_CYC}] += {bp}")
            self.emit(f"        counts[{_S.STL_CYC}] += {bp}")


class BlockCompiler:
    """Generates the per-block executor functions.

    The generated source replicates the interpreter's effect ordering
    instruction for instruction.  Count updates of consecutive simple ALU
    instructions are merged into a single segment; every observable point
    (memory access, fault check, EAR callback, branch resolution) flushes
    the pending segment first, so ``counts[]`` is exact whenever foreign
    code can run or an exception can propagate.
    """

    def __init__(self, cpu) -> None:
        config = cpu.config
        hcfg = cpu.hierarchy.config
        self._lat = config.latencies
        self._branch_penalty = config.branch_penalty
        self._iline_shift = hcfg.l1i.line_bits
        self._page_shift = hcfg.tlb.page_bits
        #: the L1I cache object, for the open-coded warm-fetch fast path
        #: (trace/region codegen peeks the MRU way of the statically
        #: known set before paying for a full ``inst_fetch`` call).
        self._l1i = cpu.hierarchy.l1i
        #: worst-case extra cycles for one data access / one fetch.
        self._mem_worst = hcfg.tlb_walk_latency + hcfg.l2_latency + hcfg.mem_latency
        self._fetch_worst = hcfg.l2_latency + hcfg.mem_latency
        self._globals = {
            "MachineFault": _machine_fault_class(),
            "_round_to_single": _round_to_single_fn(),
        }

    # -- partitioning ---------------------------------------------------

    def scan_block(self, code: List[tuple], start: int) -> List[tuple]:
        """Instructions of the block headed at *start* (may be empty)."""
        instrs: List[tuple] = []
        pc = start
        end = len(code)
        while pc < end and len(instrs) < MAX_BLOCK_LEN:
            ins = code[pc]
            op = ins[0]
            if op in BLOCK_BREAK_OPS:
                break
            instrs.append(ins)
            if op in BRANCH_OPS or op in (Op.JMP, Op.CALL, Op.RET):
                break
            pc += 1
        return instrs

    # -- code generation ------------------------------------------------

    def compile_block(self, code: List[tuple], start: int) -> Optional[BasicBlock]:
        instrs = self.scan_block(code, start)
        if not instrs:
            return None
        last_op = instrs[-1][0]
        if last_op not in BRANCH_OPS and last_op not in (Op.JMP, Op.CALL, Op.RET):
            # fall-through block (next pc may be past the end; the slow
            # path then raises the same "pc out of range" fault).
            pass

        lines: List[str] = []
        pending: Dict[int, int] = {}
        md = [0] * Signal.N_SIGNALS
        max_cyc = 0
        n_fetches = 0

        def emit(text: str) -> None:
            lines.append("    " + text)

        def add_pending(sig: int, n: int = 1) -> None:
            pending[sig] = pending.get(sig, 0) + n

        def flush_pending() -> None:
            for sig, n in pending.items():
                emit(f"counts[{sig}] += {n}")
            pending.clear()

        def emit_fetch(pc: int, conditional: bool) -> None:
            nonlocal max_cyc, n_fetches
            il = (pc * INS_BYTES) >> self._iline_shift
            pad = ""
            if conditional:
                emit(f"if cur_iline != {il}:")
                pad = "    "
            emit(f"{pad}_fl, _i1m, _il2m = inst_fetch({pc * INS_BYTES})")
            emit(f"{pad}counts[{_S.L1I_ACC}] += 1")
            emit(f"{pad}if _i1m:")
            emit(f"{pad}    counts[{_S.L1I_MISS}] += 1")
            emit(f"{pad}    counts[{_S.L2_ACC}] += 1")
            emit(f"{pad}    if _il2m:")
            emit(f"{pad}        counts[{_S.L2_MISS}] += 1")
            emit(f"{pad}if _fl:")
            emit(f"{pad}    counts[{_S.TOT_CYC}] += _fl")
            emit(f"{pad}    counts[{_S.STL_CYC}] += _fl")
            n_fetches += 1
            md[_S.L1I_ACC] += 1
            md[_S.L1I_MISS] += 1
            md[_S.L2_ACC] += 1
            md[_S.L2_MISS] += 1
            md[_S.TOT_CYC] += self._fetch_worst
            md[_S.STL_CYC] += self._fetch_worst
            max_cyc += self._fetch_worst

        lat = self._lat
        il_prev = None
        il_start = (start * INS_BYTES) >> self._iline_shift
        for i, ins in enumerate(instrs):
            pc = start + i
            op, a, b, c, d = ins
            il = (pc * INS_BYTES) >> self._iline_shift
            if i == 0:
                emit_fetch(pc, conditional=True)
            elif il != il_prev:
                flush_pending()
                emit_fetch(pc, conditional=False)
            il_prev = il

            md[_S.TOT_INS] += 1
            md[_S.TOT_CYC] += lat[op]
            max_cyc += lat[op]

            simple = _SIMPLE_EFFECTS.get(op)
            if simple is not None:
                sigs, template = simple
                add_pending(_S.TOT_INS)
                add_pending(_S.TOT_CYC, lat[op])
                for sig in sigs:
                    add_pending(sig)
                    md[sig] += 1
                if template:
                    emit(template.format(a=a, b=b, c=c, d=repr(d)))
                continue

            # every remaining opcode is an observable point: apply its
            # retirement counts in interpreter order, before any fault
            # check or hierarchy access.
            add_pending(_S.TOT_INS)
            add_pending(_S.TOT_CYC, lat[op])
            if op in (Op.LOAD, Op.FLOAD, Op.STORE, Op.FSTORE):
                flush_pending()
                self._emit_memory(emit, pc, op, a, b, d)
                md[_S.LD_INS if op in (Op.LOAD, Op.FLOAD) else _S.SR_INS] += 1
                md[_S.L1D_ACC] += 1
                md[_S.L1D_MISS] += 1
                md[_S.L2_ACC] += 1
                md[_S.L2_MISS] += 1
                md[_S.TLB_DM] += 1
                md[_S.TOT_CYC] += self._mem_worst
                md[_S.STL_CYC] += self._mem_worst
                md[_S.MEM_RCY] += self._mem_worst
                max_cyc += self._mem_worst
            elif op == Op.DIV:
                add_pending(_S.INT_INS)
                md[_S.INT_INS] += 1
                flush_pending()
                emit(f"if iregs[{c}] == 0:")
                emit(f'    raise MachineFault("pc {pc}: integer divide by zero")')
                emit(f"_q = abs(iregs[{b}]) // abs(iregs[{c}])")
                emit(
                    f"iregs[{a}] = _q if (iregs[{b}] < 0) == (iregs[{c}] < 0) else -_q"
                )
            elif op == Op.FDIV:
                add_pending(_S.FP_DIV)
                md[_S.FP_DIV] += 1
                flush_pending()
                emit(f"if fregs[{c}] == 0.0:")
                emit(f'    raise MachineFault("pc {pc}: float divide by zero")')
                emit(f"fregs[{a}] = fregs[{b}] / fregs[{c}]")
            elif op == Op.FSQRT:
                add_pending(_S.FP_SQRT)
                md[_S.FP_SQRT] += 1
                flush_pending()
                emit(f"if fregs[{b}] < 0.0:")
                emit(f'    raise MachineFault("pc {pc}: sqrt of negative value")')
                emit(f"fregs[{a}] = fregs[{b}] ** 0.5")
            elif op in BRANCH_OPS:
                add_pending(_S.BR_INS)
                add_pending(_S.BR_CN)
                md[_S.BR_INS] += 1
                md[_S.BR_CN] += 1
                md[_S.BR_TKN] += 1
                md[_S.BR_NTK] += 1
                md[_S.BR_MSP] += 1
                md[_S.TOT_CYC] += self._branch_penalty
                md[_S.STL_CYC] += self._branch_penalty
                max_cyc += self._branch_penalty
                flush_pending()
                cmp_op = {Op.BLT: "<", Op.BGE: ">=", Op.BEQ: "==", Op.BNE: "!="}[op]
                emit(f"_t = iregs[{a}] {cmp_op} iregs[{b}]")
                emit(f"_p = predict({pc})")
                emit(f"pred_update({pc}, _t)")
                emit("if _t:")
                emit(f"    counts[{_S.BR_TKN}] += 1")
                emit("else:")
                emit(f"    counts[{_S.BR_NTK}] += 1")
                emit("if _p != _t:")
                emit(f"    counts[{_S.BR_MSP}] += 1")
                emit(f"    counts[{_S.TOT_CYC}] += {self._branch_penalty}")
                emit(f"    counts[{_S.STL_CYC}] += {self._branch_penalty}")
                emit(f"return ({c} if _t else {pc + 1}), {il}")
            elif op == Op.JMP:
                add_pending(_S.BR_INS)
                md[_S.BR_INS] += 1
                flush_pending()
                emit(f"return {a}, {il}")
            elif op == Op.CALL:
                add_pending(_S.BR_INS)
                add_pending(_S.CALL_INS)
                md[_S.BR_INS] += 1
                md[_S.CALL_INS] += 1
                flush_pending()
                emit(f"call_stack.append({pc + 1})")
                emit(f"return {a}, {il}")
            elif op == Op.RET:
                add_pending(_S.BR_INS)
                add_pending(_S.RET_INS)
                md[_S.BR_INS] += 1
                md[_S.RET_INS] += 1
                flush_pending()
                emit("if not call_stack:")
                emit(f'    raise MachineFault("pc {pc}: RET with empty call stack")')
                emit(f"return call_stack.pop(), {il}")
            else:  # pragma: no cover - BLOCK_BREAK_OPS never reach here
                return None

        last_pc = start + len(instrs) - 1
        il_last = (last_pc * INS_BYTES) >> self._iline_shift
        last_op = instrs[-1][0]
        falls_through = last_op not in BRANCH_OPS and last_op not in (
            Op.JMP, Op.CALL, Op.RET
        )
        if falls_through:
            flush_pending()
            emit(f"return {last_pc + 1}, {il_last}")

        src = (
            "def _block(counts, iregs, fregs, memory, mem_len, call_stack,\n"
            "           data_access, inst_fetch, predict, pred_update, pmu,\n"
            "           touched, data_base, cur_iline):\n"
            + "\n".join(lines)
            + "\n"
        )
        ns: Dict[str, object] = {}
        exec(compile(src, f"<block@{start}>", "exec"), dict(self._globals), ns)
        fn = ns["_block"]

        block = BasicBlock(
            start=start,
            n_ins=len(instrs),
            fn=fn,
            il_last=il_last,
            max_cyc=max_cyc,
            max_deltas=md,
            falls_through=falls_through,
        )
        block.loop = self._analyze_loop(instrs, start, n_fetches, il_start, il_last)
        return block

    def _emit_memory(self, emit, pc: int, op: int, a: int, b: int, d: int) -> None:
        is_load = op in (Op.LOAD, Op.FLOAD)
        word = "load" if is_load else "store"
        emit(f"_ad = iregs[{b}] + {d}")
        emit("if not 0 <= _ad < mem_len:")
        emit(
            "    raise MachineFault("
            f"f\"pc {pc}: {word} address {{_ad}} out of range\")"
        )
        emit(f"_ba = _ad * {WORD_BYTES} + data_base")
        emit("_pen, _l1m, _l2m, _tlbm = data_access(_ba)")
        emit(f"counts[{_S.LD_INS if is_load else _S.SR_INS}] += 1")
        emit(f"counts[{_S.L1D_ACC}] += 1")
        emit("if _l1m:")
        emit(f"    counts[{_S.L1D_MISS}] += 1")
        emit(f"    counts[{_S.L2_ACC}] += 1")
        emit("    if _l2m:")
        emit(f"        counts[{_S.L2_MISS}] += 1")
        emit("    if pmu is not None and pmu.ear_active:")
        emit(f"        pmu.ear_miss({pc}, _ba, counts[{_S.TOT_CYC}], \"l1d_miss\")")
        emit("if _tlbm:")
        emit(f"    counts[{_S.TLB_DM}] += 1")
        emit(f"    touched.add(_ba >> {self._page_shift})")
        emit("    if pmu is not None and pmu.ear_active:")
        emit(f"        pmu.ear_miss({pc}, _ba, counts[{_S.TOT_CYC}], \"tlb_miss\")")
        emit("if _pen:")
        emit(f"    counts[{_S.TOT_CYC}] += _pen")
        emit(f"    counts[{_S.STL_CYC}] += _pen")
        emit(f"    counts[{_S.MEM_RCY}] += _pen")
        if op == Op.LOAD:
            emit(f"iregs[{a}] = int(memory[_ad])")
        elif op == Op.FLOAD:
            emit(f"fregs[{a}] = float(memory[_ad])")
        elif op == Op.STORE:
            emit(f"memory[_ad] = iregs[{a}]")
        else:
            emit(f"memory[_ad] = fregs[{a}]")

    # -- superblock traces ----------------------------------------------

    def trace_path(
        self, code: List[tuple], head: int
    ) -> Optional[List[Tuple[int, tuple]]]:
        """The unique static path from *head* back to *head*, or None.

        Follows fall-throughs, JMP, CALL (pushing the literal
        continuation) and statically matched RETs.  Succeeds when the
        path closes with a conditional branch targeting *head* at call
        depth zero; aborts on probes/syscalls/halts, a mid-path
        conditional branch, a revisited pc, an unmatched RET, or length
        past TRACE_MAX_INS.
        """
        path: List[Tuple[int, tuple]] = []
        seen: Set[int] = set()
        stack: List[int] = []
        end = len(code)
        pc = head
        while len(path) < TRACE_MAX_INS:
            if not 0 <= pc < end or pc in seen:
                return None
            ins = code[pc]
            op = ins[0]
            if op in BLOCK_BREAK_OPS:
                return None
            seen.add(pc)
            path.append((pc, ins))
            if op in BRANCH_OPS:
                if ins[3] == head and not stack:
                    return path
                return None
            if op == Op.JMP:
                pc = ins[1]
            elif op == Op.CALL:
                stack.append(pc + 1)
                pc = ins[1]
            elif op == Op.RET:
                if not stack:
                    return None
                pc = stack.pop()
            else:
                pc += 1
        return None

    def compile_trace(self, code: List[tuple], head: int) -> Optional[BasicBlock]:
        """Compile the unique loop path through *head* as one superblock.

        The result is a :class:`BasicBlock` with the block-fn calling
        convention, so the engine runs it exactly like a self-loop block
        -- including the trial + O(1) bulk-replay machinery, now over the
        whole multi-block trace.
        """
        path = self.trace_path(code, head)
        if path is None or len(path) < 2:
            return None
        e = _Emitter(self)
        last = len(path) - 1
        for i, (pc, ins) in enumerate(path):
            e.emit_ins(pc, ins, first=(i == 0))
            if i == last:
                break
            op = ins[0]
            if op == Op.CALL:
                e.emit(f"call_stack.append({pc + 1})")
            elif op == Op.RET:
                # statically matched to a CALL earlier on this path, so
                # the stack top is that call's continuation: pop only.
                e.emit("call_stack.pop()")
        tpc, tins = path[last]
        e.emit_branch_calls(tpc, tins[0], tins[1], tins[2])
        il_last = (tpc * INS_BYTES) >> self._iline_shift
        e.emit(f"return ({head} if _t else {tpc + 1}), {il_last}")

        src = (
            "def _trace(counts, iregs, fregs, memory, mem_len, call_stack,\n"
            "           data_access, inst_fetch, predict, pred_update, pmu,\n"
            "           touched, data_base, cur_iline):\n"
            + "\n".join(e.lines)
            + "\n"
        )
        ns: Dict[str, object] = {}
        g = dict(self._globals)
        g.update(e.fetch_globals)
        exec(compile(src, f"<trace@{head}>", "exec"), g, ns)
        block = BasicBlock(
            start=head,
            n_ins=len(path),
            fn=ns["_trace"],
            il_last=il_last,
            max_cyc=e.max_cyc,
            max_deltas=e.md,
        )
        steady = (e.n_fetches - 1) + (1 if e.il_first != il_last else 0)
        block.loop = self._analyze_cycle(
            [ins for _pc, ins in path[:last]], tins, tpc, steady
        )
        return block

    # -- compiled regions -----------------------------------------------

    def _region_members(
        self, code: List[tuple], head: int
    ) -> Optional[List[Tuple[int, Tuple[str, List[tuple], List[int]]]]]:
        """Member blocks of the region rooted at *head*, or None.

        BFS over the static CFG from *head*, capped at
        MAX_REGION_BLOCKS, pruned to blocks that can reach *head* again
        (anything else exits the region on first touch anyway); requires
        a cycle through *head* and at least two members.
        """
        end = len(code)
        info: Dict[int, Tuple[str, List[tuple], List[int]]] = {}
        order: List[int] = []
        queue = [head]
        visited = {head}
        call_conts: Set[int] = set()
        while queue:
            s = queue.pop(0)
            if not 0 <= s < end:
                continue
            ins = code[s]
            op = ins[0]
            if op == Op.PROBE:
                kind, instrs, succs = "probe", [ins], [s + 1]
            elif op in BLOCK_BREAK_OPS:
                continue  # SYSCALL/HALT never join a region
            else:
                instrs = self.scan_block(code, s)
                if not instrs:
                    continue
                lpc = s + len(instrs) - 1
                term = instrs[-1]
                lop = term[0]
                if lop in BRANCH_OPS:
                    succs = [term[3], lpc + 1]
                elif lop == Op.JMP:
                    succs = [term[1]]
                elif lop == Op.CALL:
                    call_conts.add(lpc + 1)
                    succs = [term[1], lpc + 1]
                elif lop == Op.RET:
                    succs = []  # dynamic; resolved via call_conts below
                else:
                    succs = [lpc + 1]  # MAX_BLOCK_LEN split
                kind = "block"
            info[s] = (kind, instrs, succs)
            order.append(s)
            for t in succs:
                if t not in visited and len(visited) < MAX_REGION_BLOCKS:
                    visited.add(t)
                    queue.append(t)
        if head not in info:
            return None

        def outs(entry):
            kind, _instrs, succs = entry
            if not succs and kind == "block":
                return call_conts  # RET: any call continuation we saw
            return succs

        reach = {head}
        changed = True
        while changed:
            changed = False
            for s, entry in info.items():
                if s in reach:
                    continue
                if any(t in reach for t in outs(entry)):
                    reach.add(s)
                    changed = True
        if not any(head in outs(info[s]) for s in info if s in reach):
            return None  # no cycle back through the head
        members = [(s, info[s]) for s in order if s in reach]
        if len(members) < 2:
            return None
        return members

    def compile_region(
        self, code: List[tuple], head: int, predictor, engine
    ) -> Optional[Region]:
        """Compile the loop region at *head* into a pc state machine.

        Three codegen strategies stack on top of the basic state
        machine:

        - **superblock inlining** -- a member with exactly one incoming
          edge is emitted inline at its predecessor's transfer site, so
          hot cycles run straight-line with one dispatch per iteration;
        - **deferred (vectorized) counts** -- when the region has no
          active probes, static per-pass retirement counts accumulate
          in per-member pass counters (plus per-branch taken/mispredict
          counters) and are applied as one batched multiply-add flush
          at region exit; fault raises get a cold inline flush so
          counts stay exact at every observable point;
        - **pre-resolved probe handlers** -- probe members call the
          registered handler directly (the machine invalidates engines
          when registrations change) behind a guard specialized on the
          CPU's PMU; probes with no handler compile to bare counts.
        """
        members = self._region_members(code, head)
        if members is None:
            return None
        info: Dict[int, Tuple[str, List[tuple], List[int]]] = dict(members)
        member_set = set(info)
        order = [s for s, _ in members]
        spec = predictor.inline_spec() if predictor is not None else None
        cpu = engine.cpu if engine is not None else None
        resolver = getattr(cpu, "probe_resolver", None)
        pmu_obj = getattr(cpu, "pmu", None)
        bp = self._branch_penalty

        # -- probe handler resolution --------------------------------
        probe_mode: Dict[int, Tuple[str, object]] = {}
        for s in order:
            kind, instrs, _succs = info[s]
            if kind != "probe":
                continue
            pid = instrs[0][1]
            if resolver is not None:
                h = resolver(pid)
                probe_mode[s] = ("direct", h) if h is not None else ("none", None)
            else:
                probe_mode[s] = ("dynamic", None)
        active_probes = {s for s, (m, _h) in probe_mode.items() if m != "none"}
        defer = not active_probes
        has_mem = any(
            ins[0] in (Op.LOAD, Op.FLOAD, Op.STORE, Op.FSTORE)
            for s in order
            for ins in info[s][1]
        )

        # -- static transfer edges, for superblock inlining ----------
        call_conts: Set[int] = set()
        has_ret = False
        edges: Dict[int, List[int]] = {}
        for s in order:
            kind, instrs, _succs = info[s]
            if kind == "probe":
                edges[s] = [s + 1]
                continue
            lpc = s + len(instrs) - 1
            term = instrs[-1]
            lop = term[0]
            if lop in BRANCH_OPS:
                edges[s] = [term[3], lpc + 1]
            elif lop == Op.JMP:
                edges[s] = [term[1]]
            elif lop == Op.CALL:
                call_conts.add(lpc + 1)
                edges[s] = [term[1]]
            elif lop == Op.RET:
                has_ret = True
                edges[s] = []
            else:
                edges[s] = [lpc + 1]
        indeg: Dict[int, int] = {s: 0 for s in member_set}
        for s, ts in edges.items():
            for t in ts:
                if t in indeg:
                    indeg[t] += 1
        # RET targets are reached dynamically; they must keep a
        # dispatch arm of their own.
        no_inline: Set[int] = set(call_conts) if has_ret else set()

        def inlinable(t: int) -> bool:
            # indeg > 1 joins are tail-duplicated into each predecessor
            # path (superblock formation) when small enough; every
            # emitted copy gets its own pass counters, so duplication
            # never shares or double-applies count state.
            return (
                t in member_set
                and t != head
                and t not in no_inline
                and (indeg[t] == 1 or len(info[t][1]) <= REGION_DUP_MAX_INS)
            )

        # -- emission ------------------------------------------------
        # Count state is keyed by *emitted copy*, not by member pc:
        # tail duplication can emit one member several times (and a
        # member can be both inlined and a dispatch root), so each copy
        # gets its own pass counter ``k<cid>`` and static count vector.
        member_vec: Dict[int, Dict[int, int]] = {}  # cid -> sig -> count
        member_nb: Dict[int, int] = {}  # cid -> instructions per pass
        branch_meta: List[Tuple[int, int, str]] = []  # (pc, cid, msp kind)
        copy_seq = [0]
        handler_globals: Dict[str, object] = {}
        emitting: List[int] = []
        scheduled: Set[int] = set()
        queue: List[int] = []

        def schedule(t: int) -> None:
            if t not in scheduled:
                scheduled.add(t)
                queue.append(t)

        cur_root = [head]

        def emit_goto(em: _Emitter, t: int, acc: int) -> None:
            """End-of-path transfer to pc *t* (inline, dispatch, or exit).

            Units are emitted as ``while True`` inner loops inside a
            ``while fuel > 0`` dispatcher, so the hot back-edge to the
            current unit's own root is a bare ``continue``; transfers to
            other units break to the dispatcher, and exits break with
            ``pc`` set (defer mode, falling through to the batched count
            flush) or return directly (direct mode).
            """
            if (
                inlinable(t)
                and t not in emitting
                and t not in scheduled
                and acc + len(info[t][1]) <= TRACE_MAX_INS
                and em.emitted_ins + len(info[t][1]) <= REGION_UNIT_EMIT_MAX
            ):
                emit_body(em, t, acc)
                return
            em.flush_pending()
            if t == cur_root[0]:
                if not defer and acc:
                    em.emit(f"n += {acc}")
                em.emit("fuel -= 1")
                em.emit("if fuel > 0:")
                em.emit("    continue")
                if defer:
                    em.emit(f"pc = {t}")
                    em.emit("break")
                else:
                    em.emit(f"return {t}, il, n")
            elif t in member_set:
                schedule(t)
                if not defer and acc:
                    em.emit(f"n += {acc}")
                em.emit("fuel -= 1")
                em.emit(f"pc = {t}")
                em.emit("break")
            elif defer:
                em.emit(f"pc = {t}")
                em.emit("break")
            else:
                em.emit(f"return {t}, il, n + {acc}")

        def fold_member(em: _Emitter, cid: int) -> None:
            """Defer mode: bank this pass's static counts into k-weighted
            vectors and bump this emitted copy's pass counter."""
            vec = member_vec.setdefault(cid, {})
            for sig, v in em.pending.items():
                vec[sig] = vec.get(sig, 0) + v
            em.pending.clear()
            em.emit(f"k{cid} += 1")

        def emit_arms(
            em: _Emitter, bpc: int, owner: int, op: int, a: int, b: int,
            taken: int, fall: int, acc: int,
        ) -> None:
            """Branch resolution with the transfer folded into the arms."""
            cmp_ = _Emitter._CMP[op]
            em.flush_pending()
            cond = f"iregs[{a}] {cmp_} iregs[{b}]"
            if spec is None:
                em.emit(f"_t = {cond}")
                cond = "_t"
                em.emit(f"_p = predict({bpc})")
                em.emit(f"pred_update({bpc}, _t)")
                em.emit("if _p != _t:")
                if defer:
                    em.emit(f"    m{bpc}_{owner} += 1")
                else:
                    em.emit(f"    counts[{_S.BR_MSP}] += 1")
                    em.emit(f"    counts[{_S.TOT_CYC}] += {bp}")
                    em.emit(f"    counts[{_S.STL_CYC}] += {bp}")
                taken_pre: List[str] = (
                    [f"t{bpc}_{owner} += 1"] if defer
                    else [f"counts[{_S.BR_TKN}] += 1"]
                )
                fall_pre: List[str] = (
                    [] if defer else [f"counts[{_S.BR_NTK}] += 1"]
                )
                kindb = "m"
            elif spec[0] == "static":
                taken_pre = (
                    [f"t{bpc}_{owner} += 1"] if defer
                    else [f"counts[{_S.BR_TKN}] += 1"]
                )
                fall_pre = (
                    [] if defer else [
                        f"counts[{_S.BR_NTK}] += 1",
                        f"counts[{_S.BR_MSP}] += 1",
                        f"counts[{_S.TOT_CYC}] += {bp}",
                        f"counts[{_S.STL_CYC}] += {bp}",
                    ]
                )
                kindb = "static"
            else:
                # twobit; the mispredict check nests inside the
                # table-update check (_s < 2 implies _s < 3, _s >= 2
                # implies _s > 0), so saturated steady branches pay one
                # comparison, not two.
                idx = bpc & spec[2]
                em.emit(f"_s = _bt[{idx}]")
                if defer:
                    taken_pre = [
                        f"t{bpc}_{owner} += 1",
                        "if _s < 3:",
                        f"    _bt[{idx}] = _s + 1",
                        "    if _s < 2:",
                        f"        m{bpc}_{owner} += 1",
                    ]
                    fall_pre = [
                        "if _s > 0:",
                        f"    _bt[{idx}] = _s - 1",
                        "    if _s >= 2:",
                        f"        m{bpc}_{owner} += 1",
                    ]
                else:
                    taken_pre = [
                        f"counts[{_S.BR_TKN}] += 1",
                        "if _s < 3:",
                        f"    _bt[{idx}] = _s + 1",
                        "    if _s < 2:",
                        f"        counts[{_S.BR_MSP}] += 1",
                        f"        counts[{_S.TOT_CYC}] += {bp}",
                        f"        counts[{_S.STL_CYC}] += {bp}",
                    ]
                    fall_pre = [
                        f"counts[{_S.BR_NTK}] += 1",
                        "if _s > 0:",
                        f"    _bt[{idx}] = _s - 1",
                        "    if _s >= 2:",
                        f"        counts[{_S.BR_MSP}] += 1",
                        f"        counts[{_S.TOT_CYC}] += {bp}",
                        f"        counts[{_S.STL_CYC}] += {bp}",
                    ]
                kindb = "m"
            if defer:
                branch_meta.append((bpc, owner, kindb))
            saved_il = em.il_prev
            em.emit(f"if {cond}:")
            em.extra += 1
            for ln in taken_pre:
                em.emit(ln)
            emit_goto(em, taken, acc)
            em.extra -= 1
            em.il_prev = saved_il
            em.emit("else:")
            em.extra += 1
            for ln in fall_pre:
                em.emit(ln)
            emit_goto(em, fall, acc)
            em.extra -= 1
            em.il_prev = saved_il

        def emit_body(em: _Emitter, s: int, acc: int) -> None:
            """Emit one copy of member *s* (inlining successors) into *em*."""
            kind, instrs, _succs = info[s]
            cid = copy_seq[0]
            copy_seq[0] += 1
            emitting.append(s)
            first = acc == 0
            if kind == "probe":
                member_nb[cid] = 1
                em.emitted_ins += 1
                mode, handler = probe_mode[s]
                pid = instrs[0][1]
                em.emit_ins(s, instrs[0], first=first)
                if mode == "none":
                    if defer:
                        fold_member(em, cid)
                    emit_goto(em, s + 1, acc + 1)
                else:
                    em.flush_pending()
                    # Three terms cover every way a handler can force a
                    # precise exit: ``_table is None`` subsumes the PMU
                    # flags (arming a watch/timer/sampler/EAR fires
                    # ``pmu.unquiet_hook`` -> ``engine.unbind``) and the
                    # probe-registry invalidation; region *entry* already
                    # requires a quiet PMU, so mid-region arming is the
                    # only transition to catch.
                    guard = (
                        "cpu.stop_flag or cpu.code is not _code"
                        " or _eng._table is None"
                    )
                    if mode == "direct":
                        handler_globals[f"_h{s}"] = handler
                        em.emit(f"cpu.pc = {s}")
                        em.emit("cpu.cur_iline = il")
                        em.emit(f"_h{s}({pid}, cpu)")
                        em.emit(f"if {guard}:")
                        em.emit(f"    _eng.probe_exit_pc = {s}")
                        em.emit(f"    return {s + 1}, il, n + {acc + 1}")
                    else:  # dynamic dispatch through the cpu hook
                        em.emit("if probe_dispatch is not None:")
                        em.emit(f"    cpu.pc = {s}")
                        em.emit("    cpu.cur_iline = il")
                        em.emit(f"    probe_dispatch({pid}, cpu)")
                        em.emit(f"    if {guard}:")
                        em.emit(f"        _eng.probe_exit_pc = {s}")
                        em.emit(f"        return {s + 1}, il, n + {acc + 1}")
                    emit_goto(em, s + 1, acc + 1)
                em.unit_nb = max(getattr(em, "unit_nb", 0), acc + 1)
                emitting.pop()
                return
            nb = len(instrs)
            member_nb[cid] = nb
            em.emitted_ins += nb
            for i, ins in enumerate(instrs):
                em.emit_ins(s + i, ins, first=(first and i == 0))
            acc2 = acc + nb
            em.unit_nb = max(getattr(em, "unit_nb", 0), acc2)
            lpc = s + nb - 1
            term = instrs[-1]
            lop = term[0]
            if defer:
                fold_member(em, cid)
            if lop in BRANCH_OPS:
                emit_arms(
                    em, lpc, cid, lop, term[1], term[2], term[3], lpc + 1, acc2
                )
            elif lop == Op.JMP:
                emit_goto(em, term[1], acc2)
            elif lop == Op.CALL:
                em.emit(f"call_stack.append({lpc + 1})")
                emit_goto(em, term[1], acc2)
            elif lop == Op.RET:
                em.emit_fault_guard(
                    "if not call_stack:",
                    f'raise MachineFault("pc {lpc}: '
                    'RET with empty call stack")',
                )
                em.emit("_r = call_stack.pop()")
                em.flush_pending()
                if not defer and acc2:
                    em.emit(f"n += {acc2}")
                em.emit("fuel -= 1")
                em.emit("pc = _r")
                em.emit("break")
            else:
                emit_goto(em, lpc + 1, acc2)
            emitting.pop()

        schedule(head)
        for s in order:
            if not inlinable(s):
                schedule(s)
        units: List[Tuple[int, _Emitter]] = []
        qi = 0
        while qi < len(queue):
            s = queue[qi]
            qi += 1
            cur_root[0] = s
            em = _Emitter(self, depth=4, il_var="il", track_il=True, defer=defer)
            em.unit_nb = 0
            em.emitted_ins = 0
            emit_body(em, s, 0)
            units.append((s, em))

        # -- exit flush (defer mode) ---------------------------------
        def flush_lines(extra_const: Dict[int, int]) -> List[str]:
            terms: Dict[int, List[str]] = {}
            for s, vec in member_vec.items():
                for sig, v in vec.items():
                    terms.setdefault(sig, []).append(
                        f"k{s}" if v == 1 else f"k{s}*{v}"
                    )
            msp_parts: List[str] = []
            for bpc, owner, kindb in branch_meta:
                terms.setdefault(_S.BR_TKN, []).append(f"t{bpc}_{owner}")
                part_ntk = f"(k{owner} - t{bpc}_{owner})"
                terms.setdefault(_S.BR_NTK, []).append(part_ntk)
                part = f"m{bpc}_{owner}" if kindb == "m" else part_ntk
                terms.setdefault(_S.BR_MSP, []).append(part)
                msp_parts.append(part)
            if msp_parts:
                msum = " + ".join(msp_parts)
                expr = f"({msum})*{bp}" if bp != 1 else f"({msum})"
                terms.setdefault(_S.TOT_CYC, []).append(expr)
                terms.setdefault(_S.STL_CYC, []).append(expr)
            out: List[str] = []
            for sig in sorted(set(terms) | set(extra_const)):
                parts = list(terms.get(sig, []))
                c0 = extra_const.get(sig, 0)
                if c0:
                    parts.append(str(c0))
                out.append(f"counts[{sig}] += " + " + ".join(parts))
            return out

        n_parts = [
            f"k{s}" if nb == 1 else f"k{s}*{nb}"
            for s, nb in sorted(member_nb.items())
        ]
        n_expr = " + ".join(n_parts) if n_parts else "0"

        lines: List[str] = []
        max_nb = 0
        max_cyc = 0
        max_deltas = [0] * Signal.N_SIGNALS
        for idx, (s, em) in enumerate(units):
            body = em.lines
            if defer and em.fault_sites:
                body = []
                for ln in em.lines:
                    stripped = ln.lstrip()
                    if stripped.startswith("\x00F"):
                        fidx = int(stripped[2:-1])
                        pad = ln[: len(ln) - len(stripped)]
                        for fl in flush_lines(em.fault_sites[fidx]):
                            body.append(pad + fl)
                    else:
                        body.append(ln)
            kw = "if" if idx == 0 else "elif"
            lines.append(f"        {kw} pc == {s}:")
            lines.append("            while True:")
            lines.extend(body)
            max_nb = max(max_nb, em.unit_nb)
            max_cyc = max(max_cyc, em.max_cyc)
            for i in range(Signal.N_SIGNALS):
                if em.md[i] > max_deltas[i]:
                    max_deltas[i] = em.md[i]
        lines.append("        else:")
        lines.append("            break")

        pre: List[str] = []
        if defer:
            for s in sorted(member_nb):
                pre.append(f"    k{s} = 0")
            for bpc, owner, kindb in branch_meta:
                pre.append(f"    t{bpc}_{owner} = 0")
                if kindb == "m":
                    pre.append(f"    m{bpc}_{owner} = 0")
        else:
            pre.append("    n = 0")
        tail: List[str] = []
        if defer:
            for fl in flush_lines({}):
                tail.append("    " + fl)
            tail.append(f"    return pc, il, {n_expr}")
        else:
            tail.append("    return pc, il, n")

        src = (
            "def _region(counts, iregs, fregs, memory, mem_len, call_stack,\n"
            "            data_access, inst_fetch, predict, pred_update, pmu,\n"
            "            touched, data_base, cpu, probe_dispatch, cur_iline,\n"
            "            fuel):\n"
            + "\n".join(pre)
            + "\n"
            "    il = cur_iline\n"
            f"    pc = {head}\n"
            "    while fuel > 0:\n"
            + "\n".join(lines)
            + "\n"
            + "\n".join(tail)
            + "\n"
        )
        g = dict(self._globals)
        g["_code"] = code
        g["_eng"] = engine
        g.update(handler_globals)
        for _s, em in units:
            g.update(em.fetch_globals)
        if spec is not None and spec[1] is not None:
            g["_bt"] = spec[1]
        ns: Dict[str, object] = {}
        exec(compile(src, f"<region@{head}>", "exec"), g, ns)
        return Region(
            head=head,
            fn=ns["_region"],
            members=tuple(member_set),
            n_blocks=len(members),
            max_nb=max_nb,
            max_cyc=max_cyc,
            max_deltas=max_deltas,
            has_probe=bool(active_probes),
            predictor=predictor if spec is not None else None,
            has_mem=has_mem,
        )

    # -- static loop analysis -------------------------------------------

    def _analyze_loop(
        self,
        instrs: List[tuple],
        start: int,
        n_fetches: int,
        il_start: int,
        il_last: int,
    ) -> Optional[LoopInfo]:
        """Classify a self-loop block for O(1) replay, or return None."""
        term = instrs[-1]
        if term[0] not in BRANCH_OPS or term[3] != start:
            return None
        steady = (n_fetches - 1) + (1 if il_start != il_last else 0)
        return self._analyze_cycle(
            instrs[:-1], term, start + len(instrs) - 1, steady
        )

    def _analyze_cycle(
        self,
        body: List[tuple],
        term: tuple,
        branch_pc: int,
        steady_fetches: int,
    ) -> Optional[LoopInfo]:
        """Classify a cycle (self-loop block or trace) for O(1) replay.

        Eligibility: the closing branch targets the cycle head (the
        caller guarantees this), every written integer register is
        either iteration-invariant or affine (a single self-increment by
        a loop-invariant stride), every written float register is
        iteration-invariant, memory addresses and store values are
        invariant, fault operands are invariant, and the branch compares
        the affine counter against an invariant bound (or two
        invariants).  Trace bodies may contain JMP/CALL/RET: these have
        no register effects, and CALL/RET pairs are statically matched
        by ``trace_path`` so the call stack is iteration-invariant.
        Under those conditions -- plus the dynamic all-hit /
        saturated-predictor trial -- every future iteration is an exact
        copy of the trial, so its effects can be multiplied.
        """
        if term[0] not in BRANCH_OPS:
            return None
        has_store = any(ins[0] in (Op.STORE, Op.FSTORE) for ins in body)
        has_load = any(ins[0] in (Op.LOAD, Op.FLOAD) for ins in body)
        if has_store and has_load:
            # a load could observe an in-loop store; values would then
            # depend on the iteration.  Keep the analysis simple: such
            # loops run through the compiled path only.
            return None

        # single-write affine candidates: r op= invariant stride.
        iwrites: Dict[int, List[tuple]] = {}
        fwrites: Dict[int, int] = {}
        for ins in body:
            op, a = ins[0], ins[1]
            if op in (Op.LI, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV,
                      Op.ADDI, Op.MULI, Op.LOAD):
                iwrites.setdefault(a, []).append(ins)
            elif op in (Op.FLI, Op.FMOV, Op.FADD, Op.FSUB, Op.FMUL,
                        Op.FDIV, Op.FSQRT, Op.FMA, Op.FCVT, Op.FLOAD):
                fwrites[a] = fwrites.get(a, 0) + 1

        affine: Dict[int, Tuple] = {}
        for reg, writes in iwrites.items():
            if len(writes) != 1:
                continue
            op, a, b, c, d = writes[0]
            if op == Op.ADDI and b == reg:
                affine[reg] = ("imm", d)
            elif op == Op.ADD and b == reg and c not in iwrites:
                affine[reg] = ("reg", c, 1)
            elif op == Op.ADD and c == reg and b not in iwrites:
                affine[reg] = ("reg", b, 1)
            elif op == Op.SUB and b == reg and c not in iwrites:
                affine[reg] = ("reg", c, -1)

        # abstract interpretation over one iteration.  Start state is
        # pessimistic for written registers (VAR, or AFF for the matched
        # affine updates): a value carried across the back edge through a
        # written register cannot be assumed invariant, or self-increment
        # chains and write cycles (swaps) would wrongly classify as
        # invariant.  A written register only becomes INV flow-sensitively,
        # at a write that recomputes it from invariant inputs (LI, LOAD
        # from invariant memory, ALU over INV sources).
        INV, AFF, VAR = 0, 1, 2
        iabs = [INV] * 32
        fabs = [INV] * 32
        for reg in iwrites:
            iabs[reg] = AFF if reg in affine else VAR
        for reg in fwrites:
            fabs[reg] = VAR

        def ival(reg: int) -> int:
            return iabs[reg]

        for ins in body:
            op, a, b, c, d = ins
            if op in (Op.LOAD, Op.FLOAD, Op.STORE, Op.FSTORE):
                if ival(b) != INV:
                    return None  # striding address: lines change per iter
                if op == Op.STORE and ival(a) != INV:
                    return None  # stored value must be invariant
                if op == Op.FSTORE and fabs[a] != INV:
                    return None
                if op == Op.LOAD:
                    # no stores in the body (checked above), so memory is
                    # iteration-invariant and so is the loaded value.
                    if has_store:
                        return None
                    iabs[a] = INV
                elif op == Op.FLOAD:
                    if has_store:
                        return None
                    fabs[a] = INV
                continue
            if op == Op.DIV and ival(c) != INV:
                return None  # divisor could hit zero in a later iteration
            if op == Op.FDIV and fabs[c] != INV:
                return None
            if op == Op.FSQRT and fabs[b] != INV:
                return None
            if a in affine and op == affine_op(affine[a]):
                # the affine self-update keeps the register affine.
                continue
            if op in (Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.ADDI, Op.MULI):
                srcs = _int_sources(op, b, c)
                out = INV
                for s in srcs:
                    if ival(s) != INV:
                        out = VAR
                iabs[a] = out if op != Op.LI else INV
            elif op == Op.LI:
                iabs[a] = INV
            elif op == Op.FLI:
                fabs[a] = INV
            elif op in (Op.FMOV, Op.FCVT, Op.FSQRT):
                fabs[a] = fabs[b]
            elif op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV):
                fabs[a] = max(fabs[b], fabs[c])
            elif op == Op.FMA:
                fabs[a] = max(fabs[b], fabs[c], fabs[d])
            elif op == Op.NOP:
                pass
            elif op in (Op.JMP, Op.CALL, Op.RET):
                pass  # control only: no register effects (see docstring)
            else:  # pragma: no cover - body ops are exhaustive above
                return None

        # every written register must end reproducible: INV (no-op under
        # replay) or AFF (bulk += stride * k).
        for reg in iwrites:
            if iabs[reg] == VAR:
                return None
        for reg in fwrites:
            if fabs[reg] != INV:
                return None

        op, ra, rb, _tgt, _ = term
        va, vb = iabs[ra], iabs[rb]
        if va == AFF and vb == INV:
            counter, bound, counter_is_a = ra, rb, True
        elif va == INV and vb == AFF:
            counter, bound, counter_is_a = rb, ra, False
        elif va == INV and vb == INV:
            counter, bound, counter_is_a = -1, rb, True
        else:
            return None
        if op == Op.BLT:
            kind = "lt" if counter_is_a else "gt"
        elif op == Op.BGE:
            kind = "ge" if counter_is_a else "le"
        elif op == Op.BEQ:
            kind = "eq"
        else:
            kind = "ne"

        return LoopInfo(
            branch_pc=branch_pc,
            branch_op=op,
            kind=kind,
            counter=counter,
            bound=bound,
            stride=affine.get(counter, ("imm", 0)),
            affine=sorted(affine.items()),
            steady_fetches=steady_fetches,
        )


def affine_op(spec: Tuple) -> int:
    """The opcode that realizes an affine stride spec (for write matching)."""
    if spec[0] == "imm":
        return Op.ADDI
    return Op.ADD if spec[2] > 0 else Op.SUB


def _int_sources(op: int, b: int, c: int) -> Tuple[int, ...]:
    if op in (Op.MOV, Op.ADDI, Op.MULI):
        return (b,)
    return (b, c)


def _machine_fault_class():
    from repro.hw.cpu import MachineFault

    return MachineFault


def _round_to_single_fn():
    from repro.hw.cpu import _round_to_single

    return _round_to_single


class BlockEngine:
    """The block cache + replay engine bound to one CPU.

    ``CPU.run`` calls :meth:`begin` once per slice and :meth:`execute`
    whenever the pc heads a (potential) block; everything else -- table
    management, deadline math, replay -- lives here.
    """

    def __init__(self, cpu, tier: str = "trace") -> None:
        if tier not in ("block", "trace"):
            raise ValueError(f"unknown engine tier {tier!r}")
        self.cpu = cpu
        self.tier = tier
        self.compiler = BlockCompiler(cpu)
        self.stats = EngineStats()
        self._tables: Dict[int, _CodeTable] = {}
        self._table: Optional[_CodeTable] = None
        self._epoch = 0
        self._ctx: Optional[tuple] = None
        #: trace tier: region/trace promotion enabled.
        self._trace_tier = tier == "trace"
        #: pc of a probe that side-exited a region because its handler
        #: perturbed the machine; CPU.run runs the probe's post-retire
        #: PMU hooks (and resyncs on a program rewrite), then clears it.
        self.probe_exit_pc = -1

    # -- lifecycle ------------------------------------------------------

    def begin(self) -> Tuple[Dict[int, BasicBlock], Set[int]]:
        """Bind the engine to the CPU's current code; called per run()."""
        cpu = self.cpu
        code = cpu.code
        key = id(code)
        table = self._tables.get(key)
        if table is None or table.code is not code:
            table = _CodeTable(code, _compute_leaders(code))
            while len(self._tables) >= MAX_TABLES:
                self._tables.pop(next(iter(self._tables)))
            self._tables[key] = table
        # a slice can resume mid-block (quantum expiry); treat the resume
        # pc as a leader so the hot path re-enters compiled code there.
        entry = cpu.pc
        if entry not in table.leaders:
            table.leaders.add(entry)
            table.denied.discard(entry)
        self._table = table
        self._ctx = (
            cpu.counts, cpu.iregs, cpu.fregs, cpu.memory, len(cpu.memory),
            cpu.call_stack, cpu.hierarchy.data_access, cpu.hierarchy.inst_fetch,
            cpu.predictor.predict, cpu.predictor.update, cpu.pmu,
            cpu.touched_pages, cpu.data_base,
        )
        return table.blocks, table.denied

    def invalidate(self) -> None:
        """Drop every code table (machine reset)."""
        self._tables.clear()
        self._table = None
        self._ctx = None

    def retire(self, code: List[tuple]) -> None:
        """Drop the table of one program (dynaprof migrate/reload)."""
        self._tables.pop(id(code), None)
        if self._table is not None and self._table.code is code:
            self.unbind()

    def unbind(self) -> None:
        """Forget the active binding (context restore); tables survive."""
        self._table = None
        self._ctx = None

    def barrier(self) -> None:
        """External machine-state change (e.g. cache pollution).

        Bumps the epoch so replay blacklists are re-armed: a block that
        looked unsteady before the change may be steady after it (and
        vice versa -- the next trial re-proves steadiness either way).
        """
        self._epoch += 1
        self.flush()

    def flush(self) -> None:
        """Flush-before-read barrier (installed as the PMU flush hook).

        The engine applies all effects synchronously inside
        :meth:`execute` -- compiled bodies write ``counts[]`` directly and
        bulk replay commits before returning -- so there is never deferred
        state to write back; this hook is the enforcement point that keeps
        it that way (any future staging must drain here) and the
        observability counter for the read-barrier tests.
        """
        self.stats.flushes += 1

    # -- execution ------------------------------------------------------

    def execute(
        self, pc: int, cur_iline: int, rem_ins: int, cyc_budget: int
    ) -> Optional[Tuple[int, int, int]]:
        """Run the block headed at *pc* fast, or return None to decline.

        *rem_ins* is the remaining instruction budget (-1 = unlimited);
        *cyc_budget* the absolute TOT_CYC stop line (-1 = unlimited).
        Returns ``(next_pc, cur_iline, instructions_retired)``.
        """
        table = self._table
        if table is None:
            # a probe-registry change invalidated the binding mid-slice
            # (a handler registered/removed a probe); rebind to the
            # current code and carry on -- regions recompile against the
            # updated registry on their next heat promotion.
            self.begin()
            table = self._table
        if self._trace_tier:
            region = table.regions.get(pc)
            if region is not None:
                res = self._run_region(region, cur_iline, rem_ins, cyc_budget)
                if res is not None:
                    return res
            else:
                trace = table.traces.get(pc)
                if trace is not None:
                    res = self._run_trace(trace, cur_iline, rem_ins, cyc_budget)
                    if res is not None:
                        return res
        block = table.blocks.get(pc)
        if block is None:
            if pc in table.nocompile:
                return None
            if pc not in table.leaders:
                self._deny(table, pc)
                return None
            block = self.compiler.compile_block(table.code, pc)
            if block is None:
                self._deny(table, pc)
                return None
            table.blocks[pc] = block
            self.stats.blocks_compiled += 1
            if block.falls_through:
                # a MAX_BLOCK_LEN split: let the hot path continue into
                # the rest of the straight-line run.
                nxt = block.start + block.n_ins
                table.leaders.add(nxt)
                table.denied.discard(nxt)

        n_ins = block.n_ins
        if 0 <= rem_ins < n_ins:
            return None
        cpu = self.cpu
        counts = cpu.counts
        if cyc_budget >= 0 and counts[_S.TOT_CYC] + block.max_cyc >= cyc_budget:
            return None

        # -- PMU deadlines: decline if the block could cross one --------
        pmu = cpu.pmu
        sampler_on = False
        if pmu is not None:
            if pmu.sampler is not None:
                if pmu.sample_countdown <= n_ins:
                    return None
                sampler_on = True
            if pmu.watch_active:
                if pmu.has_pending():
                    return None
                md = block.max_deltas
                for headroom, signals in pmu.watch_constraints():
                    worst = 0
                    for s in signals:
                        worst += md[s]
                    if headroom <= worst:
                        return None
            if pmu.timer_active and pmu.cycles_to_timer(counts[_S.TOT_CYC]) <= block.max_cyc:
                return None

        loop = block.loop
        if (
            loop is not None
            and block.fail_epoch == self._epoch
            and block.fails >= REPLAY_FAIL_LIMIT
        ):
            loop = None

        total = n_ins
        if loop is None:
            next_pc, cur_iline = block.fn(*self._ctx, cur_iline)
        else:
            snap = counts.copy()
            hsnap = cpu.hierarchy.hit_snapshot()
            next_pc, cur_iline = block.fn(*self._ctx, cur_iline)
            if next_pc == block.start:
                k = self._try_replay(
                    block, loop, snap, hsnap, rem_ins, cyc_budget, sampler_on
                )
                total += k * n_ins
        if sampler_on:
            pmu.sample_countdown -= total
        self.stats.blocks_executed += 1
        self.stats.fast_instructions += total
        if self._trace_tier and next_pc < pc:
            # back edge: count arrivals at the loop head and promote hot
            # heads to a superblock trace or compiled region.
            self._heat(table, next_pc)
        return next_pc, cur_iline, total

    # -- trace-tier execution -------------------------------------------

    def _deny(self, table: _CodeTable, pc: int) -> None:
        """Stop offering *pc* to compile_block.

        A pc that heads a region or trace (dynaprof probes, typically)
        must stay engine-dispatchable, so it goes to ``nocompile``
        instead of the run loop's ``denied`` set.
        """
        if pc in table.regions or pc in table.traces:
            table.nocompile.add(pc)
        else:
            table.denied.add(pc)

    def _heat(self, table: _CodeTable, head: int) -> None:
        if (
            head in table.region_denied
            or head in table.regions
            or head in table.traces
        ):
            return
        h = table.heat.get(head, 0) + 1
        if h < REGION_HOT:
            table.heat[head] = h
            return
        table.heat.pop(head, None)
        self._build_region(table, head)

    def _build_region(self, table: _CodeTable, head: int) -> None:
        """Promote a hot loop head: superblock trace first, else region."""
        trace = self.compiler.compile_trace(table.code, head)
        if trace is not None:
            table.traces[head] = trace
            table.denied.discard(head)
            self.stats.traces_compiled += 1
            return
        try:
            region = self.compiler.compile_region(
                table.code, head, self.cpu.predictor, self
            )
        except _EmitUnsupported:  # pragma: no cover - member scan excludes
            region = None
        if region is not None:
            table.regions[head] = region
            table.denied.discard(head)
            self.stats.regions_compiled += 1
            return
        table.region_denied.add(head)

    def _run_region(
        self, region: Region, cur_iline: int, rem_ins: int, cyc_budget: int
    ) -> Optional[Tuple[int, int, int]]:
        """Enter a compiled region with deadline-derived fuel, or decline.

        Fuel is the number of whole block steps that provably cannot
        cross any instruction/cycle budget, overflow-watch threshold,
        sample tick or timer tick; the precise path finishes the tail.
        """
        cpu = self.cpu
        if region.predictor is not None and region.predictor is not cpu.predictor:
            # the inlined predictor state is stale; rebuild via heat.
            self._table.regions.pop(region.head, None)
            return None
        counts = cpu.counts
        fuel = REGION_FUEL_MAX
        if rem_ins >= 0:
            fuel = rem_ins // region.max_nb
        if cyc_budget >= 0:
            fuel = min(
                fuel, (cyc_budget - counts[_S.TOT_CYC] - 1) // region.max_cyc
            )
        pmu = cpu.pmu
        sampler_on = False
        if pmu is not None:
            if region.has_probe and not pmu.quiet():
                # probe handlers run inline only while no PMU machinery
                # can observe retirement; otherwise the precise path
                # keeps exact interrupt/sample delivery around probes.
                return None
            if region.has_mem and pmu.ear_active:
                # deferred cycle counts would skew the TOT_CYC timestamps
                # EAR records on miss events; the precise path (and the
                # per-block engine) keep them exact while an EAR is armed.
                return None
            if pmu.sampler is not None:
                fuel = min(fuel, (pmu.sample_countdown - 1) // region.max_nb)
                sampler_on = True
            if pmu.watch_active:
                if pmu.has_pending():
                    return None
                md = region.max_deltas
                for headroom, signals in pmu.watch_constraints():
                    worst = 0
                    for s in signals:
                        worst += md[s]
                    if worst:
                        fuel = min(fuel, (headroom - 1) // worst)
            if pmu.timer_active:
                fuel = min(
                    fuel,
                    (pmu.cycles_to_timer(counts[_S.TOT_CYC]) - 1)
                    // region.max_cyc,
                )
        if fuel <= 0:
            return None
        next_pc, cur_iline, n = region.fn(
            *self._ctx, cpu, cpu.probe_dispatch, cur_iline, fuel
        )
        if sampler_on:
            pmu.sample_countdown -= n
        st = self.stats
        st.region_entries += 1
        st.region_instructions += n
        st.fast_instructions += n
        return next_pc, cur_iline, n

    def _run_trace(
        self, block: BasicBlock, cur_iline: int, rem_ins: int, cyc_budget: int
    ) -> Optional[Tuple[int, int, int]]:
        """Run a superblock trace like a self-loop block (trial + replay)."""
        n_ins = block.n_ins
        if 0 <= rem_ins < n_ins:
            return None
        cpu = self.cpu
        counts = cpu.counts
        if cyc_budget >= 0 and counts[_S.TOT_CYC] + block.max_cyc >= cyc_budget:
            return None
        pmu = cpu.pmu
        sampler_on = False
        if pmu is not None:
            if pmu.sampler is not None:
                if pmu.sample_countdown <= n_ins:
                    return None
                sampler_on = True
            if pmu.watch_active:
                if pmu.has_pending():
                    return None
                md = block.max_deltas
                for headroom, signals in pmu.watch_constraints():
                    worst = 0
                    for s in signals:
                        worst += md[s]
                    if headroom <= worst:
                        return None
            if pmu.timer_active and pmu.cycles_to_timer(
                counts[_S.TOT_CYC]
            ) <= block.max_cyc:
                return None

        loop = block.loop
        if (
            loop is not None
            and block.fail_epoch == self._epoch
            and block.fails >= REPLAY_FAIL_LIMIT
        ):
            loop = None

        total = n_ins
        st = self.stats
        if loop is None:
            next_pc, cur_iline = block.fn(*self._ctx, cur_iline)
        else:
            snap = counts.copy()
            hsnap = cpu.hierarchy.hit_snapshot()
            next_pc, cur_iline = block.fn(*self._ctx, cur_iline)
            if next_pc == block.start:
                k = self._try_replay(
                    block, loop, snap, hsnap, rem_ins, cyc_budget, sampler_on
                )
                if k:
                    st.trace_replays += 1
                total += k * n_ins
        if sampler_on:
            pmu.sample_countdown -= total
        st.blocks_executed += 1
        st.fast_instructions += total
        return next_pc, cur_iline, total

    def _try_replay(
        self,
        block: BasicBlock,
        loop: LoopInfo,
        snap: List[int],
        hsnap: Tuple[int, int, int, int],
        rem_ins: int,
        cyc_budget: int,
        sampler_on: bool,
    ) -> int:
        """After a taken trial iteration, bulk-apply up to *n* more."""
        cpu = self.cpu
        counts = cpu.counts
        iregs = cpu.iregs
        d = [counts[i] - snap[i] for i in range(Signal.N_SIGNALS)]

        # steady-state trial? all accesses hit, branch predicted, fetch
        # footprint equal to the back-edge steady state.
        if (
            d[_S.L1D_MISS] or d[_S.L1I_MISS] or d[_S.L2_MISS]
            or d[_S.TLB_DM] or d[_S.BR_MSP]
            or d[_S.L1I_ACC] != loop.steady_fetches
        ):
            if block.fail_epoch != self._epoch:
                block.fail_epoch = self._epoch
                block.fails = 0
            block.fails += 1
            return 0
        if not cpu.predictor.steady_taken(loop.branch_pc):
            return 0

        # exact remaining taken count from the affine counter.
        if loop.counter < 0:
            # both operands invariant: the branch repeats its trial
            # outcome (taken) forever; replay in chunks.
            n = REPLAY_CHUNK
        else:
            spec = loop.stride
            stride = spec[1] if spec[0] == "imm" else iregs[spec[1]] * spec[2]
            n = _count_consecutive_takens(
                loop.kind, iregs[loop.counter], stride, iregs[loop.bound],
                REPLAY_CHUNK,
            )
        if n <= 0:
            return 0

        # deadline caps: never cross a budget, sample tick, overflow
        # threshold or timer inside the bulk step.
        n_ins = block.n_ins
        k = n
        if rem_ins >= 0:
            k = min(k, rem_ins // n_ins - 1)
        d_cyc = d[_S.TOT_CYC]
        if cyc_budget >= 0 and d_cyc > 0:
            k = min(k, (cyc_budget - counts[_S.TOT_CYC] - 1) // d_cyc)
        pmu = cpu.pmu
        if pmu is not None:
            if sampler_on:
                k = min(k, (pmu.sample_countdown - n_ins - 1) // n_ins)
            if pmu.watch_active:
                for headroom, signals in pmu.watch_constraints():
                    dw = 0
                    for s in signals:
                        dw += d[s]
                    if dw > 0:
                        k = min(k, (headroom - 1) // dw)
            if pmu.timer_active and d_cyc > 0:
                k = min(k, (pmu.cycles_to_timer(counts[_S.TOT_CYC]) - 1) // d_cyc)
        if k <= 0:
            return 0

        # -- commit: k identical iterations as one bulk update ----------
        for i in range(Signal.N_SIGNALS):
            di = d[i]
            if di:
                counts[i] += di * k
        h = cpu.hierarchy
        cur = h.hit_snapshot()
        h.replay_hits(
            (cur[0] - hsnap[0]) * k,
            (cur[1] - hsnap[1]) * k,
            (cur[2] - hsnap[2]) * k,
            (cur[3] - hsnap[3]) * k,
        )
        for reg, spec in loop.affine:
            if spec[0] == "imm":
                iregs[reg] += spec[1] * k
            else:
                iregs[reg] += iregs[spec[1]] * spec[2] * k
        block.fails = 0
        self.stats.replays += 1
        self.stats.replayed_instructions += k * n_ins
        return k

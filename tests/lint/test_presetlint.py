"""Unit tests: preset-table cross-validation (PL2xx rules)."""

from repro.lint import (
    Severity,
    lint_mapping,
    lint_platform_table,
    lint_preset_tables,
)


def codes(diags):
    return [d.code for d in diags]


class TestLintMapping:
    def test_valid_mapping_is_clean(self):
        assert lint_mapping(
            "simX86", "PAPI_TOT_CYC", (("CPU_CLK_UNHALTED", 1),)
        ) == []

    def test_dangling_native_is_pl201(self):
        diags = lint_mapping(
            "simX86", "PAPI_TOT_CYC", (("NO_SUCH_EVENT", 1),)
        )
        assert codes(diags) == ["PL201"]
        assert "NO_SUCH_EVENT" in diags[0].message

    def test_unknown_symbol_is_pl202(self):
        diags = lint_mapping(
            "simX86", "PAPI_NOT_A_PRESET", (("CPU_CLK_UNHALTED", 1),)
        )
        assert codes(diags) == ["PL202"]

    def test_empty_terms_is_pl202(self):
        assert codes(
            lint_mapping("simX86", "PAPI_TOT_CYC", ())
        ) == ["PL202"]

    def test_zero_coefficient_is_pl202(self):
        assert "PL202" in codes(lint_mapping(
            "simX86", "PAPI_TOT_CYC", (("CPU_CLK_UNHALTED", 0),)
        ))

    def test_duplicate_native_is_pl202(self):
        assert "PL202" in codes(lint_mapping(
            "simX86", "PAPI_TOT_CYC",
            (("CPU_CLK_UNHALTED", 1), ("CPU_CLK_UNHALTED", 1)),
        ))

    def test_semantic_drift_is_pl204_info(self):
        # counting branch instructions as total cycles drifts wildly.
        diags = lint_mapping(
            "simX86", "PAPI_TOT_CYC", (("BR_INST_RETIRED", 1),)
        )
        assert codes(diags) == ["PL204"]
        assert diags[0].severity == Severity.INFO

    def test_positions_flow_into_diagnostics(self):
        diags = lint_mapping(
            "simX86", "PAPI_TOT_CYC", (("NO_SUCH_EVENT", 1),),
            path="conf.py", line=10, term_lines={0: 12},
        )
        assert diags[0].path == "conf.py"
        assert diags[0].line == 12  # the term's own line wins


class TestFmaNormalization:
    def test_missing_fp_ops_on_fma_platform_is_pl203(self):
        # simPOWER has FMA: a table without PAPI_FP_OPS is a finding.
        diags = lint_platform_table(
            "simPOWER", {"PAPI_TOT_CYC": (("PM_CYC", 1),)}
        )
        assert "PL203" in codes(diags)

    def test_unnormalized_fp_ops_is_pl203(self):
        # PM_FPU_INS counts an FMA once; without adding PM_FPU_FMA the
        # mapping under-counts operations (the E6 normalization).
        diags = lint_platform_table(
            "simPOWER", {"PAPI_FP_OPS": (("PM_FPU_INS", 1),)}
        )
        assert "PL203" in codes(diags)

    def test_no_fma_platform_never_pl203(self):
        diags = lint_platform_table("simT3E", {})
        assert "PL203" not in codes(diags)


class TestShippedTables:
    def test_shipped_tables_have_no_errors(self):
        diags = lint_preset_tables()
        errors = [d for d in diags if d.severity == Severity.ERROR]
        assert errors == []

    def test_power3_discrepancy_is_reported(self):
        # the paper's POWER3 case: PM_FPU_INS includes FP converts, so
        # simPOWER's PAPI_FP_INS drifts from the reference by +FP_CVT.
        diags = lint_preset_tables(["simPOWER"])
        drift = [
            d for d in diags
            if d.code == "PL204" and "PAPI_FP_INS" in d.message
        ]
        assert len(drift) == 1
        assert "FP_CVT+1" in drift[0].message

    def test_diagnostics_point_into_presets_py(self):
        diags = lint_preset_tables()
        assert diags  # the intentional drift entries exist
        for d in diags:
            assert d.path.endswith("presets.py")
            assert d.line > 0

"""Property-based tests: the block engine is bit-exact with the interpreter.

Random structured programs (nested-loop-free but loop-heavy, branchy,
with memory traffic, calls and probes), random PMU instrumentation
(overflow watches, ProfileMe sampling, cycle timers) and random budgets:
every observable -- the counts array, architectural state, cache
statistics, overflow records, sample streams -- must be *identical* with
the engine on and off.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.sampling import sample_signature
from repro.hw import Assembler, Machine, MachineConfig, Signal
from repro.hw.pmu import PMUConfig

# -- program generator -------------------------------------------------

_ALU = ("alu_addi", "alu_add", "alu_mul", "fp_fma", "fp_add", "mem_load",
        "mem_store", "nop")

body_ops = st.lists(st.sampled_from(_ALU), min_size=0, max_size=6)
segments = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=25),   # loop iterations
        st.integers(min_value=1, max_value=3),    # counter stride
        body_ops,
        st.booleans(),                            # insert a probe?
    ),
    min_size=1,
    max_size=5,
)


def build_program(segs) -> "object":
    """A halting program: a chain of independent counted loops."""
    asm = Assembler(name="prop")
    base = asm.reserve_data(128)
    asm.func("main")
    asm.li("r9", base)
    asm.fli("f1", 1.25)
    asm.fli("f2", 0.5)
    for i, (iters, stride, body, probed) in enumerate(segs):
        counter, scratch = "r1", "r2"
        asm.li(counter, 0)
        asm.li("r3", iters * stride)
        asm.label(f"loop{i}")
        if probed:
            asm.probe(i + 1)
        for j, op in enumerate(body):
            if op == "alu_addi":
                asm.addi(scratch, scratch, j + 1)
            elif op == "alu_add":
                asm.add("r4", "r4", scratch)
            elif op == "alu_mul":
                asm.muli("r5", scratch, 3)
            elif op == "fp_fma":
                asm.fma("f3", "f1", "f2", "f3")
            elif op == "fp_add":
                asm.fadd("f4", "f4", "f1")
            elif op == "mem_load":
                asm.load("r6", "r9", j % 8)
            elif op == "mem_store":
                asm.store("r4", "r9", 8 + j % 8)
            else:
                asm.nop()
        asm.addi(counter, counter, stride)
        asm.blt(counter, "r3", f"loop{i}")
    asm.halt()
    asm.endfunc()
    return asm.build()


instrumentation = st.fixed_dictionaries({
    "overflow_threshold": st.one_of(
        st.none(), st.integers(min_value=5, max_value=400)
    ),
    "overflow_signal": st.sampled_from(
        [Signal.TOT_INS, Signal.TOT_CYC, Signal.FP_FMA, Signal.L1D_ACC]
    ),
    "skid_max": st.integers(min_value=0, max_value=6),
    "sample_period": st.one_of(
        st.none(), st.integers(min_value=8, max_value=200)
    ),
    "timer_period": st.one_of(
        st.none(), st.integers(min_value=50, max_value=2000)
    ),
    "max_instructions": st.one_of(
        st.none(), st.integers(min_value=1, max_value=2000)
    ),
    "seed": st.integers(min_value=1, max_value=2**31),
})


def run_one(prog, inst, block_engine: bool):
    config = MachineConfig(
        seed=inst["seed"],
        pmu=PMUConfig(
            skid_max=inst["skid_max"],
            has_profileme=inst["sample_period"] is not None,
        ),
        block_engine=block_engine,
    )
    m = Machine(config)
    m.load(prog)
    probe_log = []
    for pid in range(1, 8):
        m.register_probe(
            pid, lambda p, cpu, log=probe_log: log.append((p, cpu.pc))
        )
    overflows = []
    if inst["overflow_threshold"] is not None:
        m.pmu.program(0, [inst["overflow_signal"]])
        m.pmu.set_overflow(
            0, inst["overflow_threshold"],
            lambda rec: overflows.append(dataclasses.astuple(rec)),
        )
        m.pmu.start(0)
    sampler = None
    if inst["sample_period"] is not None:
        sampler = m.pmu.enable_profileme(inst["sample_period"])
    ticks = []
    if inst["timer_period"] is not None:
        m.pmu.set_cycle_timer(
            inst["timer_period"], lambda cycle: ticks.append(cycle)
        )
    result = m.run(max_instructions=inst["max_instructions"])
    return {
        "counts": list(m.counts),
        "real_cycles": m.real_cycles,
        "iregs": list(m.cpu.iregs),
        "fregs": list(m.cpu.fregs),
        "memory": list(m.cpu.memory),
        "pc": m.cpu.pc,
        "halted": (result.halted, m.cpu.halted),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "touched_pages": set(m.cpu.touched_pages),
        "cache_stats": m.hierarchy.stats_snapshot(),
        "probes": probe_log,
        "overflows": overflows,
        "samples": sample_signature(sampler.samples) if sampler else (),
        "ticks": ticks,
        "counter0": (
            m.pmu.read(0) if inst["overflow_threshold"] is not None else None
        ),
    }


class TestEngineEquivalence:
    @given(segments, instrumentation)
    @settings(max_examples=40, deadline=None)
    def test_engine_on_off_identical(self, segs, inst):
        prog = build_program(segs)
        off = run_one(prog, inst, block_engine=False)
        on = run_one(prog, inst, block_engine=True)
        for key in off:
            assert off[key] == on[key], key

"""Unit tests: the papirun utility."""


from repro.platforms import create
from repro.tools.papirun import DEFAULT_EVENTS, papirun
from repro.workloads import dot, demo_app


class TestPapirun:
    def test_default_events_on_big_platform(self):
        result = papirun("simPOWER", dot(500, use_fma=True))
        assert result.platform == "simPOWER"
        assert result.values["PAPI_FP_OPS"] == 1000
        # simPOWER's counter *groups* cannot host fp + cache + branch
        # events simultaneously, so papirun correctly skips the tail
        assert result.skipped_events == ["PAPI_L1_DCM", "PAPI_BR_MSP"]
        assert result.real_usec > 0

    def test_all_defaults_fit_on_constraint_free_pmu(self):
        result = papirun("simIA64", dot(500, use_fma=True),
                         events=["PAPI_TOT_CYC", "PAPI_TOT_INS",
                                 "PAPI_L1_DCM"])
        assert not result.skipped_events
        assert result.values["PAPI_TOT_INS"] > 0

    def test_unavailable_events_skipped_gracefully(self):
        result = papirun("simT3E", dot(300, use_fma=False))
        assert "PAPI_TOT_CYC" in result.values
        assert "PAPI_BR_MSP" in result.skipped_events  # no such event on T3E

    def test_conflicting_events_skipped_on_small_pmu(self):
        result = papirun("simX86", dot(300, use_fma=False))
        # two counters: the five default events can't all fit
        assert result.skipped_events
        assert len(result.values) <= 2 or result.multiplexed

    def test_multiplex_mode_captures_all(self):
        result = papirun(
            "simX86", demo_app(scale=40, use_fma=False), multiplex=True
        )
        assert not result.skipped_events
        assert result.multiplexed
        assert set(result.values) == set(DEFAULT_EVENTS)

    def test_custom_event_list(self):
        result = papirun(
            "simIA64", dot(200, use_fma=True),
            events=["PAPI_TOT_CYC", "PAPI_FMA_INS"],
        )
        assert result.values["PAPI_FMA_INS"] == 200

    def test_derived_metrics(self):
        result = papirun("simPOWER", dot(1000, use_fma=True))
        assert result.ipc is not None and 0 < result.ipc < 2
        assert result.mflops is not None and result.mflops > 0

    def test_substrate_instance_accepted(self):
        sub = create("simPOWER")
        result = papirun(sub, dot(100, use_fma=True))
        assert result.platform == "simPOWER"

    def test_report_text(self):
        result = papirun("simPOWER", dot(100, use_fma=True))
        text = result.to_text()
        assert "papirun" in text
        assert "MFLOPS" in text
        assert "real time" in text

    def test_sampling_platform_works(self):
        result = papirun(
            "simALPHA", dot(5000, use_fma=False),
            events=["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS"],
        )
        assert result.values["PAPI_TOT_CYC"] > 0
        assert result.values["PAPI_FP_OPS"] > 0

"""Cross-platform counting correctness: measured vs analytic expectations.

This is the heart of the reproduction's validity: on direct-counting
platforms, PAPI values must match the workloads' analytic expectations
exactly (modulo documented per-platform semantics quirks, which are
asserted too).
"""

import pytest

from repro.core.library import Papi
from repro.workloads import (
    dot,
    matmul,
    mixed_precision_sum,
    pointer_chase,
    predictable_branches,
    random_branches,
    strided_scan,
    triad,
)


def measure(substrate, workload, symbols):
    papi = Papi(substrate)
    es = papi.create_eventset()
    for s in symbols:
        es.add_event(papi.event_name_to_code(s))
    substrate.machine.load(workload.program)
    es.start()
    substrate.machine.run_to_completion()
    values = es.stop()
    return dict(zip(symbols, values))


class TestFlopCounting:
    def test_fp_ops_exact_on_direct_platforms(self, direct_platform):
        n = 500
        wl = dot(n, use_fma=direct_platform.HAS_FMA)
        values = measure(direct_platform, wl, ["PAPI_FP_OPS"])
        assert values["PAPI_FP_OPS"] == wl.expect.flops == 2 * n

    def test_fp_ins_halves_with_fma(self, simpower):
        """Same flops, half the instructions with fused multiply-add."""
        n = 400
        with_fma = measure(simpower, dot(n, use_fma=True), ["PAPI_FP_INS"])
        sub2 = type(simpower)()
        without = measure(sub2, dot(n, use_fma=False), ["PAPI_FP_INS"])
        assert with_fma["PAPI_FP_INS"] == n
        assert without["PAPI_FP_INS"] == 2 * n

    def test_power3_convert_discrepancy(self, simpower):
        """PM_FPU_INS includes converts: FP_INS over-reports on simPOWER,
        while the normalized FP_OPS mapping corrects it (Section 4/E6)."""
        n = 300
        wl = mixed_precision_sum(n)
        values = measure(simpower, wl, ["PAPI_FP_INS", "PAPI_FP_OPS"])
        assert values["PAPI_FP_INS"] == 2 * n      # n adds + n converts(!)
        assert values["PAPI_FP_OPS"] == n           # corrected

    def test_convert_kernel_clean_elsewhere(self, simia64):
        """simIA64's fp event excludes converts: no discrepancy there."""
        n = 300
        wl = mixed_precision_sum(n)
        values = measure(simia64, wl, ["PAPI_FP_INS", "PAPI_FP_OPS"])
        assert values["PAPI_FP_INS"] == n
        assert values["PAPI_FP_OPS"] == n

    def test_matmul_flops(self, simia64):
        n = 10
        wl = matmul(n, use_fma=True)
        values = measure(simia64, wl, ["PAPI_FP_OPS", "PAPI_FMA_INS"])
        assert values["PAPI_FP_OPS"] == 2 * n ** 3
        assert values["PAPI_FMA_INS"] == n ** 3


class TestMemoryCounting:
    def test_load_store_counts(self, direct_platform):
        n = 250
        wl = triad(n, use_fma=direct_platform.HAS_FMA)
        values = measure(direct_platform, wl, ["PAPI_LD_INS", "PAPI_SR_INS"])
        assert values["PAPI_LD_INS"] == 2 * n
        assert values["PAPI_SR_INS"] == n
        # LST measured in a fresh run: simX86 has only two counters, so
        # LD+SR+LST together is a legitimate allocation conflict there.
        sub2 = type(direct_platform)()
        wl2 = triad(n, use_fma=sub2.HAS_FMA)
        values2 = measure(sub2, wl2, ["PAPI_LST_INS"])
        assert values2["PAPI_LST_INS"] == 3 * n

    def test_stride_drives_l1_misses(self, simia64):
        """Unit stride enjoys spatial locality; line-sized stride misses."""
        line_words = simia64.machine.hierarchy.config.l1d.line_bytes // 8
        n = 4096
        unit = measure(simia64, strided_scan(n, 1), ["PAPI_L1_DCM"])
        sub2 = type(simia64)()
        jumpy = measure(sub2, strided_scan(n, line_words), ["PAPI_L1_DCM"])
        per_access_unit = unit["PAPI_L1_DCM"] / n
        per_access_jumpy = jumpy["PAPI_L1_DCM"] / (n / line_words)
        assert per_access_unit <= 1.2 / line_words
        assert per_access_jumpy > 0.9

    def test_pointer_chase_misses_when_oversized(self, simx86):
        """A chase bigger than L1 misses on ~every dependent load."""
        l1_words = simx86.machine.hierarchy.config.l1d.size_bytes // 8
        wl = pointer_chase(l1_words * 8, steps=2000)
        values = measure(simx86, wl, ["PAPI_L1_DCM", "PAPI_LD_INS"])
        assert values["PAPI_LD_INS"] == 2000
        assert values["PAPI_L1_DCM"] / values["PAPI_LD_INS"] > 0.8

    def test_tlb_misses_on_page_walks(self, simia64):
        from repro.workloads import tlb_walker

        cfg = simia64.machine.hierarchy.config.tlb
        pages = cfg.entries * 2
        wl = tlb_walker(pages, passes=3, page_words=cfg.page_bytes // 8)
        values = measure(simia64, wl, ["PAPI_TLB_DM"])
        # every touch misses: LRU round-robin over twice the TLB reach
        assert values["PAPI_TLB_DM"] == pytest.approx(pages * 3, rel=0.05)


class TestBranchCounting:
    def test_predictable_vs_random_mispredicts(self, simpower):
        n = 2000
        pred = measure(
            simpower, predictable_branches(n), ["PAPI_BR_CN", "PAPI_BR_MSP"]
        )
        sub2 = type(simpower)()
        rand = measure(
            sub2, random_branches(n), ["PAPI_BR_CN", "PAPI_BR_MSP"]
        )
        pred_rate = pred["PAPI_BR_MSP"] / pred["PAPI_BR_CN"]
        rand_rate = rand["PAPI_BR_MSP"] / rand["PAPI_BR_CN"]
        assert pred_rate < 0.02
        assert rand_rate > 0.10

    def test_br_prc_consistency(self, simpower):
        values = measure(
            simpower, random_branches(1000),
            ["PAPI_BR_CN", "PAPI_BR_MSP", "PAPI_BR_PRC"],
        )
        assert values["PAPI_BR_PRC"] == (
            values["PAPI_BR_CN"] - values["PAPI_BR_MSP"]
        )

    def test_tkn_ntk_partition(self, simx86):
        values = measure(
            simx86, random_branches(1000),
            ["PAPI_BR_TKN", "PAPI_BR_MSP"],
        )
        assert values["PAPI_BR_TKN"] > 0


class TestDerivedConsistency:
    def test_l1_tcm_is_sum(self, simpower):
        wl = matmul(12, use_fma=True)
        values = measure(
            simpower, wl, ["PAPI_L1_DCM", "PAPI_L1_ICM", "PAPI_L1_TCM"]
        )
        assert values["PAPI_L1_TCM"] == (
            values["PAPI_L1_DCM"] + values["PAPI_L1_ICM"]
        )

    def test_cycles_dominate_instructions(self, direct_platform):
        wl = dot(300, use_fma=direct_platform.HAS_FMA)
        values = measure(direct_platform, wl, ["PAPI_TOT_CYC", "PAPI_TOT_INS"])
        assert values["PAPI_TOT_CYC"] > values["PAPI_TOT_INS"]

    def test_counts_deterministic_across_runs(self, any_platform):
        wl = dot(200, use_fma=any_platform.HAS_FMA)
        first = measure(any_platform, wl, ["PAPI_TOT_INS"])
        sub2 = type(any_platform)()
        second = measure(sub2, dot(200, use_fma=sub2.HAS_FMA),
                         ["PAPI_TOT_INS"])
        assert first == second

    def test_sampling_platform_estimates_reasonable(self, simalpha):
        wl = matmul(24, use_fma=simalpha.HAS_FMA)
        papi = Papi(simalpha)
        papi.sampling_period = 256  # fine period: enough fp samples
        es = papi.create_eventset()
        for s in ("PAPI_FP_OPS", "PAPI_TOT_INS", "PAPI_TOT_CYC"):
            es.add_event(papi.event_name_to_code(s))
        simalpha.machine.load(wl.program)
        es.start()
        simalpha.machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        true_flops = 2 * 24 ** 3
        assert values["PAPI_FP_OPS"] == pytest.approx(true_flops, rel=0.30)
        assert values["PAPI_TOT_CYC"] == simalpha.machine.user_cycles

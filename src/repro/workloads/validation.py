"""Workloads written for the validate harness (repro.validate).

:func:`conformance_mix` is the oracle plane's standard stimulus: a
kernel that exercises *every* architecturally determined signal --
integer and floating point arithmetic of each flavour (including the
convert instruction behind the POWER3 discrepancy), loads and stores,
conditional branches taken and not taken, calls/returns, a probe and a
syscall -- so every checkable preset of every platform gets a nonzero
expected value.  The expectations that can be written down by hand are
(the rest come from the oracle interpreter itself).

:func:`decoy_spin` is a pure-integer spin loop used as the *other*
thread in attached/SMP conformance cells: its instructions must never
leak into counters attached to the workload thread.
"""

from __future__ import annotations

from repro.hw.isa import Assembler
from repro.workloads.builder import Expectations, Flow, Workload


def conformance_mix(n: int, use_fma: bool = True) -> Workload:
    """Every-signal kernel: *n* calls into a body touching all signal classes.

    Per call: 2 loads, 2 stores, 7 FLOPs (fadd+fsub+fmul+fdiv+fsqrt plus
    an FMA or a mul/add pair), one convert, one fmov, integer ops of
    every flavour, one data-dependent branch, one probe, one syscall.
    ``main`` calls ``kernel`` once per iteration, so CALL/RET counts are
    *n* as well.
    """
    if n < 1:
        raise ValueError("conformance_mix needs n >= 1")
    asm = Assembler(name=f"confmix{n}")
    flow = Flow(asm)
    fdata = asm.init_array([1.0 + 0.5 * (i % 4) for i in range(64)])
    bits = asm.init_array([(i * 5) % 2 for i in range(64)])
    fscratch = asm.reserve_data(64)
    iscratch = asm.reserve_data(64)

    asm.func("kernel")
    # floating point: one of each flavour, operands kept positive
    asm.add("r4", "r1", "r2")
    asm.fload("f1", "r4", 0)
    asm.fadd("f2", "f1", "f0")
    asm.fsub("f3", "f2", "f1")
    asm.fmul("f4", "f1", "f2")
    asm.fdiv("f5", "f4", "f6")
    asm.fsqrt("f7", "f4")
    asm.fcvt("f8", "f5")
    asm.fmov("f9", "f8")
    if use_fma:
        asm.fma("f10", "f1", "f2", "f0")
    else:
        asm.fmul("f10", "f1", "f2")
        asm.fadd("f10", "f10", "f0")
    asm.add("r19", "r17", "r2")
    asm.fstore("f10", "r19", 0)
    # integer: every opcode, divisor fixed nonzero
    asm.add("r5", "r3", "r2")
    asm.load("r6", "r5", 0)
    asm.sub("r7", "r6", "r14")
    asm.mul("r9", "r6", "r2")
    asm.muli("r10", "r2", 3)
    asm.mov("r11", "r10")
    asm.div("r12", "r10", "r13")
    asm.add("r20", "r18", "r2")
    asm.store("r9", "r20", 0)
    # data-dependent branch: taken iff bits[r2] == 1
    with flow.if_ge("r6", "r14"):
        asm.addi("r15", "r15", 1)
    # control-plane instructions
    asm.probe(7)
    asm.syscall(1)
    # index wrap over the 64-word working set
    asm.addi("r2", "r2", 1)
    with flow.if_ge("r2", "r16"):
        asm.li("r2", 0)
    asm.ret()
    asm.endfunc()

    asm.func("main")
    asm.li("r1", fdata)
    asm.li("r3", bits)
    asm.li("r17", fscratch)
    asm.li("r18", iscratch)
    asm.li("r13", 7)    # integer divisor
    asm.li("r14", 1)
    asm.li("r16", 64)
    asm.li("r2", 0)
    asm.li("r15", 0)
    asm.fli("f0", 0.5)
    asm.fli("f6", 2.0)  # float divisor
    with flow.loop(n, "r30", "r31"):
        asm.call("kernel")
    asm.halt()
    asm.endfunc()

    return Workload(
        name=f"conformance_mix(n={n},fma={use_fma})",
        program=asm.build(),
        expect=Expectations(
            flops=7 * n,
            fp_ins=6 * n if use_fma else 7 * n,
            fma=n if use_fma else 0,
            converts=n,
            loads=2 * n,
            stores=2 * n,
            hot_function="kernel",
            notes="validate-harness stimulus; exercises every "
                  "architectural signal",
        ),
    )


def skid_probe(n: int, use_fma: bool = True) -> Workload:
    """Attribution probe: all FP work isolated in one tiny function.

    ``fp_block`` holds the program's only floating point instructions
    (two of them, or one FMA) and immediately returns; ``spin`` burns a
    stretch of integer work.  ``main`` alternates the two *n* times, so
    an interrupt-pc profiler of an FP event whose delivery skids past
    ``fp_block``'s return lands in ``spin`` or ``main`` -- misattributed
    at *basic-block* granularity, which is what the skid plane scores.
    Precise mechanisms (ProfileMe, zero-skid PMUs) keep every sample
    inside ``fp_block``.
    """
    if n < 1:
        raise ValueError("skid_probe needs n >= 1")
    asm = Assembler(name=f"skidprobe{n}")
    flow = Flow(asm)

    asm.func("fp_block")
    if use_fma:
        asm.fma("f2", "f1", "f1", "f1")
    else:
        asm.fmul("f2", "f1", "f1")
        asm.fadd("f3", "f2", "f1")
    asm.ret()
    asm.endfunc()

    asm.func("spin")
    for _ in range(8):
        asm.addi("r2", "r2", 1)
        asm.muli("r3", "r2", 3)
        asm.sub("r2", "r3", "r2")
    asm.ret()
    asm.endfunc()

    asm.func("main")
    asm.li("r2", 0)
    asm.fli("f1", 1.5)
    with flow.loop(n, "r30", "r31"):
        asm.call("fp_block")
        asm.call("spin")
    asm.halt()
    asm.endfunc()

    return Workload(
        name=f"skid_probe(n={n},fma={use_fma})",
        program=asm.build(),
        expect=Expectations(
            flops=(2 if use_fma else 2) * n,
            fp_ins=(1 if use_fma else 2) * n,
            fma=n if use_fma else 0,
            converts=0, loads=0, stores=0,
            hot_function="fp_block",
            notes="skid-plane probe: FP work isolated in fp_block",
        ),
    )


def decoy_spin(n: int, use_fma: bool = True) -> Workload:
    """Integer spin loop: the competing thread in attach/SMP cells.

    Performs *n* iterations of pure integer work (plus loop control);
    its counts must be invisible to an EventSet attached to another
    thread.  *use_fma* is accepted for registry uniformity and ignored.
    """
    if n < 1:
        raise ValueError("decoy_spin needs n >= 1")
    _ = use_fma
    asm = Assembler(name=f"decoy{n}")
    flow = Flow(asm)
    asm.func("main")
    asm.li("r1", 0)
    with flow.loop(n, "r30", "r31"):
        asm.addi("r1", "r1", 3)
        asm.muli("r2", "r1", 5)
        asm.sub("r1", "r2", "r1")
    asm.halt()
    asm.endfunc()
    return Workload(
        name=f"decoy_spin(n={n})",
        program=asm.build(),
        expect=Expectations(
            flops=0, fp_ins=0, fma=0, converts=0, loads=0, stores=0,
            hot_function="main",
        ),
    )

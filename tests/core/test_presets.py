"""Unit tests: preset catalogue and per-platform mapping tables."""

import pytest

from repro.core import constants as C
from repro.core.errors import NotPresetError
from repro.core.library import Papi
from repro.core.presets import (
    NUM_PRESETS,
    PLATFORM_PRESET_TABLES,
    PRESETS,
    event_code_to_name,
    event_name_to_code,
    platform_preset_map,
    preset_from_code,
    preset_from_symbol,
    reference_count,
    reference_vector,
)
from repro.hw.events import Signal, fresh_counts
from repro.platforms import PLATFORM_NAMES, create


class TestCatalogue:
    def test_indices_dense_and_stable(self):
        assert [p.index for p in PRESETS] == list(range(NUM_PRESETS))

    def test_symbols_unique_and_prefixed(self):
        symbols = [p.symbol for p in PRESETS]
        assert len(set(symbols)) == len(symbols)
        assert all(s.startswith("PAPI_") for s in symbols)

    def test_code_encoding(self):
        p = preset_from_symbol("PAPI_FP_OPS")
        assert C.is_preset(p.code)
        assert not C.is_native(p.code)
        assert C.preset_index(p.code) == p.index

    def test_code_roundtrip(self):
        for p in PRESETS:
            assert preset_from_code(p.code) is p
            assert event_code_to_name(p.code) == p.symbol
            assert event_name_to_code(p.symbol) == p.code

    def test_bad_code_rejected(self):
        with pytest.raises(NotPresetError):
            preset_from_code(0x123)
        with pytest.raises(NotPresetError):
            preset_from_code(C.PAPI_PRESET_MASK | 9999)
        with pytest.raises(NotPresetError):
            preset_from_symbol("PAPI_NOPE")

    def test_fp_ops_counts_fma_twice(self):
        vec = reference_vector(preset_from_symbol("PAPI_FP_OPS"))
        assert vec[Signal.FP_FMA] == 2
        vec_ins = reference_vector(preset_from_symbol("PAPI_FP_INS"))
        assert vec_ins[Signal.FP_FMA] == 1

    def test_reference_count_evaluates(self):
        counts = fresh_counts()
        counts[Signal.FP_ADD] = 3
        counts[Signal.FP_FMA] = 2
        p = preset_from_symbol("PAPI_FP_OPS")
        assert reference_count(p, counts) == 3 + 2 * 2

    def test_br_prc_is_difference(self):
        vec = reference_vector(preset_from_symbol("PAPI_BR_PRC"))
        assert vec[Signal.BR_MSP] == -1


class TestPlatformTables:
    def test_every_platform_has_a_table(self):
        assert set(PLATFORM_PRESET_TABLES) == set(PLATFORM_NAMES)

    @pytest.mark.parametrize("platform", PLATFORM_NAMES)
    def test_table_references_real_presets_and_natives(self, platform):
        sub = create(platform)
        mapping = platform_preset_map(platform)
        for symbol, pm in mapping.items():
            preset_from_symbol(symbol)  # raises if unknown
            for native_name, coeff in pm.terms:
                assert native_name in sub.native_events, (
                    f"{platform}: {symbol} references unknown {native_name}"
                )
                assert coeff != 0

    @pytest.mark.parametrize("platform", PLATFORM_NAMES)
    def test_core_presets_available_everywhere(self, platform):
        mapping = platform_preset_map(platform)
        for must in ("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS",
                     "PAPI_LD_INS", "PAPI_SR_INS"):
            assert must in mapping, f"{platform} is missing {must}"

    def test_availability_differs_across_platforms(self):
        """The portability matrix must have holes (Section 1/E8)."""
        availability = {
            name: set(platform_preset_map(name)) for name in PLATFORM_NAMES
        }
        sizes = {len(v) for v in availability.values()}
        assert len(sizes) > 1, "platforms suspiciously identical"
        assert "PAPI_TLB_DM" not in availability["simT3E"]
        assert "PAPI_FMA_INS" not in availability["simX86"]
        assert "PAPI_L1_ICM" not in availability["simALPHA"]

    def test_mapping_kind_classification(self):
        mapping = platform_preset_map("simPOWER")
        assert mapping["PAPI_TOT_CYC"].kind == "direct"
        assert mapping["PAPI_FP_OPS"].kind == "derived"
        assert mapping["PAPI_L1_TCM"].kind == "derived"

    def test_power_fp_ops_formula(self):
        """FP_OPS on simPOWER = FPU_INS + FMA - CVT (the corrected form)."""
        mapping = platform_preset_map("simPOWER")["PAPI_FP_OPS"]
        terms = dict(mapping.terms)
        assert terms == {"PM_FPU_INS": 1, "PM_FPU_FMA": 1, "PM_FPU_CVT": -1}

    def test_mapping_evaluate(self):
        mapping = platform_preset_map("simPOWER")["PAPI_FP_OPS"]
        values = {"PM_FPU_INS": 10, "PM_FPU_FMA": 4, "PM_FPU_CVT": 3}
        assert mapping.evaluate(values) == 11


class TestLibraryEventNamespace:
    def test_query_event(self, simpower):
        papi = Papi(simpower)
        assert papi.query_event(event_name_to_code("PAPI_FP_OPS"))
        assert not papi.query_event(event_name_to_code("PAPI_HW_INT"))

    def test_native_codes(self, simpower):
        papi = Papi(simpower)
        code = papi.event_name_to_code("PM_FPU_FMA")
        assert C.is_native(code)
        assert papi.event_code_to_name(code) == "PM_FPU_FMA"
        assert papi.query_event(code)

    def test_event_info_for_unavailable_preset(self, simt3e):
        papi = Papi(simt3e)
        info = papi.event_info(event_name_to_code("PAPI_TLB_DM"))
        assert not info.available
        assert info.kind == "-"

    def test_event_info_for_derived(self, simpower):
        papi = Papi(simpower)
        info = papi.event_info(event_name_to_code("PAPI_L1_TCM"))
        assert info.available and info.kind == "derived"
        assert len(info.native_terms) == 2

    def test_list_presets_counts(self, simia64):
        papi = Papi(simia64)
        all_infos = papi.list_presets()
        avail = papi.list_presets(available_only=True)
        assert len(all_infos) == NUM_PRESETS
        assert 0 < len(avail) < NUM_PRESETS

    def test_availability_summary_shape(self, any_platform):
        papi = Papi(any_platform)
        summary = papi.availability_summary()
        assert len(summary) == NUM_PRESETS
        assert set(summary.values()) <= {"direct", "derived", "-"}

"""Cost plane: measured per-op cycles must equal the published model."""

import pytest

from repro.platforms import PLATFORM_NAMES
from repro.validate.cost import run_cost_plane


@pytest.fixture(scope="module")
def cells():
    return run_cost_plane(list(PLATFORM_NAMES))


def test_all_cells_pass(cells):
    assert [c for c in cells if c.status == "fail"] == []


def test_direct_platforms_get_model_and_fault_cells(cells):
    for name in PLATFORM_NAMES:
        mine = [c for c in cells if c.platform == name]
        if name == "simALPHA":
            assert [c.name for c in mine] == ["interface-total"]
        else:
            assert {c.name for c in mine} == {
                "start", "read", "reset", "stop", "fault-retry",
            }


def test_model_equality_is_exact(cells):
    for c in cells:
        if c.name in ("start", "read", "reset", "stop"):
            assert c.actual == c.expected, (c.platform, c.name)


def test_fault_retry_ledger_balances(cells):
    fault = [c for c in cells if c.name == "fault-retry"]
    assert len(fault) == len(PLATFORM_NAMES) - 1
    for c in fault:
        # absorbed retries were billed: nonzero backoff cycles recorded
        assert c.actual > 0
        assert "retries" in c.detail

"""Engine behaviour: clean sweeps confirm, reports are well-formed."""

from __future__ import annotations

import json

import pytest

from repro.refute.engine import (
    RefuteCell,
    RefuteConfig,
    RefuteReport,
    run_refute,
    run_refute_plane,
)
from repro.validate.seeds import derive_seed

#: the committed seed: what `validate --seed 12345 --planes refute`
#: hands the plane (EXPERIMENTS.md section R quotes the same run).
COMMITTED_SEED = derive_seed(12345, "plane:refute")


@pytest.fixture(scope="module")
def clean_report():
    return run_refute(RefuteConfig.quick(seed=COMMITTED_SEED))


def test_clean_substrates_zero_refutations(clean_report):
    """The acceptance criterion: the committed seed/budget finds no
    model/measurement disagreement on the six unmodified substrates."""
    assert clean_report.refutations() == []
    assert clean_report.passed
    tally = clean_report.summary()
    assert tally["refuted"] == 0
    assert tally["confirmed"] > 80


def test_report_covers_every_platform_and_assumption(clean_report):
    platforms = {c.platform for c in clean_report.cells}
    for platform in RefuteConfig.quick().platforms:
        assert platform in platforms
    assumptions = {c.assumption for c in clean_report.cells}
    assert {"preset-mapping", "fetch-geometry", "tier-invariance",
            "static-bracket", "cost-model",
            "counter-virtualization"} <= assumptions


def test_undecidable_cells_carry_reasons(clean_report):
    undecidable = [c for c in clean_report.cells
                   if c.status == "undecidable"]
    assert undecidable, "simALPHA attach cells must be undecidable"
    assert all(c.detail for c in undecidable)


def test_report_json_schema(clean_report):
    data = json.loads(clean_report.to_json_str())
    assert data["schema"] == "repro.refute/1"
    assert data["passed"] is True
    assert data["meta"]["seed"] == COMMITTED_SEED
    assert len(data["programs"]) == data["meta"]["count"]
    for prog in data["programs"]:
        assert prog["dynamic_bound"] <= data["meta"]["budget"]
        assert prog["genome"]["segments"]
    assert {c["status"] for c in data["cells"]} <= {
        "confirmed", "refuted", "undecidable"
    }


def test_report_markdown_has_verdict_table(clean_report):
    md = clean_report.to_markdown()
    assert "| platform | confirmed | refuted | undecidable |" in md
    assert "REFUTED" not in md


def test_matrix_plane_maps_statuses():
    cells = run_refute_plane(["simT3E", "simALPHA"], seed=COMMITTED_SEED)
    assert all(c.plane == "refute" for c in cells)
    statuses = {c.status for c in cells}
    assert statuses <= {"pass", "fail", "skip"}
    assert "fail" not in statuses
    assert any(c.status == "skip" for c in cells)  # simALPHA attach
    assert any("/" in c.name for c in cells)


def test_quick_round_robins_alternate_combos():
    report = run_refute(RefuteConfig.quick(
        seed=COMMITTED_SEED, platforms=["simT3E"]
    ))
    combos = {c.check for c in report.cells
              if c.check.startswith(("presets@", "attach@"))}
    # canonical tier for every program, plus at least one alternate
    assert any(c == "presets@trace" for c in combos)
    assert len(combos) > 1


def test_run_refute_default_config():
    report = run_refute()
    assert isinstance(report, RefuteReport)
    assert report.config == RefuteConfig.quick()


def test_bad_cell_status_rejected():
    with pytest.raises(ValueError):
        RefuteCell(platform="simT3E", program="g0", check="x",
                   assumption="preset-mapping", status="maybe")

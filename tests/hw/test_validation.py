"""Unit tests: configuration validation across the hardware layer."""

import pytest

from repro.hw.cpu import CPUConfig, default_latencies
from repro.hw.isa import Op
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig


class TestCPUConfig:
    def test_latencies_must_cover_all_opcodes(self):
        with pytest.raises(ValueError):
            CPUConfig(latencies=(1, 2, 3))

    def test_negative_penalties_rejected(self):
        with pytest.raises(ValueError):
            CPUConfig(branch_penalty=-1)
        with pytest.raises(ValueError):
            CPUConfig(syscall_cost=-1)

    def test_default_latencies_sane(self):
        lat = default_latencies()
        assert len(lat) == Op.N_OPS
        assert all(l >= 1 for l in lat)
        assert lat[Op.FDIV] > lat[Op.FMUL] > lat[Op.NOP]

    def test_custom_latency_changes_cycle_cost(self, fma_loop_program):
        from repro.hw import Machine

        slow = default_latencies()
        slow[Op.FMA] = 50
        m_fast = Machine(MachineConfig())
        m_slow = Machine(MachineConfig(cpu=CPUConfig(latencies=tuple(slow))))
        for m in (m_fast, m_slow):
            m.load(fma_loop_program)
            m.run_to_completion()
        assert m_slow.user_cycles > m_fast.user_cycles


class TestPMUConfig:
    def test_counter_count_required(self):
        with pytest.raises(ValueError):
            PMUConfig(n_counters=0)

    def test_negative_skid_rejected(self):
        with pytest.raises(ValueError):
            PMUConfig(skid_max=-1)

    def test_negative_interrupt_cost_rejected(self):
        with pytest.raises(ValueError):
            PMUConfig(interrupt_cost=-1)


class TestMachineConfig:
    def test_clock_rate_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(mhz=0)

    def test_defaults_compose(self):
        cfg = MachineConfig()
        assert cfg.pmu.n_counters >= 1
        assert cfg.hierarchy.l1d.size_bytes > 0

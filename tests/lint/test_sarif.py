"""Output formats: SARIF 2.1.0, the repro.lint/2 JSON schema, the
``python -m repro.lint`` entry point and suppression justifications."""

import json
import os
import pathlib
import subprocess
import sys

from repro.lint import (
    JSON_SCHEMA,
    Diagnostic,
    lint_source,
    parse_suppressions,
    render_json,
    render_sarif,
    to_sarif,
)
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION

REPO = pathlib.Path(__file__).resolve().parents[2]

MISUSE = """\
from repro import Papi, create
substrate = create("simPOWER")
papi = Papi(substrate)
es = papi.create_eventset()
es.add_named("PAPI_TOT_INS")
counts = es.read()
"""


def _diags():
    return lint_source(MISUSE, "misuse.py", flow=True)


class TestSarif:
    def test_log_shape(self):
        log = to_sarif(_diags())
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1
        assert log["runs"][0]["tool"]["driver"]["name"] == "papi-lint"

    def test_rule_catalogue_travels_with_the_log(self):
        driver = to_sarif([])["runs"][0]["tool"]["driver"]
        ids = [r["id"] for r in driver["rules"]]
        assert "PL001" in ids and "PL301" in ids
        assert ids == sorted(ids)
        by_id = {r["id"]: r for r in driver["rules"]}
        assert by_id["PL301"]["defaultConfiguration"]["level"] == "error"
        assert by_id["PL301"]["properties"]["paper"]

    def test_results_use_one_based_columns(self):
        log = to_sarif(_diags())
        results = log["runs"][0]["results"]
        assert results, "misuse snippet must produce findings"
        result = results[0]
        assert result["ruleId"] == "PL001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # ast cols are 0-based

    def test_hint_is_folded_into_the_message(self):
        diag = Diagnostic(
            "PL001", "x.py", 3, 0, "the message", hint="the hint"
        )
        result = to_sarif([diag])["runs"][0]["results"][0]
        assert "the message" in result["message"]["text"]
        assert "the hint" in result["message"]["text"]

    def test_render_is_valid_json(self):
        parsed = json.loads(render_sarif(_diags()))
        assert parsed["version"] == "2.1.0"


class TestJsonSchemaV2:
    def test_payload_carries_schema_marker_and_counts(self):
        payload = json.loads(render_json(_diags()))
        assert payload["schema"] == JSON_SCHEMA == "repro.lint/2"
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        assert payload["notes"] == 0

    def test_v1_keys_survive(self):
        payload = json.loads(render_json(_diags()))
        finding = payload["findings"][0]
        for key in ("code", "severity", "path", "line", "col",
                    "message", "hint"):
            assert key in finding

    def test_findings_embed_rule_metadata(self):
        payload = json.loads(render_json(_diags()))
        rule = payload["findings"][0]["rule"]
        assert rule["summary"]
        assert rule["paper"]


class TestModuleEntryPoint:
    def test_python_dash_m_lint(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint",
             str(REPO / "examples" / "quickstart.py"),
             "--flow", "--format", "json"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro.lint/2"
        assert payload["findings"] == []


class TestSuppressionJustifications:
    def test_reason_after_code_list_is_allowed(self):
        src = "x = 1  # papi-lint: disable=PL008 -- stopped elsewhere\n"
        assert parse_suppressions(src) == {1: {"PL008"}}

    def test_multiple_codes_with_reason(self):
        src = "x = 1  # papi-lint: disable=PL008,PL301 reason here\n"
        assert parse_suppressions(src) == {1: {"PL008", "PL301"}}

    def test_suppression_silences_the_finding(self):
        noisy = MISUSE.replace(
            "counts = es.read()",
            "counts = es.read()  # papi-lint: disable=PL001 -- demo",
        )
        codes = {d.code for d in lint_source(noisy, "t.py", flow=True)}
        assert "PL001" not in codes

"""Flow-sensitive rules PL3xx/PL4xx: each fires, each clean twin stays
silent, and AST-pass shadowing drops redundant flow findings."""

import textwrap

from repro.lint import lint_source


def flow_codes(src):
    """(code, line) pairs from a full flow-mode lint of *src*."""
    diags = lint_source(textwrap.dedent(src), "t.py", flow=True)
    return [(d.code, d.line) for d in diags]


def just_codes(src):
    return [c for c, _line in flow_codes(src)]


PRELUDE = """\
from repro import Papi, create
substrate = create("simPOWER")
papi = Papi(substrate)
es = papi.create_eventset()
es.add_named("PAPI_TOT_INS")
"""

SMP_PRELUDE = """\
from repro import Papi, create
substrate = create("simPOWER", ncpus=2)
papi = Papi(substrate)
t1 = substrate.os.spawn(prog1)
t2 = substrate.os.spawn(prog2)
es = papi.create_eventset()
es.add_named("PAPI_TOT_INS")
"""


class TestPL301ReadBeforeStartOnSomePath:
    def test_conditional_start_then_read(self):
        src = PRELUDE + (
            "if values_ready():\n"
            "    es.start()\n"
            "counts = es.read()\n"
            "es.stop()\n"
        )
        assert ("PL301", 8) in flow_codes(src)

    def test_unconditional_start_is_clean(self):
        src = PRELUDE + (
            "es.start()\n"
            "counts = es.read()\n"
            "es.stop()\n"
        )
        assert just_codes(src) == []

    def test_direct_misuse_is_shadowed_by_ast_rule(self):
        # flat read-without-start: the AST pass already reports PL001
        # on that line, so the flow finding must be deduplicated away.
        src = PRELUDE + "counts = es.read()\n"
        codes = just_codes(src)
        assert "PL001" in codes
        assert "PL301" not in codes


class TestPL302DoubleStart:
    def test_loop_carried_double_start(self):
        # start() inside a loop re-enters on the back edge while the
        # set is still running -- invisible to the source-order AST pass
        src = PRELUDE + (
            "for attempt in range(2):\n"
            "    es.start()\n"
            "es.stop()\n"
        )
        assert ("PL302", 7) in flow_codes(src)

    def test_loop_with_paired_stop_is_clean(self):
        src = PRELUDE + (
            "for attempt in range(2):\n"
            "    es.start()\n"
            "    es.stop()\n"
        )
        assert just_codes(src) == []


class TestPL303SwallowedExceptionLeak:
    def test_handler_early_return_leaks_running_set(self):
        src = """\
def measure(papi, work):
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    es.start()
    try:
        work()
    except ValueError:
        return None
    counts = es.stop()
    return counts
"""
        # anchored at the start() line
        assert ("PL303", 4) in flow_codes(src)


class TestPL304FinallyMissesStop:
    def test_finally_without_stop(self):
        src = """\
def measure(papi, work, log):
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    es.start()
    try:
        work()
    finally:
        log()
    return es.stop()
"""
        assert ("PL304", 4) in flow_codes(src)

    def test_guarded_stop_in_finally_is_clean(self):
        src = """\
def measure(papi, work, log):
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    es.start()
    try:
        work()
    finally:
        if es.running:
            es.stop()
    return None
"""
        assert just_codes(src) == []


class TestPL305BlindFatalRetry:
    def test_retry_loop_around_fatal_error(self):
        src = PRELUDE + (
            "while True:\n"
            "    try:\n"
            "        es.add_named(\"PAPI_TOT_INS\")\n"
            "        break\n"
            "    except NoSuchEventError:\n"
            "        pass\n"
        )
        assert "PL305" in just_codes(src)

    def test_transient_error_retry_is_legitimate(self):
        src = PRELUDE + (
            "while True:\n"
            "    try:\n"
            "        es.add_named(\"PAPI_TOT_INS\")\n"
            "        break\n"
            "    except SystemError_:\n"
            "        pass\n"
        )
        assert "PL305" not in just_codes(src)


class TestPL401SharedAcrossThreads:
    def test_conditional_detach_leaves_other_owner(self):
        # the AST pass sees the detach() in source order and stays
        # silent; only the flow pass knows it is path-dependent.
        src = SMP_PRELUDE + (
            "es.attach(t1)\n"
            "es.start()\n"
            "es.stop()\n"
            "if recycle():\n"
            "    es.detach()\n"
            "es.attach(t2)\n"
        )
        assert ("PL401", 13) in flow_codes(src)

    def test_unconditional_detach_is_clean(self):
        src = SMP_PRELUDE + (
            "es.attach(t1)\n"
            "es.start()\n"
            "es.stop()\n"
            "es.detach()\n"
            "es.attach(t2)\n"
        )
        assert "PL401" not in just_codes(src)

    def test_counter_maybe_bound_to_other_thread(self):
        src = """\
from repro import create
substrate = create("simPOWER", ncpus=2)
t1 = substrate.os.spawn(prog1)
t2 = substrate.os.spawn(prog2)
substrate.os.bind_counter(t1, 2)
if done():
    substrate.os.unbind_counter(t1, 2)
substrate.os.bind_counter(t2, 2)
"""
        assert ("PL401", 8) in flow_codes(src)


class TestPL402OffCpuRead:
    def test_direct_pmu_read_of_bound_counter(self):
        src = """\
from repro import create
substrate = create("simPOWER", ncpus=2)
t = substrate.os.spawn(prog)
substrate.os.bind_counter(t, 2)
value = substrate.machine.cpus[0].pmu.read(2)
"""
        assert ("PL402", 5) in flow_codes(src)


class TestPL403CounterOpWithoutBind:
    def test_bind_on_some_path_only(self):
        src = """\
from repro import create
substrate = create("simPOWER", ncpus=2)
t = substrate.os.spawn(prog)
if fast_path():
    substrate.os.bind_counter(t, 2)
value = substrate.os.counter_value(t, 2)
"""
        assert ("PL403", 6) in flow_codes(src)

    def test_dominating_bind_is_clean(self):
        src = """\
from repro import create
substrate = create("simPOWER", ncpus=2)
t = substrate.os.spawn(prog)
substrate.os.bind_counter(t, 2)
value = substrate.os.counter_value(t, 2)
substrate.os.unbind_counter(t, 2)
"""
        assert just_codes(src) == []

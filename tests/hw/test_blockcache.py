"""Block execution engine: partitioning, bit-exactness, replay, deadlines.

Every test here checks the engine against the same ground truth: the
pure interpreter (``block_engine=False``).  The contract under test is
*bit-exactness* -- not "close", identical.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.hw import Assembler, Machine, MachineConfig, Signal
from repro.hw.blockcache import (
    MAX_BLOCK_LEN,
    _compute_leaders,
    _count_consecutive_takens,
)
from repro.hw.branch import GsharePredictor, StaticTakenPredictor, TwoBitPredictor
from repro.hw.cpu import MachineFault
from repro.hw.isa import Op


def machine_pair(**cfg):
    """A (engine-off, engine-on) machine pair with identical configs."""
    base = MachineConfig(**cfg)
    off = Machine(dataclasses.replace(base, block_engine=False))
    on = Machine(dataclasses.replace(base, block_engine=True))
    return off, on


def full_state(m: Machine):
    """Everything observable that must match between the two paths."""
    return {
        "counts": list(m.counts),
        "real_cycles": m.real_cycles,
        "iregs": list(m.cpu.iregs),
        "fregs": list(m.cpu.fregs),
        "memory": list(m.cpu.memory),
        "pc": m.cpu.pc,
        "halted": m.cpu.halted,
        "call_stack": list(m.cpu.call_stack),
        "touched_pages": set(m.cpu.touched_pages),
        "cache_stats": m.hierarchy.stats_snapshot(),
    }


def assert_equivalent(prog, run, **cfg):
    """Run *prog* via *run(machine)* on both paths; states must match."""
    off, on = machine_pair(**cfg)
    off.load(prog)
    on.load(prog)
    r_off = run(off)
    r_on = run(on)
    s_off, s_on = full_state(off), full_state(on)
    for key in s_off:
        assert s_off[key] == s_on[key], key
    assert r_off == r_on
    return off, on


def counting_loop(n=500, stride=1):
    asm = Assembler(name="count")
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.label("loop")
    asm.addi("r3", "r3", 7)
    asm.addi("r1", "r1", stride)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------


def test_leaders_cover_entry_targets_and_joins():
    prog = counting_loop()
    code = prog.resolve()
    leaders = _compute_leaders(code)
    # entry pc and the loop head (branch target) are leaders, as is the
    # fall-through successor of the closing branch.
    assert 0 in leaders
    branch_pc = next(pc for pc, ins in enumerate(code) if ins[0] == Op.BLT)
    assert code[branch_pc][3] in leaders
    assert branch_pc + 1 in leaders


def test_probe_pcs_never_compiled():
    asm = Assembler(name="probed")
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", 50)
    asm.label("loop")
    asm.probe(3)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    prog = asm.build()

    hits = []
    off, on = machine_pair()
    for m in (off, on):
        m.load(prog)
        m.register_probe(3, lambda pid, cpu: hits.append((pid, cpu.pc)))
        m.run_to_completion()
    assert full_state(off) == full_state(on)
    # 50 firings per machine, identical pcs
    assert len(hits) == 100
    assert hits[:50] == hits[50:]
    # the PROBE pc heads no compiled block
    st = on.engine_stats()
    assert st.blocks_compiled >= 1


# ----------------------------------------------------------------------
# bit-exact equivalence across program shapes
# ----------------------------------------------------------------------


def test_counting_loop_equivalence():
    off, on = assert_equivalent(
        counting_loop(2000), lambda m: m.run_to_completion()
    )
    st = on.engine_stats()
    assert st.fast_instructions > 0
    assert st.replays >= 1
    assert st.replayed_instructions > 0
    assert off.engine_stats() is None


def test_fma_loop_equivalence(fma_loop_program):
    _, on = assert_equivalent(
        fma_loop_program, lambda m: m.run_to_completion()
    )
    # striding store base: compiled path yes, bulk replay no.
    assert on.engine_stats().fast_instructions > 0


def test_call_ret_and_memory_equivalence():
    asm = Assembler(name="callmem")
    base = asm.reserve_data(64)
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", 40)
    asm.li("r5", base)
    asm.label("loop")
    asm.call("work")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    asm.func("work")
    asm.load("r3", "r5", 2)
    asm.add("r4", "r4", "r3")
    asm.store("r4", "r5", 3)
    asm.ret()
    asm.endfunc()
    assert_equivalent(asm.build(), lambda m: m.run_to_completion())


def test_long_straight_line_block_split():
    # straight-line run far beyond MAX_BLOCK_LEN: split blocks must chain.
    asm = Assembler(name="straight")
    asm.label("main")
    for i in range(3 * MAX_BLOCK_LEN):
        asm.addi("r1", "r1", i % 5)
    asm.halt()
    _, on = assert_equivalent(asm.build(), lambda m: m.run_to_completion())
    assert on.engine_stats().blocks_compiled >= 3


def test_fault_messages_identical():
    asm = Assembler(name="crash")
    asm.label("main")
    asm.li("r1", 3)
    asm.li("r2", 0)
    asm.div("r3", "r1", "r2")
    asm.halt()
    prog = asm.build()
    msgs = []
    for m in machine_pair():
        m.load(prog)
        with pytest.raises(MachineFault) as err:
            m.run_to_completion()
        msgs.append(str(err.value))
    assert msgs[0] == msgs[1]
    assert "divide by zero" in msgs[0]


def test_out_of_range_store_fault_identical():
    asm = Assembler(name="oob")
    asm.label("main")
    asm.li("r1", 1 << 40)
    asm.store("r1", "r1", 0)
    asm.halt()
    prog = asm.build()
    msgs = []
    for m in machine_pair():
        m.load(prog)
        with pytest.raises(MachineFault) as err:
            m.run_to_completion()
        msgs.append(str(err.value))
    assert msgs[0] == msgs[1]
    assert "out of range" in msgs[0]


# ----------------------------------------------------------------------
# budget deadlines: stop at exactly the same instruction either way
# ----------------------------------------------------------------------


@pytest.mark.parametrize("budget", [1, 2, 3, 7, 50, 151, 1499])
def test_instruction_budget_boundary(budget):
    assert_equivalent(
        counting_loop(300), lambda m: m.run(max_instructions=budget)
    )


@pytest.mark.parametrize("budget", [1, 13, 100, 997, 4001])
def test_cycle_budget_boundary(budget):
    assert_equivalent(
        counting_loop(300), lambda m: m.run(max_cycles=budget)
    )


def test_resume_after_budget_is_equivalent():
    def run(m):
        parts = []
        while not m.cpu.halted:
            parts.append(m.run(max_instructions=37).instructions)
        return parts

    assert_equivalent(counting_loop(400), run)


# ----------------------------------------------------------------------
# PMU deadlines: overflow watches and timers fire identically
# ----------------------------------------------------------------------


def test_overflow_records_identical_mid_loop():
    prog = counting_loop(3000)
    records = {}
    for label, m in zip(("off", "on"), machine_pair()):
        m.load(prog)
        got = []
        m.pmu.program(0, [Signal.TOT_INS])
        m.pmu.set_overflow(0, 700, lambda rec, got=got: got.append(
            (rec.trigger_pc, rec.reported_pc, rec.cycle, rec.overflow_count)
        ))
        m.pmu.start(0)
        m.run_to_completion()
        records[label] = got
    assert records["on"] == records["off"]
    assert len(records["on"]) >= 10


def test_cycle_timer_ticks_identical():
    prog = counting_loop(2000)
    ticks = {}
    for label, m in zip(("off", "on"), machine_pair()):
        m.load(prog)
        got = []
        m.pmu.set_cycle_timer(900, lambda cycle, got=got: got.append(cycle))
        m.run_to_completion()
        ticks[label] = got
    assert ticks["on"] == ticks["off"]
    assert len(ticks["on"]) >= 5


# ----------------------------------------------------------------------
# replay engagement and invalidation
# ----------------------------------------------------------------------


def test_replay_reaches_steady_state_counts():
    n = 100_000
    off, on = assert_equivalent(
        counting_loop(n), lambda m: m.run_to_completion()
    )
    st = on.engine_stats()
    # nearly every loop instruction retires via bulk replay
    assert st.replayed_instructions > 0.9 * 3 * n


def test_charge_barrier_rearms_replay():
    off, on = machine_pair()
    prog = counting_loop(5000)
    on.load(prog)
    on.run(max_instructions=4000)
    flushes0 = on.engine_stats().flushes
    on.charge(100, pollute_lines=32)
    assert on.engine_stats().flushes > flushes0
    on.run_to_completion()

    off.load(prog)
    off.run(max_instructions=4000)
    off.charge(100, pollute_lines=32)
    off.run_to_completion()
    assert full_state(off) == full_state(on)


def test_reload_retires_old_table():
    off, on = machine_pair()
    a = counting_loop(200)
    b = counting_loop(300, stride=2)
    for m in (off, on):
        m.load(a)
        m.run_to_completion()
        m.load(b)
        m.run_to_completion()
    assert full_state(off) == full_state(on)


def test_pmu_read_mid_run_flushes_engine():
    off, on = machine_pair()
    prog = counting_loop(100)
    on.load(prog)
    on.pmu.program(0, [Signal.TOT_INS])
    on.pmu.start(0)
    flushes0 = on.engine_stats().flushes
    on.run_to_completion()
    value = on.pmu.read(0)
    assert on.engine_stats().flushes > flushes0

    off.load(prog)
    off.pmu.program(0, [Signal.TOT_INS])
    off.pmu.start(0)
    off.run_to_completion()
    assert value == off.pmu.read(0)


# ----------------------------------------------------------------------
# scheduler integration: context switches preserve bit-exactness
# ----------------------------------------------------------------------


def test_scheduler_slices_equivalent_and_counted():
    from repro.simos.scheduler import OS

    results = {}
    for label, m in zip(("off", "on"), machine_pair()):
        os_ = OS(m, quantum_cycles=2500)
        os_.spawn(counting_loop(4000))
        os_.spawn(counting_loop(3000, stride=2))
        stats = os_.run()
        results[label] = (
            full_state(m), stats.slices, stats.context_switches,
            [t.user_cycles for t in os_.threads],
        )
        if label == "on":
            assert stats.engine_instructions > 0
        else:
            assert stats.engine_instructions == 0
    assert results["on"] == results["off"]


# ----------------------------------------------------------------------
# predictor steady-state units
# ----------------------------------------------------------------------


def test_two_bit_steady_taken_requires_saturation():
    p = TwoBitPredictor()
    assert not p.steady_taken(5)
    for _ in range(4):
        p.update(5, True)
    assert p.steady_taken(5)
    p.update(5, False)
    assert not p.steady_taken(5)


def test_static_taken_is_always_steady():
    assert StaticTakenPredictor().steady_taken(123)


def test_gshare_steady_needs_saturated_history_and_counter():
    p = GsharePredictor()
    assert not p.steady_taken(5)
    for _ in range(64):
        p.update(5, True)
    assert p.steady_taken(5)


# ----------------------------------------------------------------------
# closed-form taken counts
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind,c,s,bound", [
    ("lt", 0, 1, 10), ("lt", 3, 2, 100), ("lt", 9, 1, 10),
    ("le", 0, 3, 30), ("ge", 50, -7, 3), ("gt", 50, -1, 0),
    ("ne", 0, 1, 25), ("ne", 0, 3, 10), ("eq", 5, 0, 5),
])
def test_count_consecutive_takens_matches_bruteforce(kind, c, s, bound):
    pred = {
        "lt": lambda v: v < bound, "le": lambda v: v <= bound,
        "gt": lambda v: v > bound, "ge": lambda v: v >= bound,
        "eq": lambda v: v == bound, "ne": lambda v: v != bound,
    }[kind]
    cap = 1000
    brute = 0
    v = c
    while brute < cap:
        v += s
        if not pred(v):
            break
        brute += 1
    assert _count_consecutive_takens(kind, c, s, bound, cap) == brute

"""simX86: a Linux/x86 P6-like platform with a kernel-patch interface.

The paper notes the Linux/x86 substrate used "customized system calls
implemented in a kernel patch" -- and that kernel modifications met
resistance from system administrators.  The modelled interface is
accordingly the most expensive per call (every operation is a syscall
that also drags interface lines through the data cache), the PMU has
only **two** counters with P6-style placement constraints (several
events can live on only one specific counter), and the out-of-order
core gives overflow interrupts a substantial skid.

The pairing constraints are the canonical source of first-fit allocation
failures: an EventSet {CPU_CLK_UNHALTED, FLOPS} allocated greedily can
put the clock on counter 0 and then find FLOPS (counter-0-only)
unplaceable, while the optimal matcher succeeds (experiment E4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hw.cache import CacheConfig, HierarchyConfig, TLBConfig
from repro.hw.cpu import CPUConfig
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig
from repro.platforms.base import AccessCosts, CounterGroup, NativeEvent, Substrate


class SimX86(Substrate):
    NAME = "simX86"
    STYLE = "syscall"
    COUNTING = "direct"
    DESCRIPTION = "Linux/x86 P6-like: kernel-patch syscall interface, 2 counters"
    COSTS = AccessCosts(
        read=2400,
        read_per_counter=150,
        start=3000,
        stop=2800,
        program=3200,
        reset=2000,
        pollute_lines=8,
    )
    HAS_FMA = False  # x87 has no fused multiply-add
    #: deep out-of-order core: interrupt pc skids worst of the fleet.
    PROFILING = "overflow"

    def _machine_config(self, seed: int) -> MachineConfig:
        return MachineConfig(
            name=self.NAME,
            cpu=CPUConfig(predictor="gshare", branch_penalty=10),
            hierarchy=HierarchyConfig(
                l1d=CacheConfig("L1D", size_bytes=4096, line_bytes=32, assoc=4),
                l1i=CacheConfig("L1I", size_bytes=4096, line_bytes=32, assoc=4),
                l2=CacheConfig("L2", size_bytes=131072, line_bytes=32, assoc=4),
                tlb=TLBConfig(entries=32, page_bytes=4096),
                l2_latency=10,
                mem_latency=70,
                tlb_walk_latency=30,
            ),
            pmu=PMUConfig(n_counters=2, skid_max=14, interrupt_cost=150),
            mhz=800,
            seed=seed,
        )

    def _native_events(self) -> Sequence[NativeEvent]:
        return [
            NativeEvent("CPU_CLK_UNHALTED", (Signal.TOT_CYC,), "core clocks"),
            NativeEvent("INST_RETIRED", (Signal.TOT_INS,), "instructions retired"),
            # P6 quirk: FLOPS counts only on PMC0.
            NativeEvent(
                "FLOPS",
                (Signal.FP_ADD, Signal.FP_MUL, Signal.FP_DIV, Signal.FP_SQRT),
                "x87 floating point operations retired",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "DATA_MEM_REFS",
                (Signal.LD_INS, Signal.SR_INS),
                "all memory references",
            ),
            NativeEvent(
                "DCU_LINES_IN",
                (Signal.L1D_MISS,),
                "L1 data lines allocated",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "L2_LINES_IN",
                (Signal.L2_MISS,),
                "L2 lines allocated",
                allowed_counters=(1,),
            ),
            NativeEvent("BR_INST_RETIRED", (Signal.BR_INS,), "branches retired"),
            NativeEvent(
                "BR_MISS_PRED_RETIRED",
                (Signal.BR_MSP,),
                "mispredicted branches retired",
                allowed_counters=(1,),
            ),
            NativeEvent(
                "BR_TAKEN_RETIRED",
                (Signal.BR_TKN,),
                "taken branches retired",
            ),
            NativeEvent(
                "DTLB_MISS",
                (Signal.TLB_DM,),
                "data TLB misses",
                allowed_counters=(0,),
            ),
            NativeEvent(
                "IFU_IFETCH_MISS",
                (Signal.L1I_MISS,),
                "instruction fetch misses",
                allowed_counters=(1,),
            ),
            NativeEvent("LD_RETIRED", (Signal.LD_INS,), "loads retired"),
            NativeEvent("ST_RETIRED", (Signal.SR_INS,), "stores retired"),
            NativeEvent(
                "RESOURCE_STALLS",
                (Signal.STL_CYC,),
                "stall cycles",
                allowed_counters=(0,),
            ),
        ]

    def _groups(self) -> Optional[List[CounterGroup]]:
        return None

    def _uncore_counters(self) -> int:
        # the kernel patch maps only two off-core counters, so a full
        # uncore event sweep must multiplex (like the core PMU here).
        return 2

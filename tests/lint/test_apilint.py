"""Unit tests: the AST API-misuse checker (PL0xx rules)."""

from repro.lint import Severity, lint_source

PRELUDE = """\
from repro.core.library import Papi
from repro.platforms import create

substrate = create("{platform}")
papi = Papi(substrate)
es = papi.create_eventset()
"""


def codes(source, platform=None, path="script.py"):
    return [
        d.code for d in lint_source(source, path, default_platform=platform)
    ]


def lint(source, platform=None, path="script.py"):
    return lint_source(source, path, default_platform=platform)


class TestRunControl:
    def test_read_before_start_is_pl001(self):
        src = PRELUDE.format(platform="simT3E") + "es.read()\n"
        assert codes(src) == ["PL001"]

    def test_stop_before_start_is_pl001(self):
        src = PRELUDE.format(platform="simT3E") + "es.stop()\n"
        assert codes(src) == ["PL001"]

    def test_read_after_stop_is_pl001(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.stop()\n"
            "es.read()\n"
        )
        assert codes(src) == ["PL001"]

    def test_double_start_is_pl002(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.start()\n"
            "es.stop()\n"
        )
        assert codes(src) == ["PL002"]

    def test_add_while_running_is_pl007(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            'es.add_named("PAPI_TOT_INS")\n'
            "es.stop()\n"
        )
        assert "PL007" in codes(src)

    def test_started_never_stopped_is_pl008(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
        )
        assert codes(src) == ["PL008"]

    def test_correct_sequence_is_clean(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS")\n'
            "es.start()\n"
            "es.read()\n"
            "counts = es.stop()\n"
        )
        assert codes(src) == []

    def test_diagnostic_carries_position(self):
        src = PRELUDE.format(platform="simT3E") + "es.read()\n"
        (diag,) = lint(src, path="myscript.py")
        assert diag.path == "myscript.py"
        assert diag.line == 7  # the es.read() line
        assert "myscript.py:7:" in diag.render()

    def test_overlapping_eventsets_is_pl013(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es2 = papi.create_eventset()\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            'es2.add_named("PAPI_TOT_INS")\n'
            "es.start()\n"
            "es2.start()\n"
            "es.stop()\n"
            "es2.stop()\n"
        )
        assert "PL013" in codes(src)


class TestMultiplexAndOverflow:
    def test_set_multiplex_after_add_is_pl003(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.set_multiplex()\n"
        )
        assert "PL003" in codes(src)

    def test_set_multiplex_before_add_is_clean(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es.set_multiplex()\n"
            'es.add_named("PAPI_TOT_CYC")\n'
        )
        assert "PL003" not in codes(src)

    def test_short_multiplexed_run_is_pl004(self):
        src = PRELUDE.format(platform="simX86") + (
            "es.set_multiplex()\n"
            'es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS")\n'
            "es.start()\n"
            "substrate.machine.run(max_instructions=1000)\n"
            "es.stop()\n"
        )
        result = codes(src)
        assert "PL004" in result

    def test_long_multiplexed_run_is_clean_of_pl004(self):
        src = PRELUDE.format(platform="simX86") + (
            "es.set_multiplex()\n"
            'es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS")\n'
            "es.start()\n"
            "substrate.machine.run(max_instructions=500000)\n"
            "es.stop()\n"
        )
        assert "PL004" not in codes(src)

    def test_overflow_on_running_set_is_pl005(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.overflow(0, 10000, lambda *a: None)\n"
            "es.stop()\n"
        )
        assert "PL005" in codes(src)

    def test_overflow_plus_multiplex_is_pl009(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es.set_multiplex()\n"
            "es.overflow(0, 10000, lambda *a: None)\n"
        )
        assert "PL009" in codes(src)


class TestEventNames:
    def test_unknown_preset_is_pl010(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_NO_SUCH")\n'
        )
        assert "PL010" in codes(src)

    def test_unavailable_preset_is_pl011(self):
        # PAPI_BR_MSP exists in the catalogue but has no simT3E mapping.
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_BR_MSP")\n'
        )
        assert "PL011" in codes(src)

    def test_duplicate_add_is_pl012(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            'es.add_named("PAPI_TOT_CYC")\n'
        )
        assert "PL012" in codes(src)

    def test_module_constant_list_is_resolved(self):
        src = (
            'EVENTS = ["PAPI_TOT_CYC", "PAPI_NO_SUCH"]\n'
            + PRELUDE.format(platform="simT3E")
            + "es.add_named(*EVENTS)\n"
        )
        assert "PL010" in codes(src)

    def test_event_name_to_code_call_is_resolved(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_event(papi.event_name_to_code("PAPI_NO_SUCH"))\n'
        )
        assert "PL010" in codes(src)


class TestMixingInterfaces:
    def test_high_and_low_level_on_one_library_is_pl006(self):
        src = (
            "from repro.core.highlevel import HighLevel\n"
            + PRELUDE.format(platform="simPOWER")
            + "hl = HighLevel(papi)\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.stop()\n"
            'hl.start_counters(["PAPI_TOT_INS"])\n'
            "hl.stop_counters()\n"
        )
        assert "PL006" in codes(src)

    def test_highlevel_read_before_start_is_pl001(self):
        src = (
            "from repro.core.highlevel import HighLevel\n"
            + PRELUDE.format(platform="simPOWER")
            + "hl = HighLevel(papi)\n"
            "hl.read_counters()\n"
        )
        assert "PL001" in codes(src)

    def test_highlevel_alone_is_clean(self):
        src = (
            "from repro.core.highlevel import HighLevel\n"
            "from repro.core.library import Papi\n"
            "from repro.platforms import create\n"
            'papi = Papi(create("simPOWER"))\n'
            "hl = HighLevel(papi)\n"
            'hl.start_counters(["PAPI_TOT_CYC", "PAPI_TOT_INS"])\n'
            "hl.read_counters()\n"
            "hl.stop_counters()\n"
        )
        assert codes(src) == []


class TestGuards:
    def test_try_except_conflict_suppresses_pl101(self):
        src = PRELUDE.format(platform="simX86") + (
            "from repro.core.errors import ConflictError\n"
            "try:\n"
            '    es.add_named("PAPI_FP_OPS", "PAPI_L1_DCM")\n'
            "except ConflictError:\n"
            "    pass\n"
        )
        assert "PL101" not in codes(src)

    def test_bare_except_suppresses_guardable_rules(self):
        src = PRELUDE.format(platform="simT3E") + (
            "try:\n"
            "    es.read()\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert "PL001" not in codes(src)

    def test_unrelated_handler_does_not_suppress(self):
        src = PRELUDE.format(platform="simT3E") + (
            "try:\n"
            "    es.read()\n"
            "except ValueError:\n"
            "    pass\n"
        )
        assert "PL001" in codes(src)


class TestSwallowedErrors:
    def test_papi_error_pass_is_pl017(self):
        src = PRELUDE.format(platform="simT3E") + (
            "from repro.core.errors import PapiError\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "try:\n"
            "    es.start()\n"
            "    es.stop()\n"
            "except PapiError:\n"
            "    pass\n"
        )
        assert "PL017" in codes(src)

    def test_bare_except_pass_is_pl017(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "try:\n"
            "    es.start()\n"
            "    es.stop()\n"
            "except:\n"
            "    pass\n"
        )
        assert "PL017" in codes(src)

    def test_docstring_only_body_still_counts_as_pass(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "try:\n"
            "    es.start()\n"
            "    es.stop()\n"
            "except Exception:\n"
            '    "sometimes flaky"\n'
        )
        assert "PL017" in codes(src)

    def test_specific_subclass_guard_is_sanctioned(self):
        """`except ConflictError: pass` is the documented probe idiom --
        the caller named the exact failure they expect."""
        src = PRELUDE.format(platform="simX86") + (
            "from repro.core.errors import ConflictError\n"
            "try:\n"
            '    es.add_named("PAPI_FP_OPS", "PAPI_L1_DCM")\n'
            "except ConflictError:\n"
            "    pass\n"
        )
        assert "PL017" not in codes(src)

    def test_handler_that_inspects_the_error_is_clean(self):
        src = PRELUDE.format(platform="simT3E") + (
            "from repro.core.errors import PapiError\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "try:\n"
            "    es.start()\n"
            "    es.stop()\n"
            "except PapiError as exc:\n"
            "    print(exc.code)\n"
        )
        assert "PL017" not in codes(src)

    def test_try_without_papi_calls_is_clean(self):
        src = PRELUDE.format(platform="simT3E") + (
            "try:\n"
            "    x = 1 / 0\n"
            "except Exception:\n"
            "    pass\n"
        )
        assert "PL017" not in codes(src)

    def test_pl017_is_a_warning(self):
        src = PRELUDE.format(platform="simT3E") + (
            'es.add_named("PAPI_TOT_CYC")\n'
            "try:\n"
            "    es.start()\n"
            "    es.stop()\n"
            "except PapiError:\n"
            "    pass\n"
        )
        diags = [d for d in lint(src) if d.code == "PL017"]
        assert diags and all(d.severity is Severity.WARNING for d in diags)


class TestSuppressions:
    def test_disable_comment_suppresses_on_its_line(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es.read()  # papi-lint: disable=PL001\n"
        )
        assert codes(src) == []

    def test_disable_all(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es.read()  # papi-lint: disable=all\n"
        )
        assert codes(src) == []

    def test_disable_other_code_keeps_finding(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es.read()  # papi-lint: disable=PL999\n"
        )
        assert codes(src) == ["PL001"]


class TestFeasibilityIntegration:
    def test_infeasible_add_is_pl101(self):
        # FLOPS and DCU_LINES_IN both pin to counter 0 on simX86.
        src = PRELUDE.format(platform="simX86") + (
            'es.add_named("PAPI_FP_OPS", "PAPI_L1_DCM")\n'
        )
        result = lint(src)
        assert [d.code for d in result] == ["PL101"]
        assert result[0].severity == Severity.ERROR
        assert "simX86" in result[0].message

    def test_default_platform_flag_enables_feasibility(self):
        src = (
            "from repro.core.library import Papi\n"
            "def run(papi):\n"
            "    es = papi.create_eventset()\n"
            '    es.add_named("PAPI_FP_OPS", "PAPI_L1_DCM")\n'
        )
        assert codes(src) == []  # platform unknown: nothing to check
        assert "PL101" in codes(src, platform="simX86")

    def test_unnecessary_multiplex_is_pl102(self):
        src = PRELUDE.format(platform="simT3E") + (
            "es.set_multiplex()\n"
            'es.add_named("PAPI_TOT_CYC", "PAPI_TOT_INS")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        assert "PL102" in codes(src)

    def test_portability_info_is_pl103(self):
        # feasible on simX86 but needs multiplexing on simSPARC.
        src = PRELUDE.format(platform="simX86") + (
            'es.add_named("PAPI_L1_DCM", "PAPI_L1_ICM")\n'
            "es.start()\n"
            "es.stop()\n"
        )
        result = lint(src)
        by_code = {d.code: d for d in result}
        assert "PL103" in by_code
        assert by_code["PL103"].severity == Severity.INFO

    def test_highlevel_infeasible_set_is_pl101(self):
        src = (
            "from repro.core.highlevel import HighLevel\n"
            "from repro.core.library import Papi\n"
            "from repro.platforms import create\n"
            'papi = Papi(create("simX86"))\n'
            "hl = HighLevel(papi)\n"
            'hl.start_counters(["PAPI_FP_OPS", "PAPI_L1_DCM"])\n'
            "hl.stop_counters()\n"
        )
        assert "PL101" in codes(src)


class TestPresetTableEdits:
    def test_dangling_native_in_script_is_pl201(self):
        src = (
            "from repro.core.presets import PLATFORM_PRESET_TABLES\n"
            'PLATFORM_PRESET_TABLES["simX86"]["PAPI_L1_DCM"] = '
            '[("NO_SUCH", 1)]\n'
        )
        result = lint(src)
        assert [d.code for d in result] == ["PL201"]
        assert result[0].line == 2

    def test_zero_coefficient_in_script_is_pl202(self):
        src = (
            'PLATFORM_PRESET_TABLES["simX86"]["PAPI_TOT_CYC"] = '
            '[("CPU_CLK_UNHALTED", 0)]\n'
        )
        assert "PL202" in codes(src)


class TestEngine:
    def test_syntax_error_is_pl900(self):
        result = lint("def broken(:\n")
        assert [d.code for d in result] == ["PL900"]
        assert result[0].line == 1

    def test_functions_are_linted_as_scopes(self):
        src = (
            "from repro.core.library import Papi\n"
            "from repro.platforms import create\n"
            "def measure():\n"
            '    papi = Papi(create("simT3E"))\n'
            "    es = papi.create_eventset()\n"
            "    es.read()\n"
        )
        assert codes(src) == ["PL001"]

    def test_aliasing_tracks_the_same_eventset(self):
        src = PRELUDE.format(platform="simT3E") + (
            "alias = es\n"
            'alias.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "alias.start()\n"
            "es.stop()\n"
        )
        assert "PL002" in codes(src)


class TestThreadRules:
    def test_attach_while_running_is_pl014(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t = substrate.os.spawn(prog)\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.attach(t)\n"
            "es.stop()\n"
        )
        assert "PL014" in codes(src)
        assert "PL007" not in codes(src)

    def test_detach_while_running_is_pl014(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t = substrate.os.spawn(prog)\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.attach(t)\n"
            "es.start()\n"
            "es.detach()\n"
            "es.stop()\n"
        )
        assert "PL014" in codes(src)

    def test_attach_before_start_is_clean(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t = substrate.os.spawn(prog)\n"
            "es.attach(t)\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "es.stop()\n"
            "es.detach()\n"
        )
        assert codes(src) == []

    def test_pl014_suppressed_by_is_running_guard(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "from repro.core.errors import IsRunningError\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.start()\n"
            "try:\n"
            "    es.attach(t)\n"
            "except IsRunningError:\n"
            "    pass\n"
            "es.stop()\n"
        )
        assert "PL014" not in codes(src)

    def test_reattach_without_detach_is_pl015(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t1 = substrate.os.spawn(prog)\n"
            "t2 = substrate.os.spawn(prog)\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.attach(t1)\n"
            "es.attach(t2)\n"
        )
        assert "PL015" in codes(src)

    def test_reattach_after_detach_is_clean(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t1 = substrate.os.spawn(prog)\n"
            "t2 = substrate.os.spawn(prog)\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.attach(t1)\n"
            "es.detach()\n"
            "es.attach(t2)\n"
        )
        assert "PL015" not in codes(src)

    def test_reattach_same_thread_alias_is_clean(self):
        # aliasing: the identity is the spawned thread, not the name
        src = PRELUDE.format(platform="simPOWER") + (
            "t1 = substrate.os.spawn(prog)\n"
            "same = t1\n"
            'es.add_named("PAPI_TOT_CYC")\n'
            "es.attach(t1)\n"
            "es.attach(same)\n"
        )
        assert "PL015" not in codes(src)

    def test_double_bind_counter_is_pl016(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t1 = substrate.os.spawn(prog)\n"
            "t2 = substrate.os.spawn(prog)\n"
            "substrate.os.bind_counter(t1, 0)\n"
            "substrate.os.bind_counter(t2, 0)\n"
        )
        assert "PL016" in codes(src)

    def test_bind_distinct_indices_is_clean(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t1 = substrate.os.spawn(prog)\n"
            "t2 = substrate.os.spawn(prog)\n"
            "substrate.os.bind_counter(t1, 0)\n"
            "substrate.os.bind_counter(t2, 1)\n"
        )
        assert "PL016" not in codes(src)

    def test_rebind_after_unbind_is_clean(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "t1 = substrate.os.spawn(prog)\n"
            "t2 = substrate.os.spawn(prog)\n"
            "substrate.os.bind_counter(t1, 0)\n"
            "substrate.os.unbind_counter(t1, 0)\n"
            "substrate.os.bind_counter(t2, 0)\n"
        )
        assert "PL016" not in codes(src)

    def test_pl016_suppressed_by_oserror_guard(self):
        src = PRELUDE.format(platform="simPOWER") + (
            "from repro.simos import OSError_\n"
            "t1 = substrate.os.spawn(prog)\n"
            "t2 = substrate.os.spawn(prog)\n"
            "substrate.os.bind_counter(t1, 0)\n"
            "try:\n"
            "    substrate.os.bind_counter(t2, 0)\n"
            "except OSError_:\n"
            "    pass\n"
        )
        assert "PL016" not in codes(src)

    def test_new_rules_have_expected_severities(self):
        from repro.lint.rules import rule

        assert rule("PL014").severity is Severity.ERROR
        assert rule("PL015").severity is Severity.WARNING
        assert rule("PL016").severity is Severity.ERROR


PAPID_PRELUDE = """\
from repro.daemon import PapidClient, PapidServer, DaemonConfig, SessionSpec

server = PapidServer(DaemonConfig(transport="inline"))
"""


class TestPapidClientClose:
    """PL018: a PapidClient must be context-managed or close()d."""

    def test_unclosed_client_is_pl018(self):
        src = PAPID_PRELUDE + (
            "client = PapidClient(server)\n"
            'client.create(SessionSpec(sid="s-0"))\n'
        )
        assert "PL018" in codes(src)

    def test_pl018_reports_construction_line(self):
        src = PAPID_PRELUDE + "client = PapidClient(server)\n"
        diags = [d for d in lint(src) if d.code == "PL018"]
        assert len(diags) == 1
        assert diags[0].line == 4
        assert diags[0].severity is Severity.WARNING

    def test_context_manager_is_clean(self):
        src = PAPID_PRELUDE + (
            "with PapidClient(server) as client:\n"
            '    client.create(SessionSpec(sid="s-0"))\n'
        )
        assert "PL018" not in codes(src)

    def test_explicit_close_is_clean(self):
        src = PAPID_PRELUDE + (
            "client = PapidClient(server)\n"
            'client.create(SessionSpec(sid="s-0"))\n'
            "client.close()\n"
        )
        assert "PL018" not in codes(src)

    def test_close_in_finally_is_clean(self):
        src = PAPID_PRELUDE + (
            "client = PapidClient(server)\n"
            "try:\n"
            '    client.create(SessionSpec(sid="s-0"))\n'
            "finally:\n"
            "    client.close()\n"
        )
        assert "PL018" not in codes(src)

    def test_close_via_alias_is_clean(self):
        src = PAPID_PRELUDE + (
            "client = PapidClient(server)\n"
            "alias = client\n"
            "alias.close()\n"
        )
        assert "PL018" not in codes(src)

    def test_returned_client_escapes(self):
        src = PAPID_PRELUDE + (
            "def make_client():\n"
            "    return PapidClient(server)\n"
        )
        assert "PL018" not in codes(src)

    def test_attribute_stored_client_escapes(self):
        src = PAPID_PRELUDE + (
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self.client = PapidClient(server)\n"
        )
        assert "PL018" not in codes(src)

    def test_client_passed_to_callable_escapes(self):
        src = PAPID_PRELUDE + (
            "client = PapidClient(server)\n"
            "hand_off(client)\n"
        )
        assert "PL018" not in codes(src)

    def test_attribute_form_constructor_is_tracked(self):
        src = (
            "import repro.daemon as daemon\n"
            "client = daemon.PapidClient(object())\n"
        )
        assert "PL018" in codes(src)

    def test_one_diagnostic_per_leaked_client(self):
        src = PAPID_PRELUDE + (
            "a = PapidClient(server)\n"
            "b = PapidClient(server)\n"
            "b.close()\n"
        )
        diags = [d for d in lint(src) if d.code == "PL018"]
        assert len(diags) == 1

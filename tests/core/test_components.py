"""Component-layer error paths and lifecycle edges.

The PAPI-C component boundary adds its own failure surface on top of
the classic counter errors: unknown components must surface
``PAPI_ENOCMP``, a component that declares no multiplexing must reject
rotation in *both* orders (mux-then-add and add-then-mux), the
transient-fault retry ladder must leave component snapshots untouched
(they sit outside the gated substrate calls), and ``Papi.shutdown``
must stay idempotent with component counters live.
"""

import pytest

from repro.core import constants as C
from repro.core.errors import (
    ConflictError,
    InvalidArgumentError,
    NoSuchComponentError,
    NoSuchEventError,
    SubstrateFeatureError,
)
from repro.core.library import Papi
from repro.faults import attach_from_spec
from repro.platforms import create
from repro.workloads import dot

MIXED = ("PAPI_TOT_INS", "uncore:::MEM_BW_RD", "energy:::PKG_ENERGY")


def make(platform="simT3E"):
    sub = create(platform)
    papi = Papi(sub)
    return sub, papi


class TestNoSuchComponent:
    def test_unknown_component_name_is_enocmp(self):
        _sub, papi = make()
        with pytest.raises(NoSuchComponentError) as exc:
            papi.component("gpu")
        assert exc.value.code == C.PAPI_ENOCMP

    def test_unknown_component_id_is_enocmp(self):
        _sub, papi = make()
        with pytest.raises(NoSuchComponentError):
            papi.component_by_id(99)

    def test_event_in_unknown_namespace_is_enocmp(self):
        _sub, papi = make()
        es = papi.create_eventset()
        with pytest.raises(NoSuchComponentError):
            es.add_named("gpu:::SM_ACTIVE")

    def test_known_component_unknown_short_is_enoevnt(self):
        """The component exists, the event does not: that is ENOEVNT,
        not ENOCMP -- the two diagnostics must not blur."""
        _sub, papi = make()
        es = papi.create_eventset()
        with pytest.raises(NoSuchEventError):
            es.add_named("uncore:::NO_SUCH_COUNTER")

    def test_enocmp_code_round_trips_through_tables(self):
        assert C.ERROR_NAMES[C.PAPI_ENOCMP] == "PAPI_ENOCMP"
        err = NoSuchComponentError("x")
        assert err.code == C.PAPI_ENOCMP == -15


class TestComponentMultiplexPolicy:
    def test_set_multiplex_rejected_with_energy_member(self):
        _sub, papi = make()
        papi.component("energy")
        es = papi.create_eventset()
        es.add_named("energy:::PKG_ENERGY")
        with pytest.raises(SubstrateFeatureError, match="no multiplexing"):
            es.set_multiplex()

    def test_energy_member_rejected_into_multiplexed_set(self):
        _sub, papi = make()
        papi.component("energy")
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        es.set_multiplex()
        with pytest.raises(SubstrateFeatureError, match="no multiplexing"):
            es.add_named("energy:::CORE_ENERGY")

    def test_uncore_overfull_without_multiplex_is_conflict(self):
        """simT3E's uncore bank is four wide; a fifth member cannot
        exist, but four fit directly."""
        sub, papi = make()
        uncore = papi.component("uncore")
        es = papi.create_eventset()
        shorts = sorted(uncore.events)
        assert len(shorts) == uncore.n_counters == 4
        es.add_named(*(f"uncore:::{s}" for s in shorts))

    def test_uncore_overfull_on_narrow_bank_needs_multiplex(self):
        """simSPARC gives uncore only two counters: three members
        conflict directly but rotate fine once multiplexed."""
        sub, papi = make("simSPARC")
        uncore = papi.component("uncore")
        assert uncore.n_counters == 2
        names = [
            "uncore:::MEM_BW_RD",
            "uncore:::MEM_BW_WR",
            "uncore:::UNC_L2_LINES_IN",
        ]
        es = papi.create_eventset()
        es.add_named(*names[:2])
        with pytest.raises(ConflictError, match="2 counters"):
            es.add_named(names[2])
        mpx = papi.create_eventset()
        mpx.set_multiplex()
        mpx.add_named(*names)
        sub.machine.load(dot(2000, use_fma=sub.HAS_FMA).program)
        mpx.start()
        sub.machine.run_to_completion()
        values = mpx.stop()
        assert len(values) == 3

    def test_overflow_on_component_event_rejected(self):
        _sub, papi = make()
        papi.component("energy")
        es = papi.create_eventset()
        es.add_named("energy:::PKG_ENERGY")
        code = papi.event_name_to_code("energy:::PKG_ENERGY")
        with pytest.raises(InvalidArgumentError, match="free-running"):
            es.overflow(code, 1000, lambda info: None)


class TestTransientFaultsWithComponents:
    def run_one(self, spec):
        sub = create("simT3E")
        injector = attach_from_spec(sub, spec) if spec else None
        papi = Papi(sub)
        papi.component("uncore")
        papi.component("energy")
        es = papi.create_eventset()
        es.add_named(*MIXED)
        sub.machine.load(dot(6000, use_fma=sub.HAS_FMA).program)
        es.start()
        sub.machine.run_to_completion()
        values = dict(zip(es.event_names, es.stop()))
        health = es.health
        papi.shutdown()
        return values, health, injector

    def test_retry_ladder_leaves_component_snapshots_exact(self):
        """Transient ESYS faults hit the gated substrate calls and are
        absorbed by retries; component banks are free-running and read
        outside the gate, so neither CPU nor component values may move
        relative to a fault-free run."""
        clean, _health, _inj = self.run_one(None)
        for seed in range(1, 60):
            values, health, injector = self.run_one(f"{seed}:transient")
            summary = injector.summary()
            if summary:
                assert set(summary) == {"esys"}
                assert values == clean
                assert health.retries == summary["esys"]
                assert health.lost_intervals == []
                return
        pytest.fail("no transient fault in 60 seeds; rate is broken")


class TestShutdownWithComponents:
    def test_shutdown_idempotent_with_live_component_counters(self):
        sub, papi = make()
        papi.component("uncore")
        papi.component("energy")
        es = papi.create_eventset()
        es.add_named(*MIXED)
        sub.machine.load(dot(500, use_fma=sub.HAS_FMA).program)
        es.start()
        assert es._cmp_base            # bases snapped at start
        papi.shutdown()
        assert not papi.initialized
        assert papi._running_handle is None
        assert not papi._eventsets
        assert not es.running
        assert not es._cmp_base        # component bases dropped too
        papi.shutdown()                # nothing left; must not raise
        assert not papi.initialized

    def test_destroy_eventset_clears_component_state(self):
        sub, papi = make()
        papi.component("uncore")
        es = papi.create_eventset()
        es.add_named("uncore:::MEM_BW_RD")
        sub.machine.load(dot(500, use_fma=sub.HAS_FMA).program)
        es.start()
        sub.machine.run_to_completion()
        assert es.stop()[0] >= 0
        papi.destroy_eventset(es)
        assert es not in papi._eventsets

"""Differential gate: lint verdicts versus runtime behaviour.

Two directions, both required:

1. **Soundness on provable misuse** -- programs whose execution
   *provably* raises a lifecycle error (PAPI_ENOTRUN read-before-start,
   PAPI_EISRUN double-start, attach-while-running) must be flagged by a
   PL3xx/PL4xx flow rule.  Each scenario is executed for real and the
   runtime exception is asserted too, so the lint expectation can never
   drift away from what the runtime actually does.
2. **Precision on clean code** -- every shipped example must lint clean
   in flow mode (zero findings of any severity).
"""

import pathlib

import pytest

from repro.core.errors import IsRunningError, NotRunningError
from repro.lint import lint_file, lint_source

REPO = pathlib.Path(__file__).resolve().parents[2]

READ_BEFORE_START = """\
from repro import Papi, create
from repro.workloads.linalg import dot

substrate = create("simPOWER")
papi = Papi(substrate)
substrate.machine.load(dot(8).program)

def values_ready():
    return False

es = papi.create_eventset()
es.add_named("PAPI_TOT_INS")
if values_ready():
    es.start()
counts = es.read()
"""

DOUBLE_START = """\
from repro import Papi, create
from repro.workloads.linalg import dot

substrate = create("simPOWER")
papi = Papi(substrate)
substrate.machine.load(dot(8).program)

es = papi.create_eventset()
es.add_named("PAPI_TOT_INS")
for attempt in range(2):
    es.start()
"""

ATTACH_WHILE_RUNNING = """\
from repro import Papi, create
from repro.workloads.linalg import dot

substrate = create("simPOWER", ncpus=2)
papi = Papi(substrate)

def make_running_set():
    es = papi.create_eventset()
    es.add_named("PAPI_TOT_INS")
    es.start()
    return es

thread = substrate.os.spawn(dot(64).program)
es = make_running_set()
es.attach(thread)
"""

SCENARIOS = [
    pytest.param(
        READ_BEFORE_START, NotRunningError, "PL301",
        id="read-before-start",
    ),
    pytest.param(
        DOUBLE_START, IsRunningError, "PL302",
        id="double-start",
    ),
    pytest.param(
        ATTACH_WHILE_RUNNING, IsRunningError, "PL302",
        id="attach-while-running",
    ),
]


def _run(source):
    exec(compile(source, "<scenario>", "exec"), {"__name__": "__scn__"})


@pytest.mark.parametrize("source, error, code", SCENARIOS)
def test_runtime_raises_and_lint_flags(source, error, code):
    with pytest.raises(error):
        _run(source)
    codes = {
        d.code for d in lint_source(source, "scenario.py", flow=True)
    }
    assert code in codes, f"expected {code}, got {sorted(codes)}"


def _example_files():
    return sorted((REPO / "examples").glob("*.py"))


def test_examples_exist():
    assert _example_files(), "examples/ must not be empty"


@pytest.mark.parametrize(
    "path", _example_files(), ids=lambda p: p.name
)
def test_examples_lint_clean_in_flow_mode(path):
    diags = lint_file(str(path), flow=True)
    assert diags == [], [d.render() for d in diags]

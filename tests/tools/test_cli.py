"""Unit tests: the command-line utilities."""

import pytest

from repro.tools.cli import build_parser, main


class TestPlatforms:
    def test_lists_all(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        for name in ("simT3E", "simX86", "simPOWER", "simALPHA",
                     "simIA64", "simSPARC"):
            assert name in out


class TestAvail:
    def test_full_listing(self, capsys):
        assert main(["avail", "simPOWER"]) == 0
        out = capsys.readouterr().out
        assert "PAPI_FP_OPS" in out
        assert "derived" in out
        assert "presets available" in out

    def test_available_only_filters(self, capsys):
        main(["avail", "simT3E"])
        full = capsys.readouterr().out
        main(["avail", "simT3E", "--available-only"])
        filtered = capsys.readouterr().out
        assert len(filtered.splitlines()) < len(full.splitlines())
        assert " no " not in filtered

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["avail", "simVAX"])


class TestNativeAvail:
    def test_native_table(self, capsys):
        assert main(["native-avail", "simX86"]) == 0
        out = capsys.readouterr().out
        assert "FLOPS" in out
        assert "0" in out  # the counter-0 pinning is displayed

    def test_groups_shown_on_power(self, capsys):
        main(["native-avail", "simPOWER"])
        out = capsys.readouterr().out
        assert "counter groups" in out
        assert "group 0" in out


class TestPapirunCmd:
    def test_runs_kernel(self, capsys):
        assert main(["papirun", "simPOWER", "dot", "--n", "500"]) == 0
        out = capsys.readouterr().out
        assert "papirun" in out and "PAPI_TOT_CYC" in out

    def test_custom_events(self, capsys):
        assert main([
            "papirun", "simIA64", "triad", "--n", "300",
            "--events", "PAPI_FP_OPS,PAPI_LD_INS",
        ]) == 0
        out = capsys.readouterr().out
        assert "PAPI_LD_INS" in out

    def test_multiplex_flag(self, capsys):
        assert main(["papirun", "simX86", "dot", "--n", "4000",
                     "--multiplex"]) == 0
        out = capsys.readouterr().out
        assert "multiplexed" in out

    def test_unknown_workload_errors(self, capsys):
        assert main(["papirun", "simPOWER", "fibonacci"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestCalibrateCmd:
    def test_direct_platform_exact(self, capsys):
        assert main(["calibrate", "simT3E", "--n", "500"]) == 0
        out = capsys.readouterr().out
        assert "FP_OPS error %" in out
        assert "expected FLOPs" in out

    def test_sampling_platform_with_period(self, capsys):
        rc = main(["calibrate", "simALPHA", "--n", "40000",
                   "--sampling-period", "256"])
        assert rc == 0  # within the 25% health threshold
        assert "calibrate" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("platforms", "avail", "native-avail", "papirun",
                    "calibrate"):
            args = parser.parse_args(
                [cmd] + (["simT3E"] if cmd not in ("platforms",) else [])
                + (["dot"] if cmd == "papirun" else [])
            )
            assert args.command == cmd

"""The hardware-dependent half of counter allocation.

PAPI 3's plan (Section 5): "separate the counter allocation into
hardware-independent and hardware-dependent portions -- the
hardware-independent portion solving the graph matching problem and the
hardware-dependent [portion] translating the counter scheme on a
particular platform into the graph matching problem."

Two counter schemes exist among the simulated platforms:

- **constraint platforms** (simT3E, simX86, simIA64): each native event
  carries an allowed-counter set; translation is direct to a
  :class:`MappingProblem`;
- **group platforms** (simPOWER): events live in counter groups with
  fixed layouts and an EventSet must fit inside one group; translation
  enumerates groups and solves the (trivial) within-group problem,
  picking the group with maximum coverage.

Both translations expose the same entry points: :func:`allocate`
(optimal) and :func:`allocate_greedy` (the pre-2.3 first-fit behaviour,
kept as the E4 baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocation.graph import MappingProblem
from repro.core.allocation.greedy import first_fit
from repro.core.allocation.matching import (
    max_cardinality_matching,
    max_weight_matching,
)
from repro.platforms.base import NativeEvent, Substrate


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of an allocation attempt.

    ``assignment`` maps native event names to counter indices;
    ``group`` is the chosen counter group on group platforms;
    ``unplaced`` lists events that could not be mapped (empty iff
    ``complete``).
    """

    assignment: Dict[str, int]
    group: Optional[int]
    unplaced: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.unplaced

    @property
    def n_placed(self) -> int:
        return len(self.assignment)


def build_problem(
    substrate: Substrate,
    events: Sequence[NativeEvent],
    weights: Optional[Dict[str, float]] = None,
    banned: Sequence[int] = (),
) -> MappingProblem:
    """Translate a constraint platform's scheme into the bipartite model.

    *banned* counters (held by another user of the machine; see
    ``Substrate.unavailable_counters``) are removed from every event's
    allowed set, so recovery after counter loss allocates around them.
    """
    if banned:
        ban = set(banned)
        everything = tuple(
            c for c in range(substrate.n_counters) if c not in ban
        )
        allowed = {
            ev.name: (
                everything
                if ev.allowed_counters is None
                else tuple(c for c in ev.allowed_counters if c not in ban)
            )
            for ev in events
        }
    else:
        allowed = {ev.name: ev.allowed_counters for ev in events}
    return MappingProblem.build(
        [ev.name for ev in events],
        substrate.n_counters,
        allowed,
        weights,
    )


def _allocate_groups_optimal(
    substrate: Substrate, names: List[str], banned: Sequence[int] = ()
) -> AllocationResult:
    """Pick the group covering the most requested events (ties: lowest id)."""
    assert substrate.groups is not None
    ban = set(banned)
    best = None
    for group in substrate.groups:
        covered = [
            n for n in names
            if n in group.assignments and group.assignments[n] not in ban
        ]
        key = (len(covered), -group.gid)
        if best is None or key > best[0]:
            best = (key, group, covered)
    assert best is not None
    _, group, covered = best
    assignment = {n: group.assignments[n] for n in covered}
    unplaced = tuple(n for n in names if n not in assignment)
    return AllocationResult(assignment, group.gid, unplaced)


def _allocate_groups_greedy(
    substrate: Substrate, names: List[str]
) -> AllocationResult:
    """First-fit over groups: lock onto the first group that has the
    first event, then keep only events that happen to be in it.

    This reproduces the behaviour of early group-based substrates that
    chose a group when the first event was added and never reconsidered.
    """
    assert substrate.groups is not None
    if not names:
        return AllocationResult({}, None, ())
    chosen = None
    for group in substrate.groups:
        if names[0] in group.assignments:
            chosen = group
            break
    if chosen is None:
        return AllocationResult({}, None, tuple(names))
    assignment = {
        n: chosen.assignments[n] for n in names if n in chosen.assignments
    }
    unplaced = tuple(n for n in names if n not in assignment)
    return AllocationResult(assignment, chosen.gid, unplaced)


def allocate(
    substrate: Substrate,
    events: Sequence[NativeEvent],
    weights: Optional[Dict[str, float]] = None,
    banned: Sequence[int] = (),
) -> AllocationResult:
    """Optimal allocation (the PAPI 2.3 algorithm behind add_event).

    *banned* counter indices are excluded from consideration (used by
    the counter-loss recovery path to route around stolen counters).
    """
    names = [ev.name for ev in events]
    if len(set(names)) != len(names):
        raise ValueError("duplicate native events passed to the allocator")
    if substrate.uses_groups:
        return _allocate_groups_optimal(substrate, names, banned)
    problem = build_problem(substrate, events, weights, banned)
    if weights:
        assignment = max_weight_matching(problem)
    else:
        assignment = max_cardinality_matching(problem)
    unplaced = tuple(n for n in names if n not in assignment)
    return AllocationResult(assignment, None, unplaced)


def allocate_greedy(
    substrate: Substrate, events: Sequence[NativeEvent]
) -> AllocationResult:
    """First-fit allocation (the pre-2.3 baseline measured in E4)."""
    names = [ev.name for ev in events]
    if len(set(names)) != len(names):
        raise ValueError("duplicate native events passed to the allocator")
    if substrate.uses_groups:
        return _allocate_groups_greedy(substrate, names)
    problem = build_problem(substrate, events)
    assignment = first_fit(problem)
    unplaced = tuple(n for n in names if n not in assignment)
    return AllocationResult(assignment, None, unplaced)

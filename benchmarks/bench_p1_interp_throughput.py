"""P1: simulator throughput -- interpreter vs the trace execution engine.

Not a paper experiment: this guards the engine that makes the paper
experiments affordable.  Four workload shapes stress the engine paths:

- ``loop_heavy``  -- a steady counted loop, O(1) bulk replay;
- ``branchy``     -- data-dependent branches; compiled multi-block
  regions with deferred (vectorized) count accumulation;
- ``probed``      -- a dynaprof-style probe in a realistic instrumented
  loop body; the probe compiles into the region as a constant-cost
  prologue (pre-resolved handler + one specialization guard);
- ``call_heavy``  -- a CALL/RET loop; superblock traces stitch the call
  through the leaf and bulk-replay the whole cycle.

The headline metrics are *speedup ratios* (engine time vs interpreter
time on the same host), which are stable across machines; absolute
instructions/second are reported for context only.  Every run also
re-asserts bit-exactness across all three engine tiers (off / block /
trace).  The committed baseline in ``BENCH_p1_interp_throughput.json``
stores the expected ratios; ``--check`` fails when a ratio regresses by
more than 20%, ``--update-baseline`` rewrites it and appends a snapshot
to the ``trajectory`` history list.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _shared import emit, run_once
from repro.analysis import Table
from repro.hw import Assembler, Machine, MachineConfig

BASELINE_PATH = Path(__file__).parent / "BENCH_p1_interp_throughput.json"

#: a regression worse than this factor vs the baseline ratio fails --check.
REGRESSION_TOLERANCE = 0.20

#: baseline ratios below this are noise-dominated (the workload runs
#: mostly on the slow path, so engine and interpreter times are nearly
#: equal); they are reported and tracked but not regression-gated.
GATE_MIN_BASELINE = 1.5

#: floor asserted regardless of baseline: the whole point of the engine.
MIN_LOOP_HEAVY_SPEEDUP = 5.0


def loop_heavy(n=120_000):
    """Steady counted loop: invariant FP recomputation + affine counters.

    This is the replay-eligible shape (an accumulating ``f3 = f3*s + c``
    would rightly be rejected -- its value changes every iteration)."""
    asm = Assembler(name="loop_heavy")
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.fli("f1", 1.0001)
    asm.fli("f2", 0.75)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f1")
    asm.fmul("f4", "f1", "f2")
    asm.addi("r4", "r4", 3)
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


def branchy(n=40_000):
    """Alternates branch direction on a data-dependent parity test."""
    asm = Assembler(name="branchy")
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.li("r5", 2)
    asm.label("loop")
    asm.div("r3", "r1", "r5")
    asm.muli("r4", "r3", 2)
    asm.sub("r6", "r1", "r4")
    asm.beq("r6", "r0", "even")
    asm.addi("r7", "r7", 1)
    asm.jmp("join")
    asm.label("even")
    asm.addi("r8", "r8", 1)
    asm.label("join")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


def probed(n=30_000):
    """A dynaprof-style probe heading a realistic instrumented block.

    The body mirrors what dynaprof actually instruments -- a working
    basic block of ALU/FP code -- rather than an empty counting loop.
    Each probe dispatch has an irreducible semantic cost (the handler
    must observe exact counts and pc), so the achievable speedup scales
    with the amount of real work amortizing that constant: an empty
    loop measures the dispatch floor, not the engine.
    """
    asm = Assembler(name="probed")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.fli("f1", 1.0001)
    asm.fli("f2", 0.75)
    asm.label("loop")
    asm.probe(1)
    asm.fma("f3", "f1", "f2", "f1")
    asm.fmul("f4", "f1", "f2")
    asm.fadd("f5", "f3", "f4")
    asm.fsub("f6", "f3", "f4")
    asm.fadd("f7", "f5", "f6")
    asm.fmul("f8", "f5", "f2")
    asm.addi("r4", "r4", 7)
    asm.muli("r5", "r1", 3)
    asm.sub("r6", "r4", "r1")
    asm.add("r7", "r4", "r6")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    return asm.build()


def call_heavy(n=40_000):
    """A hot loop whose body is a CALL to a small leaf function.

    The trace tier's region compiler inlines the CALL, the leaf body
    and the matched RET into one compiled dispatch loop (a handful of
    ns per transfer); the block tier stops at every control transfer
    and the interpreter additionally simulates the call stack per step.
    """
    asm = Assembler(name="call_heavy")
    asm.func("main")
    asm.li("r1", 0)
    asm.li("r2", n)
    asm.fli("f1", 1.0001)
    asm.fli("f2", 0.75)
    asm.label("loop")
    asm.call("leaf")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    asm.endfunc()
    asm.func("leaf")
    asm.fma("f3", "f1", "f2", "f1")
    asm.addi("r4", "r4", 3)
    asm.ret()
    asm.endfunc()
    return asm.build()


WORKLOADS = [("loop_heavy", loop_heavy), ("branchy", branchy),
             ("probed", probed), ("call_heavy", call_heavy)]


#: best-of-N timing: each path is run this many times and the fastest
#: run is kept.  The speedup is a *ratio* of two wall-clock times, so
#: host noise (frequency scaling, competing load) on either side skews
#: it; minima are far more stable than single samples.
TIMING_REPEATS = 3


def _time_run(prog, engine: str):
    best = None
    for _ in range(TIMING_REPEATS):
        m = Machine(MachineConfig(engine=engine))
        m.load(prog)
        if prog.name == "probed":
            m.register_probe(1, lambda pid, cpu: None)
        t0 = time.perf_counter()
        result = m.run_to_completion()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best, result.instructions, list(m.counts)


def run_experiment():
    rows = []
    for name, build in WORKLOADS:
        prog = build()
        t_interp, n_interp, c_interp = _time_run(prog, engine="off")
        _t_blk, n_blk, c_blk = _time_run(prog, engine="block")
        t_engine, n_engine, c_engine = _time_run(prog, engine="trace")
        assert n_interp == n_blk and c_interp == c_blk, name
        assert n_interp == n_engine and c_interp == c_engine, name
        rows.append({
            "workload": name,
            "instructions": n_interp,
            "interp_seconds": t_interp,
            "engine_seconds": t_engine,
            "interp_ips": n_interp / t_interp,
            "engine_ips": n_engine / t_engine,
            "speedup": t_interp / t_engine,
        })
    return rows


def render(rows) -> str:
    table = Table(
        ["workload", "instructions", "interp ins/s", "engine ins/s",
         "speedup"],
        title="P1: interpreter vs block-engine throughput (bit-exact paths)",
    )
    for r in rows:
        table.add_row(
            r["workload"], r["instructions"],
            f"{r['interp_ips']:,.0f}", f"{r['engine_ips']:,.0f}",
            f"{r['speedup']:.1f}x",
        )
    return table.render()


def load_baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def check_against_baseline(rows, baseline) -> list:
    """Regression messages ([] = pass): ratio drops >20% vs baseline."""
    problems = []
    expected = baseline["speedups"]
    for r in rows:
        name = r["workload"]
        if name not in expected or expected[name] < GATE_MIN_BASELINE:
            continue
        floor = expected[name] * (1.0 - REGRESSION_TOLERANCE)
        if r["speedup"] < floor:
            problems.append(
                f"{name}: speedup {r['speedup']:.1f}x below "
                f"{floor:.1f}x (baseline {expected[name]:.1f}x - 20%)"
            )
    return problems


def update_baseline(rows) -> None:
    """Rewrite the expected ratios; history accumulates in trajectory.

    ``setdefault`` keeps this append-only even against hand-edited or
    pre-trajectory baseline files -- updating must never lose history.
    """
    baseline = load_baseline() or {}
    baseline["speedups"] = {r["workload"]: round(r["speedup"], 1)
                            for r in rows}
    baseline.setdefault("trajectory", []).append({
        r["workload"]: round(r["speedup"], 1) for r in rows
    })
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")


def bench_p1_interp_throughput(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)
    emit(capsys, render(rows))
    by_name = {r["workload"]: r for r in rows}
    # the tentpole acceptance: >= 5x on the loop-heavy workload
    assert by_name["loop_heavy"]["speedup"] >= MIN_LOOP_HEAVY_SPEEDUP
    # compiled blocks beat the interpreter even without replay
    assert by_name["branchy"]["speedup"] > 1.0
    baseline = load_baseline()
    if baseline is not None:
        problems = check_against_baseline(rows, baseline)
        assert not problems, problems


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail on >20%% speedup regression vs baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline ratios")
    parser.add_argument("--json-out", metavar="PATH",
                        help="also dump this run's measurements (rows + "
                             "committed baseline) as JSON, e.g. for a CI "
                             "artifact")
    args = parser.parse_args(argv)

    rows = run_experiment()
    print(render(rows))
    if args.json_out:
        Path(args.json_out).write_text(json.dumps({
            "rows": rows,
            "baseline": load_baseline(),
        }, indent=2) + "\n")
    by_name = {r["workload"]: r for r in rows}
    if by_name["loop_heavy"]["speedup"] < MIN_LOOP_HEAVY_SPEEDUP:
        print(f"FAIL: loop_heavy speedup "
              f"{by_name['loop_heavy']['speedup']:.1f}x < "
              f"{MIN_LOOP_HEAVY_SPEEDUP:.0f}x floor")
        return 1
    if args.update_baseline:
        update_baseline(rows)
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if args.check:
        baseline = load_baseline()
        if baseline is None:
            print(f"no baseline at {BASELINE_PATH}; "
                  f"run with --update-baseline first")
            return 1
        problems = check_against_baseline(rows, baseline)
        for p in problems:
            print("FAIL:", p)
        if problems:
            return 1
        print("ok: all speedups within 20% of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

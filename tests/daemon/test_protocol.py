"""Unit tests: papid wire protocol (specs, ops, results, status codes)."""

import pytest

from repro.core.errors import NotRunningError, PapiError, SystemError_
from repro.daemon import (
    PAPID_EAGAIN,
    PAPID_EDRAIN,
    PAPID_ESHED,
    PAPID_OK,
    OpResult,
    SessionSpec,
    raise_for_result,
    shard_of,
)
from repro.daemon.protocol import Op, op_from_wire


class TestSessionSpec:
    def test_wire_round_trip(self):
        spec = SessionSpec(sid="s-1", platform="simMIPS", seed=7,
                           events=("PAPI_TOT_INS",), priority=2)
        assert SessionSpec.from_wire(spec.to_wire()) == spec

    def test_defaults_are_complete(self):
        spec = SessionSpec(sid="s-1")
        assert spec.platform == "simX86"
        assert spec.events
        assert spec.workload == "axpy"

    def test_empty_sid_rejected(self):
        with pytest.raises(ValueError):
            SessionSpec(sid="")

    def test_events_coerced_to_tuple(self):
        spec = SessionSpec(sid="s-1", events=["PAPI_TOT_CYC"])
        assert spec.events == ("PAPI_TOT_CYC",)


class TestShardOf:
    def test_stable_and_in_range(self):
        for nshards in (1, 2, 4, 7):
            for i in range(50):
                sid = f"sess-{i}"
                assert 0 <= shard_of(sid, nshards) < nshards
                assert shard_of(sid, nshards) == shard_of(sid, nshards)

    def test_spreads_sessions(self):
        assigned = {shard_of(f"sess-{i}", 4) for i in range(64)}
        assert assigned == {0, 1, 2, 3}


class TestOpResult:
    def test_wire_round_trip(self):
        res = OpResult(sid="s-1", kind="read", status=PAPID_OK, seq=3,
                       values={"PAPI_TOT_INS": 10}, cycle=20, advanced=5)
        back = OpResult.from_wire(res.to_wire())
        assert back.values == {"PAPI_TOT_INS": 10}
        assert back.ok and not back.transient

    def test_transient_statuses(self):
        for status in (PAPID_EAGAIN, PAPID_ESHED):
            res = OpResult(sid="s", kind="read", status=status)
            assert res.transient and not res.ok

    def test_op_wire_round_trip(self):
        spec = SessionSpec(sid="s-1")
        op = Op(kind="create", sid="s-1", spec=spec, priority=1)
        back = op_from_wire(op.to_wire())
        assert back.spec == spec
        assert back.kind == "create"


class TestRaiseForResult:
    def test_ok_passes(self):
        raise_for_result(OpResult(sid="s", kind="read", status=PAPID_OK))

    def test_transient_raises_system_error(self):
        with pytest.raises(SystemError_):
            raise_for_result(
                OpResult(sid="s", kind="read", status=PAPID_EAGAIN)
            )

    def test_drain_raises_not_running(self):
        with pytest.raises(NotRunningError):
            raise_for_result(
                OpResult(sid="s", kind="read", status=PAPID_EDRAIN)
            )

    def test_fatal_maps_error_code(self):
        from repro.core import constants as C

        res = OpResult(sid="s", kind="read", status=-103,
                       err_code=C.PAPI_ENOEVNT, err="no such event")
        with pytest.raises(PapiError) as exc_info:
            raise_for_result(res)
        assert exc_info.value.code == C.PAPI_ENOEVNT

"""The energy component: RAPL-like package/core energy counters.

Models the running-energy MSRs of a RAPL domain: free-running totals
derived from per-CPU cycle and instruction activity plus memory traffic,
summed over the socket.  Like real RAPL, the plane has one MSR per
domain -- they cannot be time-sliced, so the component declares
``SUPPORTS_MULTIPLEX = False`` and ``EventSet.set_multiplex`` rejects
any set containing energy events.

The energy model is a fixed affine function of architecturally
determined signals (the validate oracle re-derives it independently):

- ``CORE_ENERGY`` = 3 x cycles + 2 x instructions  (leakage+switching);
- ``DRAM_ENERGY`` = 5 x L2 line fills              (per-line transfer);
- ``PKG_ENERGY``  = CORE_ENERGY + DRAM_ENERGY.

Units are model "energy units"; only ratios and conservation matter.
"""

from __future__ import annotations

from repro.components.base import Component, ComponentEvent

#: model coefficients (energy units per activity unit).
CYCLE_ENERGY = 3
INSTRUCTION_ENERGY = 2
DRAM_LINE_ENERGY = 5

ENERGY_EVENTS = {
    "PKG_ENERGY": ComponentEvent(
        "PKG_ENERGY", "whole-package energy (core + DRAM domains)",
        units="energy units"),
    "CORE_ENERGY": ComponentEvent(
        "CORE_ENERGY", "core-domain energy (cycle and instruction activity)",
        units="energy units"),
    "DRAM_ENERGY": ComponentEvent(
        "DRAM_ENERGY", "DRAM-domain energy (memory line transfers)",
        units="energy units"),
}


class EnergyComponent(Component):
    """RAPL-like socket energy counters derived from CPU activity."""

    NAME = "energy"
    DESCRIPTION = "RAPL-like package/core/DRAM energy counters"
    #: one MSR per domain; rotation is meaningless for running energy.
    SUPPORTS_MULTIPLEX = False
    EVENTS = ENERGY_EVENTS

    def __init__(self, machine) -> None:
        # every domain has its own MSR, so the full namespace always fits.
        super().__init__(n_counters=len(ENERGY_EVENTS))
        self._machine = machine

    def _core_energy(self, activity) -> int:
        return (CYCLE_ENERGY * activity["cycles"]
                + INSTRUCTION_ENERGY * activity["instructions"])

    def _dram_energy(self, activity) -> int:
        return DRAM_LINE_ENERGY * activity["l2_lines_in"]

    def raw_value(self, short: str) -> int:
        self.query(short)
        activity = self._machine.socket_activity()
        if short == "CORE_ENERGY":
            return self._core_energy(activity)
        if short == "DRAM_ENERGY":
            return self._dram_energy(activity)
        return self._core_energy(activity) + self._dram_energy(activity)

"""Predictive performance models parameterized from PAPI data.

Section 5: "we plan to collaborate with performance modeling projects
such as that described in [Snavely et al., SC 2002] in using PAPI to
collect data for parameterizing predictive performance models."

This module is that collaboration in miniature: collect per-workload
counter vectors through the portable PAPI interface, fit a linear
cycles model

    cycles  ~=  sum_m  coef_m * count_m

by least squares, and predict the runtime of unseen workloads from their
counter signatures alone.  On the simulated machines the true cost
function *is* linear in instruction/miss/mispredict counts, so a
well-chosen feature set recovers the machine's latency parameters --
which makes the model a sharp end-to-end test of counter fidelity, too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.library import Papi
from repro.platforms import create
from repro.workloads.builder import Workload

#: feature set available on every direct-counting platform.
DEFAULT_FEATURES = [
    "PAPI_TOT_INS",
    "PAPI_FP_OPS",
    "PAPI_L1_DCM",
    "PAPI_L2_TCM",
    "PAPI_BR_MSP",
]


def collect_counters(
    platform_name: str,
    workload_factory: Callable[[], Workload],
    metrics: Sequence[str],
    seed: int = 12345,
) -> Tuple[Dict[str, int], int]:
    """Measure *metrics* plus cycles for one workload.

    One deterministic run per metric (plus one for cycles), so arbitrary
    metric sets work on any platform regardless of counter limits --
    the same repeated-identical-runs trick TAU-style tools use.
    """
    values: Dict[str, int] = {}
    for metric in list(metrics) + ["PAPI_TOT_CYC"]:
        substrate = create(platform_name, seed=seed)
        papi = Papi(substrate)
        es = papi.create_eventset()
        es.add_event(papi.event_name_to_code(metric))
        substrate.machine.load(workload_factory().program)
        es.start()
        substrate.machine.run_to_completion()
        values[metric] = es.stop()[0]
    cycles = values.pop("PAPI_TOT_CYC")
    return values, cycles


@dataclass
class PerformanceModel:
    """A fitted linear cycles model."""

    platform: str
    features: List[str]
    coefficients: Dict[str, float]
    r_squared: float
    n_observations: int

    def predict(self, counters: Dict[str, int]) -> float:
        """Predicted cycles for a workload with the given counter vector."""
        missing = [f for f in self.features if f not in counters]
        if missing:
            raise ValueError(f"counter vector is missing {missing}")
        return sum(self.coefficients[f] * counters[f] for f in self.features)

    def relative_error(self, counters: Dict[str, int], cycles: int) -> float:
        if cycles <= 0:
            raise ValueError("true cycles must be positive")
        return abs(self.predict(counters) - cycles) / cycles

    def describe(self) -> str:
        terms = " + ".join(
            f"{self.coefficients[f]:.3g}*{f.replace('PAPI_', '')}"
            for f in self.features
        )
        return (
            f"cycles[{self.platform}] ~= {terms}   "
            f"(R^2={self.r_squared:.4f}, n={self.n_observations})"
        )


def fit_model(
    platform: str,
    observations: Sequence[Tuple[Dict[str, int], int]],
    features: Optional[Sequence[str]] = None,
) -> PerformanceModel:
    """Least-squares fit of cycles on counter features.

    *observations* are (counter vector, measured cycles) pairs, e.g.
    from :func:`collect_counters` over a training workload suite.
    """
    feats = list(features or DEFAULT_FEATURES)
    if len(observations) < len(feats):
        raise ValueError(
            f"need at least {len(feats)} observations to fit "
            f"{len(feats)} coefficients, got {len(observations)}"
        )
    X = np.array(
        [[obs[f] for f in feats] for obs, _cyc in observations], dtype=float
    )
    y = np.array([cyc for _obs, cyc in observations], dtype=float)
    coef, _residuals, _rank, _sv = np.linalg.lstsq(X, y, rcond=None)
    predictions = X @ coef
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PerformanceModel(
        platform=platform,
        features=feats,
        coefficients=dict(zip(feats, map(float, coef))),
        r_squared=r2,
        n_observations=len(observations),
    )


def standard_training_suite() -> List[Tuple[str, Callable[..., Workload]]]:
    """A diverse workload suite for model fitting.

    Mixes compute-bound, bandwidth-bound, latency-bound and
    branch-bound kernels so the design matrix spans the feature space.
    """
    from repro.workloads import (
        axpy,
        dot,
        matmul,
        pointer_chase,
        random_branches,
        strided_scan,
        triad,
        working_set_sweep,
    )

    return [
        ("dot-small", lambda fma: dot(600, use_fma=fma)),
        ("dot-large", lambda fma: dot(4000, use_fma=fma)),
        ("axpy", lambda fma: axpy(2500, use_fma=fma)),
        ("triad", lambda fma: triad(2500, use_fma=fma)),
        ("matmul", lambda fma: matmul(14, use_fma=fma)),
        ("chase", lambda fma: pointer_chase(4096, steps=3000)),
        ("scan-unit", lambda fma: strided_scan(6000, 1, passes=2)),
        ("scan-stride", lambda fma: strided_scan(6000, 8, passes=2)),
        ("sweep", lambda fma: working_set_sweep(3000, passes=3)),
        ("branches", lambda fma: random_branches(4000)),
    ]


def fit_platform_model(
    platform: str,
    features: Optional[Sequence[str]] = None,
) -> Tuple[PerformanceModel, List[Tuple[str, Dict[str, int], int]]]:
    """Fit the standard suite on *platform*; returns (model, raw data)."""
    feats = list(features or DEFAULT_FEATURES)
    substrate = create(platform)
    fma = substrate.HAS_FMA
    data: List[Tuple[str, Dict[str, int], int]] = []
    for name, factory in standard_training_suite():
        counters, cycles = collect_counters(
            platform, lambda f=factory: f(fma), feats
        )
        data.append((name, counters, cycles))
    model = fit_model(
        platform, [(c, cyc) for _n, c, cyc in data], features=feats
    )
    return model, data

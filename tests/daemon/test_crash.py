"""Unit tests: the deterministic saboteur (test-only worker crasher)."""

from repro.daemon.crash import CrashPlan, WorkerCrashed
from repro.faults.plan import PROFILES


def plan(seed=42, crash_ops=40, wedge_frac=0.25):
    return CrashPlan(seed=seed, crash_ops=crash_ops, wedge_frac=wedge_frac)


class TestCrashPlan:
    def test_from_spec_uses_profile_knobs(self):
        cp = CrashPlan.from_spec("42:daemon-chaos")
        profile = PROFILES["daemon-chaos"]
        assert cp is not None
        assert cp.crash_ops == profile.worker_crash_ops
        assert cp.wedge_frac == profile.worker_wedge_frac

    def test_from_spec_none_without_crash_knob(self):
        assert CrashPlan.from_spec(None) is None
        assert CrashPlan.from_spec("42:transient") is None

    def test_wire_round_trip(self):
        cp = plan()
        assert CrashPlan.from_wire(cp.to_wire()) == cp
        assert CrashPlan.from_wire(None) is None

    def test_draw_is_deterministic_per_worker(self):
        cp = plan()
        assert cp.draw(worker_id=0, generation=0) == cp.draw(
            worker_id=0, generation=0
        )

    def test_workers_draw_independent_fates(self):
        cp = plan()
        fates = {cp.draw(w, 0) for w in range(8)}
        assert len(fates) > 1

    def test_countdown_bounds(self):
        cp = plan(crash_ops=40)
        for w in range(16):
            _mode, countdown = cp.draw(w, 0)
            assert 20 <= countdown <= 60

    def test_generation_one_is_immortal(self):
        cp = plan()
        assert cp.draw(worker_id=0, generation=1) is None
        assert cp.draw(worker_id=3, generation=2) is None

    def test_inline_saboteur_raises_once(self):
        cp = plan(seed=1, crash_ops=3, wedge_frac=0.0)
        saboteur = cp.saboteur(worker_id=0, generation=0, inline=True)
        fired = 0
        for _ in range(20):
            try:
                saboteur.tick()
            except WorkerCrashed as exc:
                assert exc.mode == "die"
                fired += 1
        assert fired == 1

    def test_wedge_frac_one_always_wedges(self):
        cp = plan(wedge_frac=1.0)
        for w in range(8):
            mode, _countdown = cp.draw(w, 0)
            assert mode == "wedge"

"""The round-robin scheduler: threads, time slices, counter virtualization.

This is the piece that makes PAPI's "per-thread counts" story work (the
paper's Tru64 discussion: the original aggregate interface could not do
per-thread counting; DADD added it).  Counters bound to a thread run
physically only while that thread occupies the CPU; the scheduler
pauses/resumes them around every context switch, and charges a context
switch cost to the machine's system clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hw.cpu import RunResult
from repro.hw.isa import Program
from repro.hw.machine import Machine
from repro.simos.signals import SignalRouter
from repro.simos.thread import Thread, ThreadState
from repro.simos.vmem import MemoryAccounting, MemoryInfo


class OSError_(Exception):
    """Raised for scheduler misuse (OS-level errors)."""


@dataclass
class SchedulerStats:
    context_switches: int = 0
    slices: int = 0
    idle_dispatches: int = 0
    #: instructions retired through the CPU's block engine across all
    #: slices (0 when the engine is disabled); replayed_instructions is
    #: the subset applied as bulk steady-loop replay.
    engine_instructions: int = 0
    engine_replayed: int = 0


class OS:
    """Multiplexes threads onto one :class:`Machine`.

    Typical use::

        os_ = OS(machine, quantum_cycles=20_000)
        t1 = os_.spawn(program_a)
        t2 = os_.spawn(program_b)
        os_.run()          # until every thread halts
    """

    def __init__(
        self,
        machine: Machine,
        quantum_cycles: int = 20_000,
        ctx_switch_cost: int = 400,
        phys_pages: int = 4096,
    ) -> None:
        if quantum_cycles < 1:
            raise OSError_("quantum must be at least one cycle")
        if ctx_switch_cost < 0:
            raise OSError_("context switch cost cannot be negative")
        self.machine = machine
        self.quantum_cycles = quantum_cycles
        self.ctx_switch_cost = ctx_switch_cost
        self.threads: List[Thread] = []
        self.signals = SignalRouter()
        self.vmem = MemoryAccounting(
            page_bytes=machine.hierarchy.config.tlb.page_bytes,
            total_pages=phys_pages,
        )
        self.stats = SchedulerStats()
        self._next_tid = 1
        self._current: Optional[Thread] = None
        self._rr_index = 0

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------

    def spawn(
        self, program: Program, name: Optional[str] = None, heap_words: int = 0
    ) -> Thread:
        thread = Thread.create(self._next_tid, program, name=name, heap_words=heap_words)
        self._next_tid += 1
        self.threads.append(thread)
        return thread

    @property
    def current(self) -> Optional[Thread]:
        return self._current

    def thread_by_tid(self, tid: int) -> Thread:
        for t in self.threads:
            if t.tid == tid:
                return t
        raise OSError_(f"no thread with tid {tid}")

    def ready_threads(self) -> List[Thread]:
        return [t for t in self.threads if t.state is ThreadState.READY]

    def all_finished(self) -> bool:
        return all(t.finished for t in self.threads)

    # ------------------------------------------------------------------
    # counter virtualization (used by the PAPI attach path)
    # ------------------------------------------------------------------

    def bind_counter(self, thread: Thread, index: int) -> None:
        """Virtualize PMU counter *index* to *thread* (stopped initially)."""
        for t in self.threads:
            if index in t.bound_counters and t is not thread:
                raise OSError_(
                    f"counter {index} is already bound to thread {t.tid}"
                )
        thread.bind_counter(index)

    def unbind_counter(self, thread: Thread, index: int) -> None:
        if thread.bound_counters.get(index) and thread.state is ThreadState.RUNNING:
            self.machine.pmu.stop(index)
        thread.unbind_counter(index)

    def counter_start(self, thread: Thread, index: int) -> None:
        """Logically start a bound counter; physical start if on CPU."""
        if index not in thread.bound_counters:
            raise OSError_(f"counter {index} is not bound to thread {thread.tid}")
        if thread.bound_counters[index]:
            raise OSError_(f"counter {index} is already started")
        thread.bound_counters[index] = True
        if thread.state is ThreadState.RUNNING:
            self.machine.pmu.start(index)

    def counter_stop(self, thread: Thread, index: int) -> int:
        if not thread.bound_counters.get(index, False):
            raise OSError_(f"counter {index} is not running for thread {thread.tid}")
        thread.bound_counters[index] = False
        if thread.state is ThreadState.RUNNING:
            return self.machine.pmu.stop(index)
        return self.machine.pmu.read(index)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _dispatch(self, thread: Thread) -> None:
        self.machine.cpu.restore_context(thread.context)
        self.signals.current_tid = thread.tid
        thread.state = ThreadState.RUNNING
        thread.dispatches += 1
        pmu = self.machine.pmu
        for index, running in thread.bound_counters.items():
            if running and not pmu.running(index):
                pmu.start(index)

    def _deschedule(self, thread: Thread, result: RunResult) -> None:
        pmu = self.machine.pmu
        for index, running in thread.bound_counters.items():
            if running and pmu.running(index):
                pmu.stop(index)
        thread.context = self.machine.cpu.save_context()
        thread.user_cycles += result.cycles
        thread.state = (
            ThreadState.FINISHED if result.halted else ThreadState.READY
        )
        self.signals.current_tid = None
        self._current = None

    def run_slice(self, thread: Thread, max_cycles: Optional[int] = None) -> RunResult:
        """Run one time slice of *thread* and context-switch away again."""
        if thread.state is not ThreadState.READY:
            raise OSError_(f"thread {thread.tid} is not ready ({thread.state.value})")
        self._current = thread
        self._dispatch(thread)
        est = self.machine.engine_stats()
        fast0 = est.fast_instructions if est is not None else 0
        replay0 = est.replayed_instructions if est is not None else 0
        result = self.machine.run(
            max_cycles=max_cycles if max_cycles is not None else self.quantum_cycles
        )
        if est is not None:
            self.stats.engine_instructions += est.fast_instructions - fast0
            self.stats.engine_replayed += est.replayed_instructions - replay0
        self._deschedule(thread, result)
        self.machine.charge(self.ctx_switch_cost)
        self.stats.context_switches += 1
        self.stats.slices += 1
        self.vmem.update(self.threads)
        return result

    def run(
        self,
        max_total_cycles: Optional[int] = None,
        max_slices: Optional[int] = None,
    ) -> SchedulerStats:
        """Round-robin all ready threads until everything halts (or budget)."""
        start_cycles = self.machine.real_cycles
        slices = 0
        while True:
            ready = self.ready_threads()
            if not ready:
                break
            if max_slices is not None and slices >= max_slices:
                break
            if (
                max_total_cycles is not None
                and self.machine.real_cycles - start_cycles >= max_total_cycles
            ):
                break
            thread = ready[self._rr_index % len(ready)]
            self._rr_index += 1
            self.run_slice(thread)
            slices += 1
        return self.stats

    # ------------------------------------------------------------------
    # time & memory services
    # ------------------------------------------------------------------

    def real_cycles(self) -> int:
        return self.machine.real_cycles

    def virt_cycles(self, thread: Thread) -> int:
        """Thread-virtual cycles, including the live slice if running."""
        if thread.state is ThreadState.RUNNING:
            # context was saved at dispatch time; add the live delta
            return thread.user_cycles  # updated at deschedule; see note
        return thread.user_cycles

    def memory_info(self, thread: Thread) -> MemoryInfo:
        return self.vmem.info(thread, self.threads)

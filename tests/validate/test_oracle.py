"""Unit tests for the validate harness's ground-truth oracle."""

import pytest

from repro.hw import Assembler
from repro.hw.events import Signal
from repro.platforms import create
from repro.validate import (
    ORACLE_SIGNALS,
    OracleError,
    expected_preset_values,
    expected_signal_counts,
)
from repro.workloads import conformance_mix, decoy_spin, skid_probe


def _signals(substrate):
    return {n: ev.signals for n, ev in substrate.native_events.items()}


class TestInterpreter:
    def test_straight_line_counts(self):
        asm = Assembler()
        base = asm.init_array([3, 4])
        asm.func("main")
        asm.li("r1", base)
        asm.load("r2", "r1", 0)
        asm.load("r3", "r1", 1)
        asm.add("r4", "r2", "r3")
        asm.store("r4", "r1", 0)
        asm.fli("f1", 2.0)
        asm.fmul("f2", "f1", "f1")
        asm.fadd("f3", "f2", "f1")
        asm.halt()
        asm.endfunc()
        counts = expected_signal_counts(asm.build())
        assert counts[Signal.TOT_INS] == 9
        assert counts[Signal.LD_INS] == 2
        assert counts[Signal.SR_INS] == 1
        assert counts[Signal.INT_INS] == 2     # li + add
        assert counts[Signal.FP_MUL] == 1
        assert counts[Signal.FP_ADD] == 1
        assert counts[Signal.FP_MOV] == 1      # fli
        assert counts[Signal.BR_INS] == 0

    def test_branch_outcomes_computed(self):
        # loop of 5: blt taken 4 times, not taken once
        asm = Assembler()
        asm.func("main")
        asm.li("r1", 0)
        asm.li("r2", 5)
        asm.label("loop")
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", "loop")
        asm.halt()
        asm.endfunc()
        counts = expected_signal_counts(asm.build())
        assert counts[Signal.BR_INS] == 5
        assert counts[Signal.BR_CN] == 5
        assert counts[Signal.BR_TKN] == 4
        assert counts[Signal.BR_NTK] == 1

    def test_call_ret_accounting(self):
        work = conformance_mix(13)
        counts = expected_signal_counts(work.program)
        assert counts[Signal.CALL_INS] == 13
        assert counts[Signal.RET_INS] == 13
        assert counts[Signal.PRB_INS] == 13
        assert counts[Signal.SYS_INS] == 13

    def test_matches_hand_written_expectations(self):
        for use_fma in (True, False):
            work = conformance_mix(21, use_fma=use_fma)
            counts = expected_signal_counts(work.program)
            exp = work.expect
            fp_ins = (counts[Signal.FP_ADD] + counts[Signal.FP_MUL]
                      + counts[Signal.FP_DIV] + counts[Signal.FP_SQRT]
                      + counts[Signal.FP_FMA])
            assert fp_ins == exp.fp_ins
            assert counts[Signal.FP_FMA] == exp.fma
            assert counts[Signal.FP_CVT] == exp.converts
            assert counts[Signal.LD_INS] == exp.loads
            assert counts[Signal.SR_INS] == exp.stores

    def test_skid_probe_fp_isolated(self):
        work = skid_probe(9)
        counts = expected_signal_counts(work.program)
        assert counts[Signal.FP_FMA] == 9
        assert counts[Signal.LD_INS] == 0
        from repro.hw.isa import Op
        block = work.program.functions["fp_block"]
        fp_arith = [pc for pc, ins in enumerate(work.program.instructions)
                    if ins.op in (Op.FMA, Op.FADD, Op.FMUL, Op.FSUB)]
        # every fp arithmetic instruction lives inside fp_block
        assert fp_arith and all(pc in block for pc in fp_arith)

    def test_decoy_is_fp_free(self):
        counts = expected_signal_counts(decoy_spin(50).program)
        for sig in (Signal.FP_ADD, Signal.FP_MUL, Signal.FP_FMA,
                    Signal.LD_INS, Signal.SR_INS):
            assert counts[sig] == 0


class TestFaultPaths:
    def _run(self, build):
        asm = Assembler()
        asm.func("main")
        build(asm)
        asm.halt()
        asm.endfunc()
        return expected_signal_counts(asm.build())

    def test_integer_divide_by_zero(self):
        with pytest.raises(OracleError, match="divide by zero"):
            self._run(lambda a: (a.li("r1", 4), a.li("r2", 0),
                                 a.div("r3", "r1", "r2")))

    def test_float_divide_by_zero(self):
        with pytest.raises(OracleError, match="divide by zero"):
            self._run(lambda a: (a.fli("f1", 1.0), a.fli("f2", 0.0),
                                 a.fdiv("f3", "f1", "f2")))

    def test_sqrt_of_negative(self):
        with pytest.raises(OracleError, match="sqrt of negative"):
            self._run(lambda a: (a.fli("f1", -1.0), a.fsqrt("f2", "f1")))

    def test_ret_with_empty_stack(self):
        with pytest.raises(OracleError, match="empty call stack"):
            self._run(lambda a: a.ret())

    def test_load_out_of_range(self):
        with pytest.raises(OracleError, match="load address"):
            self._run(lambda a: (a.li("r1", 10_000), a.load("r2", "r1", 0)))

    def test_store_out_of_range(self):
        with pytest.raises(OracleError, match="store address"):
            self._run(lambda a: (a.li("r1", -3), a.store("r1", "r1", 0)))

    def test_runaway_budget(self):
        asm = Assembler()
        asm.func("main")
        asm.label("spin")
        asm.jmp("spin")
        asm.halt()
        asm.endfunc()
        with pytest.raises(OracleError, match="oracle budget"):
            expected_signal_counts(asm.build(), max_instructions=1000)

    def test_heap_words_extends_memory(self):
        asm = Assembler()
        asm.func("main")
        asm.li("r1", 0)
        asm.store("r1", "r1", 0)   # program declares no data at all
        asm.halt()
        asm.endfunc()
        program = asm.build()
        with pytest.raises(OracleError):
            expected_signal_counts(program)
        assert expected_signal_counts(program, heap_words=4)[Signal.SR_INS] == 1


class TestPresetExpectations:
    def test_power_fp_ins_drift_surfaces(self):
        sub = create("simPOWER")
        counts = expected_signal_counts(
            conformance_mix(10, use_fma=True).program)
        exp = expected_preset_values("simPOWER", counts, _signals(sub))
        fp = exp["PAPI_FP_INS"]
        # PM_FPU_INS counts converts: platform value differs from reference
        assert fp.checkable and fp.drift
        assert fp.expected != fp.reference_expected

    def test_uncheckable_presets_have_no_expectation(self):
        sub = create("simX86")
        counts = expected_signal_counts(conformance_mix(5).program)
        exp = expected_preset_values("simX86", counts, _signals(sub))
        cyc = exp["PAPI_TOT_CYC"]
        assert not cyc.checkable
        assert cyc.expected is None
        assert not set(cyc.signals) <= ORACLE_SIGNALS or not cyc.signals

    def test_tot_ins_checkable_everywhere(self):
        from repro.platforms import PLATFORM_NAMES
        for name in PLATFORM_NAMES:
            sub = create(name)
            work = conformance_mix(5, use_fma=sub.HAS_FMA)
            c = expected_signal_counts(work.program)
            exp = expected_preset_values(name, c, _signals(sub))
            tot = exp["PAPI_TOT_INS"]
            assert tot.checkable
            assert tot.expected == c[Signal.TOT_INS]

"""Property-based tests: the trace tier is bit-exact on branchy code.

The block-engine property suite covers straight counted loops; this one
attacks the trace tier's new machinery specifically: random
*multi-block* programs whose loops contain data-dependent diamonds
(if/else arms joining before the back edge -- the shape tail
duplication compiles into regions), optional calls to a shared leaf and
optional probes.  Every program must produce identical counts,
architectural state and cache statistics at all three engine tiers
("off" / "block" / "trace"), single-CPU and through the SMP scheduler
at ncpus=4, and with a seeded fault injector perturbing the counter
substrate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PapiError
from repro.core.library import Papi
from repro.hw import Assembler, Machine, MachineConfig
from repro.platforms import create
from repro.simos.scheduler import OS

TIERS = ["off", "block", "trace"]

_OPS = ("addi", "add", "muli", "fma", "fadd", "nop")

arm_ops = st.lists(st.sampled_from(_OPS), min_size=0, max_size=4)

segments = st.lists(
    st.fixed_dictionaries({
        "iters": st.integers(min_value=1, max_value=40),
        # parity branch (alternates every iteration) vs threshold branch
        # (flips once): both arms of the diamond get exercised either way.
        "parity": st.booleans(),
        "then_ops": arm_ops,
        "else_ops": arm_ops,
        "join_ops": st.lists(st.sampled_from(_OPS), min_size=0, max_size=3),
        "call": st.booleans(),
        "probed": st.booleans(),
    }),
    min_size=1,
    max_size=4,
)


@pytest.fixture(autouse=True)
def _no_ambient_fault_profile(monkeypatch):
    """The fault leg seeds its own injector; the CI chaos knob must not
    stack a second environment-driven one onto the same substrate."""
    monkeypatch.delenv("REPRO_FAULT_PROFILE", raising=False)


def _emit_ops(asm, ops, salt):
    for j, op in enumerate(ops):
        if op == "addi":
            asm.addi("r4", "r4", salt + j + 1)
        elif op == "add":
            asm.add("r6", "r6", "r4")
        elif op == "muli":
            asm.muli("r7", "r4", 3)
        elif op == "fma":
            asm.fma("f3", "f1", "f2", "f3")
        elif op == "fadd":
            asm.fadd("f4", "f4", "f1")
        else:
            asm.nop()


def build_program(segs):
    """A halting chain of diamond loops (the compiled-region shape)."""
    asm = Assembler(name="branchy-prop")
    asm.func("main")
    asm.li("r5", 2)
    asm.fli("f1", 1.25)
    asm.fli("f2", 0.5)
    for i, seg in enumerate(segs):
        asm.li("r1", 0)
        asm.li("r2", seg["iters"])
        asm.label(f"loop{i}")
        if seg["probed"]:
            asm.probe(i + 1)
        if seg["parity"]:
            # r3 = r1 % 2 via div/mul/sub: alternates every iteration
            asm.div("r3", "r1", "r5")
            asm.muli("r3", "r3", 2)
            asm.sub("r3", "r1", "r3")
            asm.beq("r3", "r0", f"else{i}")
        else:
            asm.blt("r1", "r5", f"else{i}")
        _emit_ops(asm, seg["then_ops"], i)
        if seg["call"]:
            asm.call("leaf")
        asm.jmp(f"join{i}")
        asm.label(f"else{i}")
        _emit_ops(asm, seg["else_ops"], i + 7)
        asm.label(f"join{i}")
        _emit_ops(asm, seg["join_ops"], i + 13)
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r2", f"loop{i}")
    asm.halt()
    asm.endfunc()
    asm.func("leaf")
    asm.fma("f5", "f1", "f2", "f2")
    asm.addi("r8", "r8", 1)
    asm.ret()
    asm.endfunc()
    return asm.build()


def run_single(prog, engine):
    m = Machine(MachineConfig(engine=engine))
    m.load(prog)
    probes = []
    for pid in range(1, 6):
        m.register_probe(pid, lambda p, cpu, log=probes: log.append((p, cpu.pc)))
    result = m.run_to_completion()
    return {
        "halted": (result.halted, m.cpu.halted),
        "instructions": result.instructions,
        "cycles": result.cycles,
        "counts": list(m.counts),
        "real_cycles": m.real_cycles,
        "iregs": list(m.cpu.iregs),
        "fregs": list(m.cpu.fregs),
        "pc": m.cpu.pc,
        "cache_stats": m.hierarchy.stats_snapshot(),
        "probes": probes,
    }


def run_smp(prog, engine, nthreads=3, quantum=400):
    """The same program on three threads, through the SMP scheduler."""
    machine = Machine(MachineConfig(ncpus=4, engine=engine))
    os_ = OS(machine, quantum_cycles=quantum)
    threads = [os_.spawn(prog) for _ in range(nthreads)]
    probes = []
    for pid in range(1, 6):
        machine.register_probe(pid, lambda p, cpu, log=probes: log.append(p))
    stats = os_.run()
    return {
        "per_cpu_counts": [list(c.counts) for c in machine.cpus],
        "thread_cycles": [t.user_cycles for t in threads],
        "thread_last_cpu": [t.last_cpu for t in threads],
        "migrations": stats.migrations,
        "cpu_slices": list(stats.cpu_slices),
        "system_cycles": machine.system_cycles,
        "probes": probes,
    }


def run_faulted(prog, engine, seed):
    """Counter-substrate ops under a seeded transient fault schedule.

    The injector gates the PAPI-level start/read/stop ops; engine tiers
    change neither the op sequence nor the counts they observe, so the
    whole faulted outcome -- including identical *failures* -- must be
    tier-invariant.
    """
    sub = create("simPOWER", engine=engine, inject=f"{seed}:transient")
    papi = Papi(sub)
    es = papi.create_eventset()
    for name in ("PAPI_TOT_INS", "PAPI_TOT_CYC"):
        es.add_event(papi.event_name_to_code(name))
    sub.machine.load(prog)
    outcome = {"reads": [], "errors": []}
    try:
        es.start()
        sub.machine.run_to_completion()
        outcome["reads"].append(es.read())
        outcome["reads"].append(es.stop())
    except PapiError as exc:
        outcome["errors"].append(type(exc).__name__)
    outcome["counts"] = list(sub.machine.counts)
    outcome["health"] = (es.health.retries, es.health.backoff_cycles)
    return outcome


class TestTraceTierEquivalence:
    @given(segments)
    @settings(max_examples=40, deadline=None)
    def test_all_tiers_identical_single_cpu(self, segs):
        prog = build_program(segs)
        ref = run_single(prog, "off")
        assert ref["halted"] == (True, True)
        for tier in TIERS[1:]:
            got = run_single(prog, tier)
            for key in ref:
                assert got[key] == ref[key], (tier, key)

    @given(segments)
    @settings(max_examples=10, deadline=None)
    def test_all_tiers_identical_smp(self, segs):
        prog = build_program(segs)
        ref = run_smp(prog, "off")
        for tier in TIERS[1:]:
            got = run_smp(prog, tier)
            for key in ref:
                assert got[key] == ref[key], (tier, key)

    @given(segments, st.integers(min_value=1, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_all_tiers_identical_under_faults(self, segs, seed):
        prog = build_program(segs)
        ref = run_faulted(prog, "off", seed)
        for tier in TIERS[1:]:
            got = run_faulted(prog, tier, seed)
            assert got == ref, tier


class TestTraceTierCoverage:
    """The property programs genuinely reach the new machinery: a hot
    diamond loop must compile into a region (not silently fall back to
    block dispatch, which would make the equivalence tests vacuous)."""

    def test_hot_diamond_compiles_region(self):
        seg = {
            "iters": 40, "parity": True,
            "then_ops": ["addi", "fma"], "else_ops": ["add"],
            "join_ops": ["muli"], "call": True, "probed": False,
        }
        prog = build_program([seg])
        m = Machine(MachineConfig(engine="trace"))
        m.load(prog)
        m.run_to_completion()
        stats = m.cpu.engine.stats
        assert stats.regions_compiled + stats.traces_compiled > 0
        assert stats.region_instructions + stats.trace_replays > 0

    def test_hot_probed_diamond_compiles_region(self):
        seg = {
            "iters": 40, "parity": True,
            "then_ops": ["addi"], "else_ops": ["fadd"],
            "join_ops": [], "call": False, "probed": True,
        }
        prog = build_program([seg])
        m = Machine(MachineConfig(engine="trace"))
        m.load(prog)
        m.register_probe(1, lambda p, cpu: None)
        m.run_to_completion()
        assert m.cpu.engine.stats.regions_compiled > 0

"""The self-healing runtime: loss recovery, degradation, emergency stop.

These tests drive the recovery ladder deterministically by stealing
counters by hand (raw PMU clobber + a hold in the injector's theft
table) instead of waiting for a seeded draw, so each rung is exercised
in isolation:

retry -> re-acquire/resume -> software overflow emulation ->
multiplex degradation (opt-in) -> crash-consistent emergency stop.
"""

import pytest

from repro.core.errors import CountersLostError, PapiError, SystemError_
from repro.core.library import Papi
from repro.faults import attach_from_spec
from repro.platforms import create
from repro.workloads import dot


def steal(sub, injector, index, cpu=0, hold=10**6):
    """Another machine user takes *index*: clobber it and hold it."""
    pmu = sub.machine.cpus[cpu].pmu
    if pmu.running(index):
        pmu.stop(index)
    pmu.clear(index)
    injector._stolen[(cpu, index)] = hold


def setup(platform, symbols, n=6000):
    sub = create(platform)
    injector = attach_from_spec(sub, "0:none")
    papi = Papi(sub)
    es = papi.create_eventset()
    es.add_named(*symbols)
    sub.machine.load(dot(n, use_fma=sub.HAS_FMA).program)
    return sub, injector, papi, es


class TestLossRecovery:
    def test_mid_run_loss_reacquires_and_resumes(self):
        """Two events on four free counters: after a theft the set must
        re-allocate around the stolen register and keep counting, with
        totals salvaged at the last good observation."""
        sub, injector, papi, es = setup(
            "simT3E", ["PAPI_TOT_INS", "PAPI_FP_OPS"]
        )
        es.start()
        sub.machine.run(max_instructions=2000)
        first = es.read()
        assert first[0] > 0
        victim = es.assignment["INS_CNT"]
        steal(sub, injector, victim)
        sub.machine.run(max_instructions=2000)
        second = es.read()          # detects ECLOST, recovers in-line
        assert second == first      # salvaged at the last good read
        assert es.running
        assert victim not in es.assignment.values()
        assert len(es.health.lost_intervals) == 1
        interval = es.health.lost_intervals[0]
        assert interval.recovered
        assert interval.start_cycle < interval.end_cycle
        sub.machine.run(max_instructions=2000)
        third = es.read()           # counting genuinely resumed
        assert all(t > s for t, s in zip(third, second))
        sub.machine.run_to_completion()
        final = es.stop()
        assert all(f >= t for f, t in zip(final, third))
        assert not es.running

    def test_totals_stay_monotone_across_two_losses(self):
        sub, injector, papi, es = setup("simT3E", ["PAPI_TOT_INS"])
        es.start()
        reads = []
        for _ in range(2):
            sub.machine.run(max_instructions=1500)
            reads.append(es.read())
            steal(sub, injector, es.assignment["INS_CNT"])
            sub.machine.run(max_instructions=1500)
            reads.append(es.read())
        assert reads == sorted(reads)
        assert len(es.health.lost_intervals) == 2
        assert all(iv.recovered for iv in es.health.lost_intervals)

    def test_infeasible_reallocation_fails_crash_consistently(self):
        """Four natives, four counters, one stolen: re-allocation cannot
        fit and degradation is off, so ECLOST must surface -- with the
        EventSet left fully stopped, not half-dead."""
        sub, injector, papi, es = setup(
            "simT3E",
            ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_LD_INS"],
        )
        es.start()
        sub.machine.run(max_instructions=2000)
        es.read()
        steal(sub, injector, es.assignment["INS_CNT"])
        with pytest.raises(CountersLostError):
            es.read()
        assert not es.running
        assert papi._running_handle is None
        assert not es.health.lost_intervals[-1].recovered
        pmu = sub.machine.cpus[0].pmu
        assert all(not pmu.running(i) for i in range(sub.n_counters))

    def test_degrade_to_multiplex_finishes_the_run(self):
        """Same infeasible scenario with the opt-in enabled: the run
        continues time-sliced and says so in the health record."""
        sub, injector, papi, es = setup(
            "simT3E",
            ["PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_FP_OPS", "PAPI_LD_INS"],
            n=20000,
        )
        papi.degrade_to_multiplex = True
        es.start()
        sub.machine.run(max_instructions=2000)
        first = es.read()
        steal(sub, injector, es.assignment["INS_CNT"])
        sub.machine.run(max_instructions=2000)
        second = es.read()
        assert es.running
        assert es.multiplexed
        assert es.health.degraded_to_multiplex
        assert es.health.lost_intervals[-1].recovered
        assert all(s >= f for s, f in zip(second, first))
        sub.machine.run_to_completion()
        final = es.stop()
        assert all(f >= s for f, s in zip(final, second))


class TestSoftwareOverflowEmulation:
    def _overflow_counts(self, break_arm):
        sub = create("simIA64")
        papi = Papi(sub)
        sub.machine.load(dot(3000, use_fma=sub.HAS_FMA).program)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        infos = []
        es.overflow(
            papi.event_name_to_code("PAPI_TOT_INS"), 500, infos.append
        )
        if break_arm:
            def refuse(index, threshold, handler, cpu=0):
                raise SystemError_("overflow arming refused")
            sub.arm_overflow = refuse
        es.start()
        sub.machine.run_to_completion()
        total = es.stop()[0]
        return infos, total, es

    def test_arm_failure_degrades_to_timer_emulation(self):
        clean_infos, _total, _es = self._overflow_counts(break_arm=False)
        infos, total, es = self._overflow_counts(break_arm=True)
        assert es.health.overflow_emulated
        assert infos, "the emulator must still deliver overflows"
        # the poll notices every crossing up to timer granularity
        assert len(clean_infos) - 4 <= len(infos) <= len(clean_infos)
        assert [i.overflow_count for i in infos] == \
               list(range(1, len(infos) + 1))
        assert total // 500 >= len(infos)

    def test_emulated_attribution_is_coarse_but_honest(self):
        infos, _total, _es = self._overflow_counts(break_arm=True)
        assert all(i.address == i.true_address for i in infos)


class TestCrashConsistency:
    def test_failed_stop_reaches_emergency_teardown(self):
        sub, injector, papi, es = setup("simT3E", ["PAPI_TOT_INS"])
        es.start()
        sub.machine.run(max_instructions=2000)
        # make every substrate call fail from now on
        from repro.faults import FaultInjector, FaultPlan, FaultProfile

        sub.detach_faults()
        sub.attach_faults(FaultInjector(FaultPlan(
            1, FaultProfile("always-esys", esys_rate=1.0)
        )))
        with pytest.raises(SystemError_):
            es.stop()
        assert not es.running
        assert papi._running_handle is None
        assert "stop failed" in es.health.lost_intervals[-1].reason
        pmu = sub.machine.cpus[0].pmu
        assert all(not pmu.running(i) for i in range(sub.n_counters))

    def test_shutdown_is_idempotent(self):
        sub = create("simT3E")
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_INS")
        sub.machine.load(dot(500, use_fma=sub.HAS_FMA).program)
        es.start()
        papi.shutdown()
        assert not papi.initialized
        assert papi._running_handle is None
        assert not papi._eventsets
        assert not es.running
        papi.shutdown()               # second call: nothing left, no raise
        assert not papi.initialized

    def test_shutdown_survives_a_failing_stop(self):
        sub, injector, papi, es = setup("simT3E", ["PAPI_TOT_INS"])
        es.start()
        from repro.faults import FaultInjector, FaultPlan, FaultProfile

        sub.detach_faults()
        sub.attach_faults(FaultInjector(FaultPlan(
            1, FaultProfile("always-esys", esys_rate=1.0)
        )))
        papi.shutdown()               # falls back to the emergency path
        assert not papi.initialized
        assert not es.running
        pmu = sub.machine.cpus[0].pmu
        assert all(not pmu.running(i) for i in range(sub.n_counters))
        papi.shutdown()

"""E5: profiling attribution accuracy -- interrupt pc vs hardware sampling.

Paper claim (Section 4): "On out-of-order processors, the program
counter may yield an address that is several instructions or even basic
blocks removed from the true address of the instruction that caused the
overflow event", while DCPI/ProfileMe "identifies the exact address of
an instruction, thus resulting in accurate text addresses for profiling
data", and Itanium EARs "accurately identify the instruction and data
addresses for some events".

Reproduction: a dot-product loop whose floating point work happens at
exactly one instruction.  Four profiling mechanisms attribute fp-event
samples to addresses; we score the fraction attributed to the true
instruction.
"""

from _shared import emit, run_once
from repro.analysis import Table
from repro.core.library import Papi
from repro.core.profile import (
    ProfileBuffer,
    profile_from_ears,
    profile_from_samples,
)
from repro.hw.isa import INS_BYTES, Op
from repro.platforms import create
from repro.platforms.simalpha import sample_matches
from repro.workloads import dot, strided_scan

N = 6000


def fp_pcs(program):
    return [pc for pc, ins in enumerate(program.instructions)
            if ins.op in (Op.FMA, Op.FMUL, Op.FADD)]


def interrupt_profiling(platform: str):
    """Overflow-driven PC sampling on a fp-event counter.

    The interrupt *raise point* (OverflowInfo.true_address, exposed by
    the simulator for evaluation) is the best any interrupt-pc profiler
    could do; what the tool actually sees is the reported address after
    skid.  We score the fraction of samples reported within one
    instruction of the raise point, and the mean skid distance.
    """
    substrate = create(platform)
    papi = Papi(substrate)
    work = dot(N, use_fma=substrate.HAS_FMA)
    substrate.machine.load(work.program)
    es = papi.create_eventset()
    es.add_named("PAPI_FP_INS")
    infos = []
    es.overflow(papi.event_name_to_code("PAPI_FP_INS"), 50, infos.append)
    es.start()
    substrate.machine.run_to_completion()
    es.stop()
    assert infos
    distances = [abs(i.address - i.true_address) // INS_BYTES for i in infos]
    close = sum(1 for d in distances if d <= 1) / len(distances)
    mean_skid = sum(distances) / len(distances)
    return close, mean_skid, len(infos), substrate.machine.pmu.config.skid_max


def profileme_profiling():
    """DCPI/ProfileMe: precise pcs from hardware samples."""
    substrate = create("simALPHA")
    work = dot(N, use_fma=False)
    event = substrate.query_native("RET_FLOPS")
    session = substrate.sampling_session([event], period=64)
    substrate.machine.load(work.program)
    session.start()
    substrate.machine.run_to_completion()
    session.stop()
    buf = ProfileBuffer.covering(0, (len(work.program) + 64) * INS_BYTES)
    profile_from_samples(
        buf, session.samples(), predicate=lambda s: sample_matches(event, s)
    )
    truth = {buf.bucket_index(pc * INS_BYTES) for pc in fp_pcs(work.program)}
    correct = sum(buf.buckets[b] for b in truth if b is not None)
    return correct / buf.hits, 0.0, buf.hits


def ear_profiling():
    """Itanium EARs: exact addresses of sampled cache-miss events."""
    substrate = create("simIA64")
    line_words = substrate.machine.hierarchy.config.l1d.line_bytes // 8
    work = strided_scan(8192, line_words)
    ear = substrate.add_ear(4, "l1d_miss")
    substrate.machine.load(work.program)
    substrate.machine.run_to_completion()
    buf = ProfileBuffer.covering(0, (len(work.program) + 64) * INS_BYTES)
    profile_from_ears(buf, ear.records)
    load_pcs = [pc for pc, ins in enumerate(work.program.instructions)
                if ins.op == Op.LOAD]
    truth = {buf.bucket_index(pc * INS_BYTES) for pc in load_pcs}
    correct = sum(buf.buckets[b] for b in truth if b is not None)
    return correct / buf.hits, 0.0, buf.hits


def run_experiment():
    rows = []
    for platform in ("simX86", "simPOWER", "simIA64"):
        close, skid, hits, skid_max = interrupt_profiling(platform)
        rows.append((platform, "interrupt pc", f"skid<={skid_max}", close,
                     skid, hits))
    acc, skid, hits = profileme_profiling()
    rows.append(("simALPHA", "ProfileMe sample", "precise", acc, skid, hits))
    acc, skid, hits = ear_profiling()
    rows.append(("simIA64", "EAR capture", "precise", acc, skid, hits))
    return rows


def bench_e5_attribution(benchmark, capsys):
    rows = run_once(benchmark, run_experiment)

    table = Table(
        ["platform", "mechanism", "hardware", "within 1 instr",
         "mean skid (ins)", "samples"],
        title="E5: profile attribution accuracy -- samples landing within "
              "one instruction of the causing event, and mean skid",
    )
    acc = {}
    for platform, mech, hw, accuracy, skid, hits in rows:
        acc[(platform, mech)] = accuracy
        table.add_row(platform, mech, hw, round(accuracy, 3),
                      round(skid, 2), hits)
    emit(capsys, table.render())

    # hardware-assisted mechanisms are exact
    assert acc[("simALPHA", "ProfileMe sample")] == 1.0
    assert acc[("simIA64", "EAR capture")] == 1.0
    # interrupt-pc accuracy degrades with skid depth
    assert (acc[("simX86", "interrupt pc")]
            < acc[("simPOWER", "interrupt pc")]
            < acc[("simIA64", "interrupt pc")])
    # the deep-OoO platform misattributes most samples
    assert acc[("simX86", "interrupt pc")] < 0.5

"""Unit tests for the SMP layer: per-CPU PMUs and migration-safe counters."""

from __future__ import annotations

import pytest

from repro.hw import Assembler, Machine, MachineConfig, Signal
from repro.hw.events import fresh_counts
from repro.hw.pmu import PMU, PMUConfig
from repro.simos.scheduler import OS, OSError_


def fma_worker(iters, name="w"):
    asm = Assembler(name=name)
    asm.label("main")
    asm.li("r1", 0)
    asm.li("r2", iters)
    asm.fli("f1", 1.25)
    asm.fli("f2", 0.5)
    asm.label("loop")
    asm.fma("f3", "f1", "f2", "f3")
    asm.addi("r1", "r1", 1)
    asm.blt("r1", "r2", "loop")
    asm.halt()
    return asm.build()


class TestMachineSMP:
    def test_ncpus_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(ncpus=0)

    def test_per_cpu_isolation(self):
        m = Machine(MachineConfig(ncpus=3))
        assert m.ncpus == 3
        assert len({id(c.counts) for c in m.cpus}) == 3
        assert len({id(c.pmu) for c in m.cpus}) == 3
        assert all(c.hierarchy is m.hierarchy for c in m.cpus)
        # compatibility aliases point at CPU 0
        assert m.cpu is m.cpus[0]
        assert m.pmu is m.cpus[0].pmu
        assert m.counts is m.cpus[0].counts
        assert [c.cpu_index for c in m.cpus] == [0, 1, 2]

    def test_totals_sum_over_cpus(self):
        m = Machine(MachineConfig(ncpus=2))
        m.cpus[0].counts[Signal.TOT_CYC] += 100
        m.cpus[1].counts[Signal.TOT_CYC] += 40
        m.cpus[1].counts[Signal.FP_FMA] += 7
        assert m.user_cycles == 140
        assert m.signal_total(Signal.FP_FMA) == 7
        m.charge(60, cpu=1)
        assert m.real_cycles == 200
        assert m.cpus[1].counts[Signal.SYS_CYC] == 60
        assert m.cpus[0].counts[Signal.SYS_CYC] == 0

    def test_reset_clears_every_cpu(self):
        m = Machine(MachineConfig(ncpus=2))
        for c in m.cpus:
            c.counts[Signal.TOT_INS] += 5
            c.pmu.program(0, [Signal.TOT_INS])
        m.reset()
        assert all(c.counts[Signal.TOT_INS] == 0 for c in m.cpus)
        assert all(not c.pmu.counters[0].signals for c in m.cpus)


class TestCounterMigration:
    def test_export_import_preserves_value(self):
        counts_a, counts_b = fresh_counts(), fresh_counts()
        a = PMU(PMUConfig(), counts_a)
        b = PMU(PMUConfig(), counts_b)
        a.program(2, [Signal.FP_FMA])
        a.start(2)
        counts_a[Signal.FP_FMA] += 123
        snap = a.export_counter(2)
        assert snap.value == 123
        # the source register is freed
        assert not a.counters[2].signals
        b.import_counter(2, snap)
        assert b.read(2) == 123
        b.start(2)
        counts_b[Signal.FP_FMA] += 10
        assert b.read(2) == 133

    def test_export_import_preserves_overflow_headroom(self):
        counts_a, counts_b = fresh_counts(), fresh_counts()
        a = PMU(PMUConfig(), counts_a)
        b = PMU(PMUConfig(), counts_b)
        fired = []
        a.program(0, [Signal.TOT_INS])
        a.start(0)
        a.set_overflow(0, 100, fired.append)
        counts_a[Signal.TOT_INS] += 70         # 30 below the trigger
        snap = a.export_counter(0)
        b.import_counter(0, snap)
        b.start(0)
        counts_b[Signal.TOT_INS] += 29         # 1 below: no interrupt yet
        assert b.check_overflow(pc=0, cycle=0) == 0
        counts_b[Signal.TOT_INS] += 1          # crosses exactly at 100
        assert b.check_overflow(pc=0, cycle=0) == 1
        assert len(fired) == 1

    def test_import_into_running_counter_rejected(self):
        counts = fresh_counts()
        a = PMU(PMUConfig(), counts)
        a.program(0, [Signal.TOT_INS])
        snap = a.export_counter(0)
        b = PMU(PMUConfig(), fresh_counts())
        b.program(0, [Signal.TOT_CYC])
        b.start(0)
        with pytest.raises(Exception):
            b.import_counter(0, snap)


class TestSMPScheduling:
    def test_forced_migration_exact_counts(self):
        m = Machine(MachineConfig(ncpus=2))
        os_ = OS(m, quantum_cycles=500)
        t = os_.spawn(fma_worker(400))
        m.cpus[0].pmu.program(0, [Signal.FP_FMA])
        os_.bind_counter(t, 0)
        os_.counter_start(t, 0)
        cpu = 0
        while t.state.value == "ready":
            os_.run_slice(t, cpu=cpu)
            cpu = 1 - cpu          # bounce between CPUs every slice
        assert t.migrations > 0
        assert os_.counter_stop(t, 0) == 400
        # conservation across both PMUs
        assert sum(c.counts[Signal.FP_FMA] for c in m.cpus) == 400

    def test_stop_while_descheduled_on_remote_home(self):
        m = Machine(MachineConfig(ncpus=2))
        os_ = OS(m, quantum_cycles=800)
        t = os_.spawn(fma_worker(2000))
        m.cpus[0].pmu.program(0, [Signal.FP_FMA])
        os_.bind_counter(t, 0)
        os_.counter_start(t, 0)
        os_.run_slice(t, cpu=1)      # counter migrates home to CPU 1
        assert t.counter_home[0] == 1
        mid = os_.counter_stop(t, 0)  # read routes to the remote home
        assert 0 < mid < 2000
        assert mid == m.cpus[1].counts[Signal.FP_FMA]

    def test_affinity_keeps_threads_on_their_cpu(self):
        m = Machine(MachineConfig(ncpus=2))
        os_ = OS(m, quantum_cycles=600)
        threads = [os_.spawn(fma_worker(3000, f"w{i}")) for i in range(2)]
        stats = os_.run()
        assert all(t.finished for t in threads)
        # one thread per CPU: after the first dispatch nobody migrates
        assert stats.migrations == 0
        assert stats.cpu_slices[0] > 0 and stats.cpu_slices[1] > 0
        assert {t.last_cpu for t in threads} == {0, 1}

    def test_migration_rather_than_idle(self):
        """3 threads on 2 CPUs: the odd thread migrates to fill gaps."""
        m = Machine(MachineConfig(ncpus=2))
        os_ = OS(m, quantum_cycles=600)
        threads = [os_.spawn(fma_worker(2500, f"w{i}")) for i in range(3)]
        stats = os_.run()
        assert all(t.finished for t in threads)
        assert stats.migrations > 0
        assert stats.makespan_cycles == max(stats.cpu_busy_cycles)
        assert sum(t.user_cycles for t in threads) == sum(
            c.counts[Signal.TOT_CYC] for c in m.cpus
        )

    def test_overflow_survives_migration(self):
        m = Machine(MachineConfig(ncpus=2))
        os_ = OS(m, quantum_cycles=300)
        t = os_.spawn(fma_worker(1000))
        m.cpus[0].pmu.program(0, [Signal.FP_FMA])
        os_.bind_counter(t, 0)
        os_.counter_start(t, 0)
        fired = []
        m.cpus[0].pmu.set_overflow(0, 300, fired.append)
        cpu = 0
        while not t.finished:
            os_.run_slice(t, cpu=cpu)
            cpu = 1 - cpu
        assert os_.counter_stop(t, 0) == 1000
        # 1000 FMAs / threshold 300 = 3 interrupts, wherever they fired
        assert len(fired) == 3

    def test_bad_cpu_arguments_rejected(self):
        m = Machine(MachineConfig(ncpus=2))
        os_ = OS(m)
        t = os_.spawn(fma_worker(10))
        with pytest.raises(OSError_):
            os_.bind_counter(t, 0, cpu=2)
        with pytest.raises(OSError_):
            os_.run_slice(t, cpu=5)


class TestEventSetCPUBinding:
    def test_bind_cpu_counts_only_that_cpu(self):
        from repro.core.library import Papi
        from repro.platforms import create

        sub = create("simPOWER", ncpus=2)
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        es.bind_cpu(1)
        assert es.cpu == 1
        es.start()
        # drive work onto CPU 1 only via pinned slices
        t = sub.os.spawn(fma_worker(500))
        while not t.finished:
            sub.os.run_slice(t, cpu=1)
        on_cpu1 = es.read()[0]
        assert on_cpu1 == 2 * 500        # FMA = 2 FP ops, all on CPU 1
        es.stop()

    def test_bind_cpu_validation(self):
        from repro.core.errors import InvalidArgumentError, IsRunningError
        from repro.core.library import Papi
        from repro.platforms import create

        sub = create("simT3E", ncpus=2)
        papi = Papi(sub)
        es = papi.create_eventset()
        es.add_named("PAPI_TOT_CYC")
        with pytest.raises(InvalidArgumentError):
            es.bind_cpu(2)
        es.start()
        with pytest.raises(IsRunningError):
            es.bind_cpu(1)
        es.stop()

    def test_attached_counts_follow_migrating_thread(self):
        from repro.core.library import Papi
        from repro.platforms import create

        sub = create("simPOWER", ncpus=2)
        papi = Papi(sub)
        t = sub.os.spawn(fma_worker(800))
        es = papi.create_eventset()
        es.add_named("PAPI_FP_OPS")
        es.attach(t)
        es.start()
        cpu = 0
        while not t.finished:
            sub.os.run_slice(t, max_cycles=500, cpu=cpu)
            cpu = 1 - cpu
        values = es.stop()
        assert values[0] == 2 * 800      # FMA = 2 FP ops, placement-blind
        assert t.migrations > 0

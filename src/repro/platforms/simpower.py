"""simPOWER: an IBM POWER3-like platform with pmtoolkit-style library access.

Three paper anecdotes live here:

- the native interface is a **vendor library** (pmtoolkit), mid-priced
  between register access and kernel syscalls;
- native events are managed in **counter groups**: an EventSet must be
  satisfiable by a single group's fixed event->counter assignment
  (Section 5's "some platforms manage native events in groups and
  require counters to be allocated in a group");
- ``PM_FPU_INS`` *includes precision-convert (rounding) instructions* --
  the POWER3 discrepancy the paper describes, where "extra rounding
  instructions ... introduced to convert between double and single
  precision ... were being included as floating point instructions".
  ``PM_FPU_CVT`` and ``PM_FPU_FMA`` exist so the high-level
  ``PAPI_flops`` normalization can correct for both quirks (E6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.hw.cache import CacheConfig, HierarchyConfig, TLBConfig
from repro.hw.cpu import CPUConfig
from repro.hw.events import Signal
from repro.hw.machine import MachineConfig
from repro.hw.pmu import PMUConfig
from repro.platforms.base import AccessCosts, CounterGroup, NativeEvent, Substrate


class SimPOWER(Substrate):
    NAME = "simPOWER"
    STYLE = "library"
    COUNTING = "direct"
    DESCRIPTION = "IBM POWER3-like: vendor library interface, 8 grouped counters"
    COSTS = AccessCosts(
        read=550,
        read_per_counter=40,
        start=800,
        stop=750,
        program=900,
        reset=500,
        pollute_lines=3,
    )
    HAS_FMA = True
    #: out-of-order core: interrupt-pc attribution skids.
    PROFILING = "overflow"

    def _machine_config(self, seed: int) -> MachineConfig:
        return MachineConfig(
            name=self.NAME,
            cpu=CPUConfig(predictor="two-bit", branch_penalty=8),
            hierarchy=HierarchyConfig(
                l1d=CacheConfig("L1D", size_bytes=8192, line_bytes=128, assoc=2),
                l1i=CacheConfig("L1I", size_bytes=8192, line_bytes=128, assoc=2),
                l2=CacheConfig("L2", size_bytes=262144, line_bytes=128, assoc=4),
                tlb=TLBConfig(entries=64, page_bytes=4096),
                l2_latency=9,
                mem_latency=55,
                tlb_walk_latency=28,
            ),
            pmu=PMUConfig(n_counters=8, skid_max=8, interrupt_cost=110),
            mhz=375,
            seed=seed,
        )

    def _native_events(self) -> Sequence[NativeEvent]:
        return [
            NativeEvent("PM_CYC", (Signal.TOT_CYC,), "processor cycles"),
            NativeEvent("PM_INST_CMPL", (Signal.TOT_INS,), "instructions completed"),
            # The POWER3 quirk: FPU instruction count INCLUDES precision
            # converts (rounding instructions) and counts an FMA as one.
            NativeEvent(
                "PM_FPU_INS",
                (
                    Signal.FP_ADD,
                    Signal.FP_MUL,
                    Signal.FP_DIV,
                    Signal.FP_SQRT,
                    Signal.FP_FMA,
                    Signal.FP_CVT,
                ),
                "FPU instructions completed (includes converts, FMA=1)",
            ),
            NativeEvent("PM_FPU_FMA", (Signal.FP_FMA,), "fused multiply-adds"),
            NativeEvent("PM_FPU_CVT", (Signal.FP_CVT,), "precision converts"),
            NativeEvent("PM_FPU_DIV", (Signal.FP_DIV,), "FP divides"),
            NativeEvent("PM_FPU_SQRT", (Signal.FP_SQRT,), "FP square roots"),
            NativeEvent("PM_LD_CMPL", (Signal.LD_INS,), "loads completed"),
            NativeEvent("PM_ST_CMPL", (Signal.SR_INS,), "stores completed"),
            NativeEvent("PM_LD_MISS_L1", (Signal.L1D_MISS,), "L1 D misses"),
            NativeEvent("PM_INST_MISS_L1", (Signal.L1I_MISS,), "L1 I misses"),
            NativeEvent("PM_LD_MISS_L2", (Signal.L2_MISS,), "L2 misses"),
            NativeEvent("PM_DTLB_MISS", (Signal.TLB_DM,), "data TLB misses"),
            NativeEvent("PM_BR_CMPL", (Signal.BR_INS,), "branches completed"),
            NativeEvent("PM_BR_MPRED", (Signal.BR_MSP,), "mispredicted branches"),
            NativeEvent("PM_CBR_CMPL", (Signal.BR_CN,), "conditional branches"),
            NativeEvent("PM_STALL_CYC", (Signal.STL_CYC,), "stall cycles"),
            NativeEvent("PM_MEM_WAIT_CYC", (Signal.MEM_RCY,), "memory wait cycles"),
        ]

    def _groups(self) -> Optional[List[CounterGroup]]:
        """POWER-style groups: fixed event->counter layouts.

        Group coverage is deliberately uneven -- no single group has
        everything, some event combinations exist in no group at all --
        so group selection is a real search problem (E4/A3).
        """
        return [
            CounterGroup(0, {  # general characterization
                "PM_CYC": 0, "PM_INST_CMPL": 1, "PM_LD_CMPL": 2,
                "PM_ST_CMPL": 3, "PM_BR_CMPL": 4, "PM_FPU_INS": 5,
                "PM_STALL_CYC": 6, "PM_CBR_CMPL": 7,
            }),
            CounterGroup(1, {  # floating point study
                "PM_CYC": 0, "PM_INST_CMPL": 1, "PM_FPU_INS": 2,
                "PM_FPU_FMA": 3, "PM_FPU_CVT": 4, "PM_FPU_DIV": 5,
                "PM_FPU_SQRT": 6,
            }),
            CounterGroup(2, {  # memory hierarchy study
                "PM_CYC": 0, "PM_INST_CMPL": 1, "PM_LD_CMPL": 2,
                "PM_ST_CMPL": 3, "PM_LD_MISS_L1": 4, "PM_LD_MISS_L2": 5,
                "PM_DTLB_MISS": 6, "PM_MEM_WAIT_CYC": 7,
            }),
            CounterGroup(3, {  # branch study
                "PM_CYC": 0, "PM_INST_CMPL": 1, "PM_BR_CMPL": 2,
                "PM_BR_MPRED": 3, "PM_CBR_CMPL": 4, "PM_STALL_CYC": 5,
            }),
            CounterGroup(4, {  # instruction cache study
                "PM_CYC": 0, "PM_INST_CMPL": 1, "PM_INST_MISS_L1": 2,
                "PM_LD_MISS_L1": 3, "PM_STALL_CYC": 4,
            }),
            CounterGroup(5, {  # flops + memory (mixed) -- no TLB here
                "PM_CYC": 0, "PM_FPU_INS": 1, "PM_FPU_FMA": 2,
                "PM_LD_MISS_L1": 3, "PM_LD_MISS_L2": 4, "PM_LD_CMPL": 5,
            }),
        ]

    def _uncore_counters(self) -> int:
        # pmtoolkit exposes the L2/fabric counter bank alongside groups.
        return 4

"""Analysis helpers: statistics, reporting, and performance models."""

from repro.analysis.model import (
    DEFAULT_FEATURES,
    PerformanceModel,
    collect_counters,
    fit_model,
    fit_platform_model,
)
from repro.analysis.report import Table, ascii_plot, sparkline
from repro.analysis.stats import (
    geometric_mean,
    mean,
    overhead_pct,
    pearson,
    rank_by,
    rel_error_pct,
    stddev,
    top_share,
)

__all__ = [
    "DEFAULT_FEATURES",
    "PerformanceModel",
    "Table",
    "collect_counters",
    "fit_model",
    "fit_platform_model",
    "ascii_plot",
    "geometric_mean",
    "mean",
    "overhead_pct",
    "pearson",
    "rank_by",
    "rel_error_pct",
    "sparkline",
    "stddev",
    "top_share",
]

"""Property-based tests: the validate oracle agrees with the simulator.

Random structured programs -- counted loops with integer/floating point
bodies, in-bounds memory traffic, data-dependent branches, calls into a
leaf function, probes and syscalls -- executed on every substrate, with
the block engine on and off and on 1- and 4-CPU machines.  For every
architecturally determined signal the independent reference interpreter
(:func:`repro.validate.oracle.expected_signal_counts`) and the
simulator's raw signal totals must agree *exactly*.  The two
implementations share no code, so agreement here means neither has a
bookkeeping bug the other cancels out.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hw import Assembler
from repro.hw.events import signal_name
from repro.platforms import PLATFORM_NAMES, create
from repro.validate.oracle import ORACLE_SIGNALS, expected_signal_counts

# -- program generator -------------------------------------------------

_BODY_OPS = (
    "alu_addi", "alu_add", "alu_mul", "alu_div", "fp_add", "fp_mul",
    "fp_div", "fp_cvt", "mem_load", "mem_store", "mem_fload", "branch",
    "call_leaf", "probe", "nop",
)

body_ops = st.lists(st.sampled_from(_BODY_OPS), min_size=0, max_size=6)
segments = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=20),   # loop iterations
        body_ops,
    ),
    min_size=1,
    max_size=4,
)


def build_program(segs):
    """A halting, fault-free program touching the drawn signal classes."""
    asm = Assembler(name="oracle_prop")
    base = asm.init_array([1 + (i % 7) for i in range(64)])

    asm.func("leaf")
    asm.addi("r6", "r6", 1)
    asm.fadd("f4", "f1", "f2")
    asm.ret()
    asm.endfunc()

    asm.func("main")
    asm.li("r9", base)
    asm.li("r8", 3)             # nonzero integer divisor
    asm.fli("f1", 1.25)
    asm.fli("f2", 0.5)          # nonzero float divisor
    for i, (iters, body) in enumerate(segs):
        asm.li("r1", 0)
        asm.li("r3", iters)
        asm.label(f"loop{i}")
        for j, op in enumerate(body):
            if op == "alu_addi":
                asm.addi("r2", "r2", j + 1)
            elif op == "alu_add":
                asm.add("r4", "r4", "r2")
            elif op == "alu_mul":
                asm.muli("r5", "r2", 3)
            elif op == "alu_div":
                asm.div("r5", "r4", "r8")
            elif op == "fp_add":
                asm.fadd("f3", "f1", "f2")
            elif op == "fp_mul":
                asm.fmul("f3", "f1", "f2")
            elif op == "fp_div":
                asm.fdiv("f3", "f1", "f2")
            elif op == "fp_cvt":
                asm.fcvt("f5", "f3")
            elif op == "mem_load":
                asm.load("r7", "r9", (i * 7 + j) % 64)
            elif op == "mem_store":
                asm.store("r2", "r9", (i * 11 + j) % 64)
            elif op == "mem_fload":
                asm.fload("f6", "r9", (i + j) % 64)
            elif op == "branch":
                # data-dependent, both outcomes exercised across iters
                asm.label(f"br{i}_{j}")
                asm.beq("r1", "r3", f"done{i}_{j}")
                asm.label(f"done{i}_{j}")
            elif op == "call_leaf":
                asm.call("leaf")
            elif op == "probe":
                asm.probe((i + j) % 7 + 1)
            elif op == "nop":
                asm.nop()
        asm.addi("r1", "r1", 1)
        asm.blt("r1", "r3", f"loop{i}")
    asm.syscall(1)
    asm.halt()
    asm.endfunc()
    return asm.build()


@given(
    segs=segments,
    platform=st.sampled_from(list(PLATFORM_NAMES)),
    engine=st.booleans(),
    ncpus=st.sampled_from([1, 4]),
)
@settings(deadline=None)
def test_oracle_matches_simulator(segs, platform, engine, ncpus):
    program = build_program(segs)
    expected = expected_signal_counts(program)
    substrate = create(platform, block_engine=engine, ncpus=ncpus)
    if ncpus == 1:
        substrate.machine.load(program)
        substrate.machine.run_to_completion()
    else:
        substrate.os.spawn(program, name="prop")
        substrate.os.run()
    for signal in sorted(ORACLE_SIGNALS):
        assert substrate.machine.signal_total(signal) == expected[signal], (
            signal_name(signal), platform, engine, ncpus
        )

"""Memory utilization routines: the PAPI 3 extension (Section 5).

The paper lists the planned extensions verbatim:

- memory available on a node
- total memory available/used (high-water-mark)
- memory used by process/thread
- disk swapping by process
- process/memory locality
- location of memory used by an object

All of them are served from the simulated OS's accounting
(:mod:`repro.simos.vmem`): the CPU records each thread's touched pages;
the scheduler refreshes high-water marks and the swap model every slice.
For programs run directly on the machine (no OS threads), the CPU's own
touched-page set stands in for the single implicit process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.simos.vmem import MemoryInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.library import Papi
    from repro.simos.thread import Thread


def dmem_info(papi: "Papi", thread: Optional["Thread"] = None) -> MemoryInfo:
    """PAPI_get_dmem_info: memory utilization snapshot."""
    os_ = papi.substrate.os
    if thread is not None:
        return os_.memory_info(thread)
    # implicit single process: the machine's current CPU context
    pages = papi.substrate.machine.cpu.touched_pages
    vm = os_.vmem
    rss = len(pages)
    swapped = max(0, rss - vm.total_pages)
    return MemoryInfo(
        page_bytes=vm.page_bytes,
        total_pages=vm.total_pages,
        used_pages=min(rss, vm.total_pages),
        free_pages=max(0, vm.total_pages - rss),
        thread_rss_pages=rss,
        thread_hwm_pages=rss,  # the set only grows within one run
        swapped_pages=swapped,
        swap_events=vm.swap_events,
    )


def dmem_locality(
    papi: "Papi", thread: Optional["Thread"] = None, buckets: int = 8
) -> Dict[int, int]:
    """Pages-touched histogram over address regions (locality extension)."""
    os_ = papi.substrate.os
    if thread is not None:
        return os_.vmem.locality_histogram(thread, buckets=buckets)
    pages = papi.substrate.machine.cpu.touched_pages
    if not pages:
        return {}
    lo, hi = min(pages), max(pages)
    span = max(1, (hi - lo + 1 + buckets - 1) // buckets)
    hist: Dict[int, int] = {}
    for p in pages:
        b = (p - lo) // span
        hist[b] = hist.get(b, 0) + 1
    return hist


def object_location(
    papi: "Papi", base_word: int, length_words: int
) -> Dict[str, int]:
    """Location of memory used by an object (array/structure extension).

    Reports how many of the object's pages have been touched and the
    page range it spans, from the current CPU context's footprint.
    """
    from repro.hw.isa import WORD_BYTES

    machine = papi.substrate.machine
    page_bytes = machine.hierarchy.config.tlb.page_bytes
    base_byte = machine.cpu.data_base + base_word * WORD_BYTES
    first_page = base_byte // page_bytes
    last_page = (
        base_byte + max(0, length_words - 1) * WORD_BYTES
    ) // page_bytes
    touched = machine.cpu.touched_pages
    resident = sum(1 for p in range(first_page, last_page + 1) if p in touched)
    return {
        "first_page": first_page,
        "last_page": last_page,
        "pages_spanned": last_page - first_page + 1,
        "pages_touched": resident,
    }
